//! # ICED — Integrated CGRA framework Enabling DVFS-aware acceleration
//!
//! A Rust reproduction of *"ICED: An Integrated CGRA Framework Enabling
//! DVFS-Aware Acceleration"* (MICRO 2024): a coarse-grained reconfigurable
//! array with DVFS **power islands**, the DVFS-aware compilation toolchain
//! that maps kernels onto it (Algorithms 1 and 2), runtime DVFS for
//! data-dependent streaming applications, and the full evaluation harness.
//!
//! The workspace is split into focused crates, all re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`dfg`] | `iced-dfg` | dataflow-graph IR, recurrence analysis, unrolling, predication |
//! | [`arch`] | `iced-arch` | CGRA configuration, islands, MRRG |
//! | [`power`] | `iced-power` | V/F levels, power/energy/area model (ASAP7 calibration) |
//! | [`mapper`] | `iced-mapper` | Algorithm 1 + 2, baseline/per-tile comparators |
//! | [`sim`] | `iced-sim` | schedule validation, activity metrics, functional replay |
//! | [`streaming`] | `iced-streaming` | partitioning, runtime DVFS controller, DRIPS |
//! | [`fault`] | `iced-fault` | deterministic fault plans, masks, SEU schedules |
//! | [`fuzz`] | `iced-fuzz` | seeded DFG corpus generator, differential cross-backend harness |
//! | [`kernels`] | `iced-kernels` | Table I kernel suite, workloads, pipelines |
//! | [`trace`] | `iced-trace` | structured tracing, counters, Chrome-trace/JSONL export |
//!
//! The [`Toolchain`] type provides the integrated flow the paper's Figure 7
//! describes: pick a strategy, compile a kernel, inspect utilization / DVFS
//! levels / power.
//!
//! # Quickstart
//!
//! ```
//! use iced::{Strategy, Toolchain};
//! use iced::kernels::{Kernel, UnrollFactor};
//!
//! # fn main() -> Result<(), iced::mapper::MapError> {
//! let toolchain = Toolchain::prototype(); // 6×6, 2×2 islands, ASAP7 power
//! let dfg = Kernel::Fir.dfg(UnrollFactor::X1);
//!
//! let baseline = toolchain.compile(&dfg, Strategy::Baseline)?;
//! let iced = toolchain.compile(&dfg, Strategy::IcedIslands)?;
//!
//! assert!(iced.mapping().ii() <= baseline.mapping().ii());
//! assert!(iced.average_utilization() > baseline.average_utilization());
//! assert!(iced.power_mw(1000) < baseline.power_mw(1000));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use iced_arch as arch;
pub use iced_dfg as dfg;
pub use iced_exact as exact;
pub use iced_fault as fault;
pub use iced_fuzz as fuzz;
pub use iced_kernels as kernels;
pub use iced_mapper as mapper;
pub use iced_power as power;
pub use iced_sim as sim;
pub use iced_streaming as streaming;
pub use iced_trace as trace;

use iced_arch::CgraConfig;
use iced_dfg::Dfg;
use iced_mapper::{
    map_baseline, map_with, power_gate_idle, relax_islands, relax_per_tile, MapError,
    MapperOptions, Mapping,
};
use iced_power::PowerModel;
use iced_sim::{DvfsSupport, EnergyBreakdown, FabricStats};

/// The CGRA configurations evaluated in the paper (§V, "Evaluated CGRA
/// Designs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Conventional CGRA without DVFS support.
    Baseline,
    /// Conventional CGRA with power-gating of idle tiles (the paper's
    /// baseline + power-gating ablation, ~1.12× energy efficiency).
    BaselinePowerGated,
    /// Per-tile DVFS + power-gating: UE-CGRA upgraded to spatio-temporal
    /// execution (one LDO/ADPLL per tile, > 30 % overhead each).
    PerTileDvfs,
    /// Full ICED: Algorithm 1 labeling + Algorithm 2 island-aware mapping
    /// with per-island DVFS and island power-gating.
    IcedIslands,
}

impl Strategy {
    /// All four evaluated configurations, in the paper's order.
    pub const ALL: [Strategy; 4] = [
        Strategy::Baseline,
        Strategy::BaselinePowerGated,
        Strategy::PerTileDvfs,
        Strategy::IcedIslands,
    ];

    /// Display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::BaselinePowerGated => "baseline+pg",
            Strategy::PerTileDvfs => "per-tile",
            Strategy::IcedIslands => "iced",
        }
    }

    /// The DVFS hardware this configuration pays for.
    pub fn dvfs_support(self) -> DvfsSupport {
        match self {
            Strategy::Baseline | Strategy::BaselinePowerGated => DvfsSupport::None,
            Strategy::PerTileDvfs => DvfsSupport::PerTile,
            Strategy::IcedIslands => DvfsSupport::PerIsland,
        }
    }
}

/// The integrated compiler toolchain (paper Figure 7): architecture
/// description + power model + mapping strategies.
#[derive(Debug, Clone)]
pub struct Toolchain {
    config: CgraConfig,
    model: PowerModel,
}

impl Toolchain {
    /// Toolchain for an arbitrary CGRA configuration with the ASAP7 power
    /// calibration.
    pub fn new(config: CgraConfig) -> Self {
        Toolchain {
            config,
            model: PowerModel::asap7(),
        }
    }

    /// The paper's 6×6 prototype with 2×2 islands.
    pub fn prototype() -> Self {
        Toolchain::new(CgraConfig::iced_prototype())
    }

    /// Target configuration.
    pub fn config(&self) -> &CgraConfig {
        &self.config
    }

    /// Power model in use.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// Compiles `dfg` under `strategy`.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] when the kernel cannot be mapped onto the
    /// configured fabric.
    pub fn compile(&self, dfg: &Dfg, strategy: Strategy) -> Result<Compiled, MapError> {
        let mapping = match strategy {
            Strategy::Baseline => map_baseline(dfg, &self.config)?,
            Strategy::BaselinePowerGated => {
                let base = map_baseline(dfg, &self.config)?;
                power_gate_idle(dfg, &base)
            }
            Strategy::PerTileDvfs => {
                let base = map_baseline(dfg, &self.config)?;
                relax_per_tile(dfg, &base)
            }
            Strategy::IcedIslands => {
                let mapped = map_with(dfg, &self.config, &MapperOptions::default())?;
                // Final per-island adjustment: islands pinned to normal by
                // routing alone are lowered where legal (§IV-A).
                relax_islands(dfg, &mapped)
            }
        };
        let stats = FabricStats::analyze(&mapping);
        Ok(Compiled {
            dfg: dfg.clone(),
            strategy,
            mapping,
            stats,
            model: self.model.clone(),
        })
    }
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain::prototype()
    }
}

/// A compiled kernel: mapping plus the derived metrics the evaluation
/// consumes.
#[derive(Debug, Clone)]
pub struct Compiled {
    dfg: Dfg,
    strategy: Strategy,
    mapping: Mapping,
    stats: FabricStats,
    model: PowerModel,
}

impl Compiled {
    /// The strategy that produced this result.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The placement/routing/DVFS result.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Per-tile activity statistics.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Average utilization of active tiles (Fig. 9 metric).
    pub fn average_utilization(&self) -> f64 {
        self.stats.average_utilization()
    }

    /// Average utilization over all tiles (Fig. 2 metric).
    pub fn average_utilization_all_tiles(&self) -> f64 {
        self.stats.average_utilization_all_tiles()
    }

    /// Average DVFS level across tiles (Fig. 10/12 metric).
    pub fn average_dvfs_level(&self) -> f64 {
        self.stats.average_dvfs_level()
    }

    /// Full Equation (2)–(4) accounting for `iterations` loop iterations.
    pub fn energy(&self, iterations: u64) -> EnergyBreakdown {
        EnergyBreakdown::account(
            &self.dfg,
            &self.mapping,
            &self.model,
            self.strategy.dvfs_support(),
            iterations,
        )
    }

    /// Average power in mW for `iterations` loop iterations (Fig. 11).
    pub fn power_mw(&self, iterations: u64) -> f64 {
        self.energy(iterations).total_power_mw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iced_kernels::{Kernel, UnrollFactor};

    #[test]
    fn all_strategies_compile_fir() {
        let tc = Toolchain::prototype();
        let dfg = Kernel::Fir.dfg(UnrollFactor::X1);
        for s in Strategy::ALL {
            let c = tc.compile(&dfg, s).unwrap();
            assert_eq!(c.strategy(), s);
            assert!(c.power_mw(100) > 0.0, "{}", s.name());
        }
    }

    #[test]
    fn headline_orderings_hold_for_fir() {
        let tc = Toolchain::prototype();
        let dfg = Kernel::Fir.dfg(UnrollFactor::X1);
        let base = tc.compile(&dfg, Strategy::Baseline).unwrap();
        let pg = tc.compile(&dfg, Strategy::BaselinePowerGated).unwrap();
        let iced = tc.compile(&dfg, Strategy::IcedIslands).unwrap();
        assert!(iced.average_utilization() > base.average_utilization());
        assert!(pg.power_mw(1000) < base.power_mw(1000));
        assert!(iced.power_mw(1000) < base.power_mw(1000));
        assert!(iced.average_dvfs_level() < 1.0);
    }
}
