//! End-to-end minimizer check on the historical lower-bound bug.
//!
//! Seed 0x7a80 (from the `ICED_FUZZ_SEED=0x7777` hunt) produced a kernel
//! where `iced_exact::lower_bound`'s routing term counted raw edge
//! multiplicity — a data edge plus two carried edges from one producer,
//! and a carried self-edge, pushed the claimed bound above the II the
//! mapper actually achieved. The fixed bound deduplicates neighbors; the
//! failure *pattern* is therefore "multiplicity-counted routing degree
//! exceeds neighbor-deduplicated routing degree enough to change the
//! bound". This test buries that pattern inside a much larger kernel and
//! checks the minimizer shrinks it back to a tiny repro, deterministically
//! across runs and threads.

use iced_dfg::{Dfg, DfgBuilder, EdgeKind, NodeId, Opcode};
use iced_fuzz::minimize::{minimize, MinimizeReport};

/// Prototype fabric's max tile degree (interior tile of the 6×6 mesh).
const LINKS: u32 = 4;

/// The pre-fix routing term: raw edge multiplicity.
fn route_mii_multiplicity(dfg: &Dfg) -> u32 {
    dfg.node_ids()
        .map(|n| {
            let din = dfg.in_edges(n).count() as u32;
            let dout = dfg.out_edges(n).count() as u32;
            (din.max(dout) + 1).div_ceil(LINKS + 1)
        })
        .max()
        .unwrap_or(1)
}

/// The fixed routing term: distinct non-self neighbors.
fn route_mii_dedup(dfg: &Dfg) -> u32 {
    dfg.node_ids()
        .map(|n| {
            let mut srcs: Vec<NodeId> = dfg
                .in_edges(n)
                .map(|e| e.src())
                .filter(|&s| s != n)
                .collect();
            srcs.sort_unstable();
            srcs.dedup();
            let mut dsts: Vec<NodeId> = dfg
                .out_edges(n)
                .map(|e| e.dst())
                .filter(|&d| d != n)
                .collect();
            dsts.sort_unstable();
            dsts.dedup();
            ((srcs.len() as u32).max(dsts.len() as u32) + 1).div_ceil(LINKS + 1)
        })
        .max()
        .unwrap_or(1)
}

/// The historical failure signature: the buggy bound disagrees with the
/// admissible one.
fn exhibits_bug(dfg: &Dfg) -> bool {
    route_mii_multiplicity(dfg) > route_mii_dedup(dfg)
}

/// The seed-0x7a80 pattern buried in ~24 nodes of scaffolding.
fn known_bad_kernel() -> Dfg {
    let mut b = DfgBuilder::new("buried_0x7a80");
    // Scaffolding: a 20-node accumulator chain with its own recurrence.
    let chain: Vec<NodeId> = (0..20)
        .map(|i| {
            let op = if i == 0 { Opcode::Phi } else { Opcode::Add };
            b.node(op, format!("c{i}"))
        })
        .collect();
    b.data_chain(&chain).unwrap();
    b.edge(chain[19], chain[0], EdgeKind::loop_carried(2))
        .unwrap();
    // The buggy pattern: phi → mul with parallel carried edges and a
    // carried self-edge.
    let phi = b.node(Opcode::Phi, "r0");
    let m1 = b.node(Opcode::Mul, "r1");
    let m2 = b.node(Opcode::Mul, "f2");
    b.data(phi, m1).unwrap();
    b.edge(m1, phi, EdgeKind::loop_carried(4)).unwrap();
    b.data(m2, m1).unwrap();
    b.edge(phi, m1, EdgeKind::loop_carried(2)).unwrap();
    b.edge(phi, m1, EdgeKind::loop_carried(3)).unwrap();
    b.edge(m1, m1, EdgeKind::loop_carried(4)).unwrap();
    // Cross links tying the pattern into the scaffolding.
    b.data(chain[19], phi).unwrap();
    b.data(chain[10], m2).unwrap();
    b.finish().unwrap()
}

#[test]
fn known_bad_seed_shrinks_to_a_tiny_repro() {
    let big = known_bad_kernel();
    assert!(big.node_count() >= 20);
    assert!(exhibits_bug(&big), "pattern must survive embedding");
    let report = minimize(&big, exhibits_bug, 50_000);
    assert!(
        report.dfg.node_count() <= 10,
        "repro still has {} nodes",
        report.dfg.node_count()
    );
    assert!(exhibits_bug(&report.dfg), "signature lost in shrinking");
    report.dfg.validate().unwrap();
}

#[test]
fn shrinking_is_deterministic_across_runs_and_threads() {
    let big = known_bad_kernel();
    let baseline: MinimizeReport = minimize(&big, exhibits_bug, 50_000);
    // Same run, same thread.
    assert_eq!(baseline, minimize(&big, exhibits_bug, 50_000));
    // Fresh threads: the repro and its serialized text must be identical.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let big = big.clone();
            std::thread::spawn(move || minimize(&big, exhibits_bug, 50_000))
        })
        .collect();
    let printed = iced_dfg::text::to_text(&baseline.dfg);
    for h in handles {
        let r = h.join().expect("minimizer thread panicked");
        assert_eq!(r, baseline);
        assert_eq!(iced_dfg::text::to_text(&r.dfg), printed);
    }
}

#[test]
fn minimized_repro_round_trips_through_text() {
    let report = minimize(&known_bad_kernel(), exhibits_bug, 50_000);
    let printed = iced_dfg::text::to_text(&report.dfg);
    let back = iced_dfg::text::parse(&printed).unwrap();
    assert_eq!(back, report.dfg);
}
