//! Greedy failure-preserving shrinking.
//!
//! When the harness finds a [`Bug`](crate::harness::Bug), the offending
//! kernel is usually a dozen-plus nodes of mostly-irrelevant structure.
//! [`minimize`] shrinks it by greedy deletion — drop a node (with its
//! edges), drop an edge — keeping each deletion only when the failure
//! *signature* survives, and repeating to a fixpoint. The result is the
//! small `.dfg` repro committed under the regression corpus.
//!
//! Everything here is deterministic: deletions are attempted in a fixed
//! order (highest node id first, then highest edge id first), so the same
//! input and the same predicate shrink to the same repro on every run and
//! any thread count.

use iced_dfg::{Dfg, DfgBuilder, NodeId};

use crate::harness::{Bug, Outcome};

/// The coarse failure signature the minimizer preserves.
///
/// Signatures intentionally drop detail (IIs, panic message suffixes,
/// node ids) so a shrink step that perturbs the numbers but keeps the
/// *kind* of failure still counts as the same bug.
pub fn signature(outcome: &Outcome) -> Option<String> {
    match outcome {
        Outcome::Fault(bug) => Some(match bug {
            Bug::Panic { stage, .. } => format!("panic:{stage}"),
            Bug::LowerBoundViolation { .. } => "lower_bound_violation".to_string(),
            Bug::DependencyViolation => "dependency_violation".to_string(),
            Bug::BackendDisagreement { .. } => "backend_disagreement".to_string(),
            Bug::EngineDivergence { .. } => "engine_divergence".to_string(),
            Bug::EngineRejectedMapping { .. } => "engine_rejected_mapping".to_string(),
            Bug::RoundTripMismatch => "round_trip_mismatch".to_string(),
        }),
        _ => None,
    }
}

/// Rebuilds `dfg` without node `victim`, densely renumbering the
/// survivors and dropping every edge touching the victim. Returns `None`
/// when the result is not a valid DFG (empty, or an edge rebuild fails).
pub fn delete_node(dfg: &Dfg, victim: NodeId) -> Option<Dfg> {
    if victim.index() >= dfg.node_count() || dfg.node_count() <= 1 {
        return None;
    }
    let mut b = DfgBuilder::new(dfg.name());
    // Dense renumber: survivors keep their relative order.
    let mut remap = vec![None; dfg.node_count()];
    for node in dfg.nodes() {
        if node.id() == victim {
            continue;
        }
        remap[node.id().index()] = Some(b.node(node.op(), node.label()));
    }
    for edge in dfg.edges() {
        let (Some(src), Some(dst)) = (remap[edge.src().index()], remap[edge.dst().index()]) else {
            continue;
        };
        b.edge(src, dst, edge.kind()).ok()?;
    }
    b.finish().ok()
}

/// Rebuilds `dfg` without its `victim`-th edge (by edge id order).
/// Returns `None` when the result is not a valid DFG.
pub fn delete_edge(dfg: &Dfg, victim: usize) -> Option<Dfg> {
    if victim >= dfg.edge_count() {
        return None;
    }
    let mut b = DfgBuilder::new(dfg.name());
    for node in dfg.nodes() {
        b.node(node.op(), node.label());
    }
    for (i, edge) in dfg.edges().enumerate() {
        if i == victim {
            continue;
        }
        b.edge(edge.src(), edge.dst(), edge.kind()).ok()?;
    }
    b.finish().ok()
}

/// What [`minimize`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinimizeReport {
    /// The shrunk kernel (possibly the input, when nothing could go).
    pub dfg: Dfg,
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Full greedy passes run (last one made no progress).
    pub passes: usize,
}

/// Greedily shrinks `dfg` while `check` stays `true`, up to `max_evals`
/// predicate evaluations.
///
/// `check` must return `true` exactly when a candidate still exhibits the
/// original failure signature (the caller composes [`signature`] with the
/// harness). The input itself is assumed to satisfy `check`; it is not
/// re-evaluated. Each pass tries deleting every node (highest id first,
/// so late scaffolding goes before early producers) and then every edge;
/// passes repeat until one makes no progress or the budget runs out.
pub fn minimize(
    dfg: &Dfg,
    mut check: impl FnMut(&Dfg) -> bool,
    max_evals: usize,
) -> MinimizeReport {
    let mut cur = dfg.clone();
    let mut evals = 0usize;
    let mut passes = 0usize;
    loop {
        passes += 1;
        let mut progressed = false;
        // Node deletions, highest id first.
        let mut idx = cur.node_count();
        while idx > 0 {
            idx -= 1;
            if evals >= max_evals {
                return MinimizeReport {
                    dfg: cur,
                    evals,
                    passes,
                };
            }
            let Some(candidate) = delete_node(&cur, NodeId::from_index(idx)) else {
                continue;
            };
            evals += 1;
            if check(&candidate) {
                cur = candidate;
                progressed = true;
                // Restart the scan below the deleted slot; ids above it
                // shifted down by one.
                idx = idx.min(cur.node_count());
            }
        }
        // Edge deletions, highest id first.
        let mut eidx = cur.edge_count();
        while eidx > 0 {
            eidx -= 1;
            if evals >= max_evals {
                return MinimizeReport {
                    dfg: cur,
                    evals,
                    passes,
                };
            }
            let Some(candidate) = delete_edge(&cur, eidx) else {
                continue;
            };
            evals += 1;
            if check(&candidate) {
                cur = candidate;
                progressed = true;
                eidx = eidx.min(cur.edge_count());
            }
        }
        if !progressed {
            return MinimizeReport {
                dfg: cur,
                evals,
                passes,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iced_dfg::Opcode;

    fn chain(n: usize) -> Dfg {
        let mut b = DfgBuilder::new("chain");
        let ids: Vec<NodeId> = (0..n)
            .map(|i| b.node(Opcode::Add, format!("n{i}")))
            .collect();
        b.data_chain(&ids).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn delete_node_renumbers_densely() {
        let g = chain(4);
        let shrunk = delete_node(&g, NodeId::from_index(3)).unwrap();
        assert_eq!(shrunk.node_count(), 3);
        assert_eq!(shrunk.edge_count(), 2);
        shrunk.validate().unwrap();
    }

    #[test]
    fn delete_last_node_refused() {
        let mut b = DfgBuilder::new("one");
        b.node(Opcode::Add, "only");
        let g = b.finish().unwrap();
        assert!(delete_node(&g, NodeId::from_index(0)).is_none());
    }

    #[test]
    fn delete_edge_drops_exactly_one() {
        let g = chain(4);
        let shrunk = delete_edge(&g, 1).unwrap();
        assert_eq!(shrunk.node_count(), 4);
        assert_eq!(shrunk.edge_count(), 2);
    }

    #[test]
    fn minimize_shrinks_to_predicate_core() {
        // "Bug" = graph still contains a node labelled n1. Minimizer
        // should strip everything else down to that single node.
        let g = chain(8);
        let report = minimize(&g, |d| d.nodes().any(|n| n.label() == "n1"), 10_000);
        assert_eq!(report.dfg.node_count(), 1);
        assert_eq!(report.dfg.nodes().next().unwrap().label(), "n1");
        assert!(report.passes >= 1);
    }

    #[test]
    fn minimize_is_deterministic() {
        let g = chain(10);
        let pred = |d: &Dfg| d.node_count() >= 3 || d.nodes().any(|n| n.label() == "n0");
        let a = minimize(&g, pred, 10_000);
        let b = minimize(&g, pred, 10_000);
        assert_eq!(a, b);
        assert_eq!(a.dfg.canonical_hash(), b.dfg.canonical_hash());
    }

    #[test]
    fn minimize_respects_budget() {
        let g = chain(12);
        let report = minimize(&g, |_| false, 5);
        assert_eq!(report.evals, 5);
        assert_eq!(report.dfg.node_count(), 12);
    }
}
