//! Structure-aware, seeded DFG generation.
//!
//! The generator grows the shape family of the random-DFG proptests in
//! `iced-dfg` into a corpus generator: every kernel is derived entirely
//! from a `u64` seed, so corpora are reproducible across machines, thread
//! counts, and runs. Structure is controlled by [`GenOptions`]:
//!
//! * **op mix** — weighted opcode draws; memory (`Load`/`Store`) and
//!   multiplier (`Mul`/`Div`) pressure are first-class knobs because they
//!   drive the mapper's MemMII/MulMII bounds;
//! * **recurrences** — a carried accumulator ring with configurable
//!   distance plus extra random carried edges (bounded, so cycle
//!   enumeration stays cheap);
//! * **control flow** — [`CfShape`]s lowered through the `iced-dfg`
//!   predication pass (triangles, diamonds, nested branches, early exits)
//!   or the loop-nest flattener (perfect/imperfect nests);
//! * **unroll** — an optional final ×2 unroll.

use iced_dfg::transform::{self, CfgBuilder, NestLink, Terminator, UnrollOptions};
use iced_dfg::{Dfg, DfgBuilder, DfgError, EdgeKind, NodeId, Opcode};

/// Deterministic SplitMix64 stream (the same generator the bench and
/// proptest layers use).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform draw in `[lo, hi]`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Control-flow shape of a generated kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfShape {
    /// Pure dataflow: accumulator ring + feeders + forward extras.
    Straight,
    /// Single if-triangle lowered through partial predication.
    Triangle,
    /// Single if-diamond.
    Diamond,
    /// A diamond nested inside one arm of an outer branch.
    NestedBranch,
    /// A branch whose arms only reconverge at the loop-body exit (early
    /// exit / tail split).
    EarlyExit,
    /// A perfect two-level loop nest flattened by its inner trip count.
    PerfectNest,
    /// An imperfect two-level nest: prologue/epilogue around the inner
    /// copies, inner recurrences redistributed to outer-carried edges.
    ImperfectNest,
}

impl CfShape {
    /// Every shape, in taxonomy order.
    pub const ALL: [CfShape; 7] = [
        CfShape::Straight,
        CfShape::Triangle,
        CfShape::Diamond,
        CfShape::NestedBranch,
        CfShape::EarlyExit,
        CfShape::PerfectNest,
        CfShape::ImperfectNest,
    ];

    /// Stable lower-case name (bench reports and repro headers).
    pub fn name(self) -> &'static str {
        match self {
            CfShape::Straight => "straight",
            CfShape::Triangle => "triangle",
            CfShape::Diamond => "diamond",
            CfShape::NestedBranch => "nested_branch",
            CfShape::EarlyExit => "early_exit",
            CfShape::PerfectNest => "perfect_nest",
            CfShape::ImperfectNest => "imperfect_nest",
        }
    }
}

/// Options controlling [`generate`].
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Minimum straight-line node count (before control-flow expansion).
    pub min_nodes: usize,
    /// Maximum straight-line node count.
    pub max_nodes: usize,
    /// Maximum loop-carried distance drawn for recurrences.
    pub max_distance: u32,
    /// Relative weight of memory opcodes (`Load`/`Store`) in the op mix;
    /// plain ALU opcodes each have weight 1.
    pub mem_weight: u32,
    /// Relative weight of multiplier opcodes (`Mul`/`Div`).
    pub mul_weight: u32,
    /// Maximum extra carried edges beyond the accumulator ring (bounds
    /// recurrence-cycle enumeration).
    pub max_extra_carries: usize,
    /// Control-flow shapes the generator may draw from; must be non-empty.
    pub shapes: Vec<CfShape>,
    /// Allow a final ×2 unroll step (drawn with probability ½).
    pub unroll: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            min_nodes: 3,
            max_nodes: 18,
            max_distance: 4,
            mem_weight: 2,
            mul_weight: 2,
            max_extra_carries: 3,
            shapes: CfShape::ALL.to_vec(),
            unroll: true,
        }
    }
}

impl GenOptions {
    /// A small-kernel profile whose graphs stay inside the exact backend's
    /// quick certification range.
    pub fn small() -> Self {
        GenOptions {
            min_nodes: 2,
            max_nodes: 8,
            unroll: false,
            ..GenOptions::default()
        }
    }
}

/// ALU opcodes with unit weight in the mix.
const ALU_OPS: [Opcode; 9] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Shift,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Max,
    Opcode::Min,
    Opcode::Mov,
];

fn draw_op(rng: &mut Rng, opts: &GenOptions) -> Opcode {
    let alu = ALU_OPS.len() as u64;
    let mem = 2 * u64::from(opts.mem_weight);
    let mul = 2 * u64::from(opts.mul_weight);
    let total = alu + mem + mul;
    let d = rng.below(total.max(1));
    if d < alu {
        ALU_OPS[d as usize]
    } else if d < alu + mem {
        if (d - alu).is_multiple_of(2) {
            Opcode::Load
        } else {
            Opcode::Store
        }
    } else if (d - alu - mem).is_multiple_of(2) {
        Opcode::Mul
    } else {
        Opcode::Div
    }
}

/// Generates the seed's kernel.
///
/// Same `(seed, opts)` → identical graph, bit for bit. The result is
/// always structurally valid when `Ok`; construction failures (a drawn
/// shape the transforms reject, e.g. an unrollable carried pattern) are
/// returned as the typed [`DfgError`] so harnesses can count them as a
/// taxonomy class rather than silently retrying.
///
/// # Errors
///
/// Propagates [`DfgError`] from graph construction or the control-flow
/// transforms; never panics for any seed.
pub fn generate(seed: u64, opts: &GenOptions) -> Result<Dfg, DfgError> {
    let mut rng = Rng::new(seed ^ 0xD1F7_5EED_0000_0001);
    let shape = if opts.shapes.is_empty() {
        CfShape::Straight
    } else {
        opts.shapes[rng.below(opts.shapes.len() as u64) as usize]
    };
    let name = format!("fuzz_{:016x}_{}", seed, shape.name());
    let dfg = match shape {
        CfShape::Straight => straight(&name, &mut rng, opts)?,
        CfShape::Triangle | CfShape::Diamond | CfShape::NestedBranch | CfShape::EarlyExit => {
            branchy(&name, &mut rng, opts, shape)?
        }
        CfShape::PerfectNest => {
            let inner = straight(&name, &mut rng, &shrunk(opts))?;
            let trip = rng.range(2, 3) as u32;
            transform::flatten_perfect(&inner, trip)?
        }
        CfShape::ImperfectNest => imperfect(&name, &mut rng, opts)?,
    };
    if opts.unroll && rng.chance(1, 2) {
        transform::unroll(&dfg, &UnrollOptions::new(2))
    } else {
        Ok(dfg)
    }
}

/// Halves the node budget for nest components so flattened graphs stay in
/// the configured range.
fn shrunk(opts: &GenOptions) -> GenOptions {
    GenOptions {
        min_nodes: (opts.min_nodes / 2).max(2),
        max_nodes: (opts.max_nodes / 3).max(3),
        max_extra_carries: 1,
        unroll: false,
        ..opts.clone()
    }
}

/// Pure-dataflow kernel: a carried accumulator ring, weighted-op feeders,
/// forward extras, and a bounded number of extra recurrences.
fn straight(name: &str, rng: &mut Rng, opts: &GenOptions) -> Result<Dfg, DfgError> {
    let n = rng.range(
        opts.min_nodes as u64,
        opts.max_nodes.max(opts.min_nodes) as u64,
    ) as usize;
    let ring = rng.range(1, n.min(5) as u64) as usize;
    let mut b = DfgBuilder::new(name);
    let ring_ids: Vec<NodeId> = (0..ring)
        .map(|i| {
            let op = if i == 0 {
                Opcode::Phi
            } else {
                draw_op(rng, opts)
            };
            b.node(op, format!("r{i}"))
        })
        .collect();
    b.data_chain(&ring_ids)?;
    let dist = rng.range(1, u64::from(opts.max_distance.max(1))) as u32;
    b.edge(
        ring_ids[ring - 1],
        ring_ids[0],
        EdgeKind::loop_carried(dist),
    )?;
    let mut all = ring_ids.clone();
    // Feeders: each points at a ring node or an earlier feeder target,
    // keeping the data subgraph acyclic (nothing ever points back at a
    // feeder from the ring).
    for i in ring..n {
        let op = draw_op(rng, opts);
        let id = b.node(op, format!("f{i}"));
        let tgt = all[rng.below(all.len().min(ring + i) as u64) as usize];
        skip_dup(b.data(id, tgt))?;
        all.push(id);
    }
    // Extra data edges from feeders to strictly earlier nodes. Feeder
    // edges always flow newer→older (into the ring eventually), and ring
    // nodes never point back out, so any `d < s` edge keeps the graph
    // acyclic by construction.
    let extras = rng.below((n as u64) + 1);
    for _ in 0..extras {
        let s = rng.below(all.len() as u64) as usize;
        let d = rng.below(all.len() as u64) as usize;
        if s >= ring && d < s {
            skip_dup(b.data(all[s], all[d]))?;
        }
    }
    // Extra recurrences: ring-interior or feeder→ring carried edges.
    let carries = rng.below(opts.max_extra_carries as u64 + 1);
    for _ in 0..carries {
        let s = all[rng.below(all.len() as u64) as usize];
        let d = all[rng.below(ring as u64) as usize];
        let dist = rng.range(1, u64::from(opts.max_distance.max(1))) as u32;
        skip_dup(b.edge(s, d, EdgeKind::loop_carried(dist)))?;
    }
    b.finish()
}

/// Treats duplicate-edge collisions as no-ops (random draws may repeat).
fn skip_dup(r: Result<(), DfgError>) -> Result<(), DfgError> {
    match r {
        Ok(()) | Err(DfgError::DuplicateEdge { .. }) => Ok(()),
        Err(e) => Err(e),
    }
}

/// Variable-pool helper for CFG generation: picks an argument name, biased
/// towards already-defined values over fresh live-ins.
fn arg<'p>(rng: &mut Rng, pool: &[&'p str], live: &'p [&'p str]) -> &'p str {
    if !pool.is_empty() && rng.chance(3, 4) {
        pool[rng.below(pool.len() as u64) as usize]
    } else {
        live[rng.below(live.len() as u64) as usize]
    }
}

/// Kernels with real control flow, lowered through partial predication.
fn branchy(name: &str, rng: &mut Rng, opts: &GenOptions, shape: CfShape) -> Result<Dfg, DfgError> {
    const LIVE: [&str; 4] = ["in0", "in1", "coef", "acc"];
    const VARS: [&str; 6] = ["x", "y", "z", "w", "u", "v"];
    let mut cfg = CfgBuilder::new(name);
    let entry = cfg.block();
    // Entry: mix in the carried accumulator (so the loop_carry below always
    // has a live-in Phi target), then a couple of computes and the
    // predicate.
    let mut defined: Vec<&str> = Vec::new();
    cfg.inst(entry, "mix", draw_op(rng, opts), &["acc", "in0"]);
    defined.push("mix");
    let n_entry = rng.range(1, 3) as usize;
    for &dest in &VARS[..n_entry] {
        let op = draw_op(rng, opts);
        let a0 = arg(rng, &defined, &LIVE);
        let a1 = arg(rng, &defined, &LIVE);
        cfg.inst(entry, dest, op, &[a0, a1]);
        if !defined.contains(&dest) {
            defined.push(dest);
        }
    }
    cfg.inst(entry, "p", Opcode::Cmp, &[arg(rng, &defined, &LIVE), "in1"]);

    // Emits one weighted-op instruction into `blk`, writing `dest`.
    let fill = |cfg: &mut CfgBuilder, blk, dest: &str, rng: &mut Rng, defined: &[&str]| {
        let op = draw_op(rng, opts);
        let a0 = arg(rng, defined, &LIVE);
        let a1 = arg(rng, defined, &LIVE);
        cfg.inst(blk, dest, op, &[a0, a1]);
    };

    match shape {
        CfShape::Triangle => {
            let t = cfg.block();
            let m = cfg.block();
            cfg.terminate(entry, Terminator::branch("p", t, m));
            fill(&mut cfg, t, "y", rng, &defined);
            cfg.terminate(t, Terminator::Jump(m));
            cfg.inst(m, "st", Opcode::Store, &["y"]);
            cfg.terminate(m, Terminator::Return);
        }
        CfShape::Diamond => {
            let t = cfg.block();
            let e = cfg.block();
            let m = cfg.block();
            cfg.terminate(entry, Terminator::branch("p", t, e));
            fill(&mut cfg, t, "y", rng, &defined);
            cfg.terminate(t, Terminator::Jump(m));
            fill(&mut cfg, e, "y", rng, &defined);
            cfg.terminate(e, Terminator::Jump(m));
            cfg.inst(m, "st", Opcode::Store, &["y"]);
            cfg.terminate(m, Terminator::Return);
        }
        CfShape::NestedBranch => {
            let outer_t = cfg.block();
            let inner_t = cfg.block();
            let inner_e = cfg.block();
            let inner_m = cfg.block();
            let outer_e = cfg.block();
            let outer_m = cfg.block();
            cfg.inst(
                entry,
                "q",
                Opcode::Cmp,
                &[arg(rng, &defined, &LIVE), "coef"],
            );
            cfg.terminate(entry, Terminator::branch("p", outer_t, outer_e));
            cfg.terminate(outer_t, Terminator::branch("q", inner_t, inner_e));
            fill(&mut cfg, inner_t, "y", rng, &defined);
            cfg.terminate(inner_t, Terminator::Jump(inner_m));
            fill(&mut cfg, inner_e, "y", rng, &defined);
            cfg.terminate(inner_e, Terminator::Jump(inner_m));
            cfg.terminate(inner_m, Terminator::Jump(outer_m));
            fill(&mut cfg, outer_e, "y", rng, &defined);
            cfg.terminate(outer_e, Terminator::Jump(outer_m));
            cfg.inst(outer_m, "st", Opcode::Store, &["y"]);
            cfg.terminate(outer_m, Terminator::Return);
        }
        CfShape::EarlyExit => {
            let bail = cfg.block();
            let rest = cfg.block();
            cfg.terminate(entry, Terminator::branch("p", bail, rest));
            cfg.inst(bail, "st", Opcode::Store, &[arg(rng, &defined, &LIVE)]);
            cfg.terminate(bail, Terminator::Return);
            fill(&mut cfg, rest, "y", rng, &defined);
            fill(&mut cfg, rest, "y2", rng, &defined);
            cfg.inst(rest, "st", Opcode::Store, &["y2"]);
            cfg.terminate(rest, Terminator::Return);
        }
        _ => unreachable!("branchy only handles branch shapes"),
    }
    // A recurrence through the predicated body with a drawn distance.
    let dist = rng.range(1, u64::from(opts.max_distance.max(1))) as u32;
    cfg.loop_carry("y", "acc", dist);
    cfg.finish()?.predicate()
}

/// Imperfect two-level nest: prologue/epilogue DFG around `trip` inner
/// copies with glue links.
fn imperfect(name: &str, rng: &mut Rng, opts: &GenOptions) -> Result<Dfg, DfgError> {
    // Outer level: base load → (epilogue add ← carried total phi) → store.
    let mut ob = DfgBuilder::new(format!("{name}_outer"));
    let base = ob.node(Opcode::Load, "base");
    let total = ob.node(Opcode::Phi, "total");
    let upd = ob.node(Opcode::Add, "upd");
    let st = ob.node(Opcode::Store, "out");
    ob.data(total, upd)?;
    ob.data(upd, st)?;
    ob.edge(
        upd,
        total,
        EdgeKind::loop_carried(rng.range(1, u64::from(opts.max_distance.max(1))) as u32),
    )?;
    let outer = ob.finish()?;
    let inner = straight(&format!("{name}_inner"), rng, &shrunk(opts))?;
    let trip = rng.range(2, 3) as u32;
    // Glue: base feeds the first (or every) inner ring head; the inner
    // ring's last node feeds the epilogue update.
    let inner_head = NodeId::from_index(0);
    let inner_tail = NodeId::from_index(inner.node_count() - 1);
    let prologue = if rng.chance(1, 2) {
        NestLink::PrologueToAll {
            outer: base,
            inner: inner_head,
        }
    } else {
        NestLink::PrologueToFirst {
            outer: base,
            inner: inner_head,
        }
    };
    let epilogue = if rng.chance(1, 2) {
        NestLink::LastToEpilogue {
            inner: inner_tail,
            outer: upd,
        }
    } else {
        NestLink::AllToEpilogue {
            inner: inner_tail,
            outer: upd,
        }
    };
    transform::flatten_nest(&outer, &inner, trip, &[prologue, epilogue])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_graph() {
        let opts = GenOptions::default();
        for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            let a = generate(seed, &opts).unwrap();
            let b = generate(seed, &opts).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn seeds_generate_valid_graphs() {
        let opts = GenOptions::default();
        for seed in 0..200u64 {
            let g = generate(seed, &opts).expect("generator is total over seeds");
            g.validate().unwrap();
            assert!(g.node_count() >= 1);
        }
    }

    #[test]
    fn every_shape_is_reachable() {
        let opts = GenOptions::default();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..300u64 {
            let g = generate(seed, &opts).unwrap();
            for shape in CfShape::ALL {
                if g.name().contains(shape.name()) {
                    seen.insert(shape.name());
                }
            }
        }
        // nested_branch contains no other shape name as a substring except
        // none; early_exit etc. are distinct tokens.
        assert!(seen.len() >= 6, "only shapes {seen:?} reached in 300 seeds");
    }

    #[test]
    fn single_shape_option_is_respected() {
        for shape in CfShape::ALL {
            let opts = GenOptions {
                shapes: vec![shape],
                unroll: false,
                ..GenOptions::default()
            };
            let g = generate(42, &opts).unwrap();
            assert!(
                g.name().contains(shape.name()),
                "{} missing from {}",
                shape.name(),
                g.name()
            );
        }
    }

    #[test]
    fn mem_pressure_knob_changes_op_mix() {
        let lean = GenOptions {
            mem_weight: 0,
            shapes: vec![CfShape::Straight],
            ..GenOptions::default()
        };
        let heavy = GenOptions {
            mem_weight: 20,
            shapes: vec![CfShape::Straight],
            ..GenOptions::default()
        };
        let count_mem = |opts: &GenOptions| -> usize {
            (0..50)
                .map(|s| {
                    let g = generate(s, opts).unwrap();
                    g.count_ops(|op| matches!(op, Opcode::Load | Opcode::Store))
                })
                .sum()
        };
        // Phi-ring heads aside, a 20× weight must dominate a 0 weight.
        assert!(count_mem(&heavy) > count_mem(&lean));
    }
}
