//! The committed regression corpus.
//!
//! Every bug the fuzzer has ever found is minimized (see
//! [`crate::minimize`]) into a small `.dfg` repro and committed under
//! `crates/iced-fuzz/corpus/regressions/`. The corpus is compiled in via
//! `include_str!`, replayed by this module's unit tests, and replayed
//! again by the `fuzz_sweep` bench binary — so a fixed bug that comes
//! back fails CI immediately, with the exact kernel that demonstrates it.
//!
//! Each repro records the failure signature it triggered at the time it
//! was found. After the fix, replaying it must produce a *clean* outcome
//! (mapped, degraded, or a typed rejection) at every standard density.

use iced_dfg::{text, Dfg};

use crate::harness::{run_case, HarnessOptions};

/// One committed regression repro.
#[derive(Debug, Clone, Copy)]
pub struct Repro {
    /// Corpus file stem.
    pub name: &'static str,
    /// Failure signature (see [`crate::minimize::signature`]) the kernel
    /// triggered when it was found, before the fix.
    pub signature: &'static str,
    /// The `.dfg` text (iced-dfg interchange format).
    pub text: &'static str,
}

impl Repro {
    /// Parses the committed kernel text.
    pub fn dfg(&self) -> Result<Dfg, text::ParseError> {
        text::parse(self.text)
    }
}

macro_rules! repro {
    ($name:literal, $signature:literal) => {
        Repro {
            name: $name,
            signature: $signature,
            text: include_str!(concat!("../corpus/regressions/", $name, ".dfg")),
        }
    };
}

/// The full committed corpus, in discovery order.
pub fn builtin_corpus() -> Vec<Repro> {
    vec![
        repro!("lb_route_parallel_edges", "bug:lower_bound_violation"),
        repro!("text_hostile_labels", "bug:round_trip_mismatch"),
    ]
}

/// Replays every committed repro at the standard density rungs and
/// returns the failures (repro name, density, outcome class). Empty means
/// the corpus is clean — every historical bug stays fixed.
pub fn replay_failures(opts: &HarnessOptions) -> Vec<(String, f64, String)> {
    let mut failures = Vec::new();
    for repro in builtin_corpus() {
        let dfg = match repro.dfg() {
            Ok(d) => d,
            Err(e) => {
                failures.push((repro.name.to_string(), -1.0, format!("parse: {e}")));
                continue;
            }
        };
        for density in [0.0, 0.25] {
            let outcome = run_case(&dfg, density, crate::DEFAULT_SEED, opts);
            if outcome.is_bug() {
                failures.push((repro.name.to_string(), density, outcome.class()));
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::with_quiet_panics;

    #[test]
    fn corpus_parses_and_validates() {
        for repro in builtin_corpus() {
            let dfg = repro
                .dfg()
                .unwrap_or_else(|e| panic!("corpus entry {} does not parse: {e}", repro.name));
            dfg.validate()
                .unwrap_or_else(|e| panic!("corpus entry {} invalid: {e}", repro.name));
            assert!(
                repro.signature.starts_with("bug:"),
                "corpus entry {} records a non-bug signature",
                repro.name
            );
        }
    }

    #[test]
    fn corpus_names_are_unique() {
        let mut names: Vec<&str> = builtin_corpus().iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), builtin_corpus().len());
    }

    #[test]
    fn replaying_the_corpus_finds_no_regressions() {
        let opts = HarnessOptions::default();
        let failures = with_quiet_panics(|| replay_failures(&opts));
        assert!(failures.is_empty(), "regressions resurfaced: {failures:?}");
    }
}
