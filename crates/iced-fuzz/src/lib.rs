//! Seeded DFG fuzzing and differential cross-backend checking.
//!
//! ICED's reproduction has three independent answer paths — the heuristic
//! mapper, the certified exact backend, and the compiled sim engine with
//! its preserved oracle. This crate turns them into a standing
//! scenario-coverage engine:
//!
//! * [`gen`] — a deterministic, structure-aware DFG corpus generator grown
//!   out of the random-DFG proptests: op mixes, recurrence distances,
//!   memory/multiplier pressure, and control-flow shapes (straight-line,
//!   triangles/diamonds, nested branches, early exits, perfect and
//!   imperfect loop nests) with optional unrolling.
//! * [`harness`] — runs one generated kernel × fault-density rung through
//!   every backend and cross-checks the answers: `lower_bound ≤ heuristic
//!   II`, dependency-checker acceptance, exact-certification agreement,
//!   and engine/oracle bit-identity. Any typed `MapError`/`EngineError` is
//!   an acceptable outcome; panics and backend disagreement are
//!   [`harness::Bug`]s.
//! * [`minimize`] — greedy node/edge deletion preserving a failure
//!   signature, shrinking found bugs to small committed repros.
//! * [`corpus`] — the committed `.dfg` regression corpus, replayed as unit
//!   tests and by the `fuzz_sweep` bench binary.
//!
//! Everything is deterministic: same seed → same kernels → byte-identical
//! outcome taxonomy, regardless of thread count or wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod corpus;
pub mod gen;
pub mod harness;
pub mod minimize;

pub use corpus::{builtin_corpus, Repro};
pub use gen::{generate, CfShape, GenOptions, Rng};
pub use harness::{run_case, run_seed, Bug, HarnessOptions, Outcome};
pub use minimize::{delete_edge, delete_node, minimize, signature, MinimizeReport};

/// The fuzzing seed: `ICED_FUZZ_SEED` (decimal or `0x`-prefixed hex), or a
/// fixed default so CI runs are reproducible.
pub fn env_seed() -> u64 {
    match std::env::var("ICED_FUZZ_SEED") {
        Ok(v) => {
            let v = v.trim();
            let parsed = if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                v.parse().ok()
            };
            parsed.unwrap_or(DEFAULT_SEED)
        }
        Err(_) => DEFAULT_SEED,
    }
}

/// The per-density case count: `ICED_FUZZ_CASES`, default 256.
pub fn env_cases() -> usize {
    std::env::var("ICED_FUZZ_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Default fuzzing seed (see [`env_seed`]).
pub const DEFAULT_SEED: u64 = 0x1CED_F0CC;

/// Default per-density case count (see [`env_cases`]).
pub const DEFAULT_CASES: usize = 256;

#[cfg(test)]
mod tests {
    #[test]
    fn defaults_without_env() {
        // Env vars are absent in the test harness unless a caller sets
        // them; the defaults must be stable because CI pins taxonomies.
        assert_eq!(super::DEFAULT_SEED, 0x1CED_F0CC);
        assert!(super::env_cases() >= 1);
    }
}
