//! The differential cross-backend harness.
//!
//! One *case* is a kernel × fault-density rung. The harness runs it through
//! every independent answer path and cross-checks:
//!
//! 1. **heuristic vs certified bound** — `iced_exact::lower_bound` is
//!    admissible on the intact fabric, and faults only *remove* resources,
//!    so `lower_bound ≤ II` must hold for every mapping, degraded or not;
//! 2. **heuristic vs exact** — for small fault-free kernels, full
//!    certification: the certified II may never exceed the heuristic's
//!    (the portfolio contains it), and an exact *refutation* while the
//!    heuristic holds a witness is a contradiction;
//! 3. **dependency discipline** — `check_dependencies` must accept every
//!    produced mapping;
//! 4. **engine vs oracle** — bit-identical [`EngineReport`]s on the mapped
//!    result (plus an SEU fault-sim smoke run on degraded rungs);
//! 5. **typed-failure discipline** — any [`MapError`] is an acceptable
//!    outcome; a panic anywhere is a [`Bug`].
//!
//! Classification never consults the wall clock — budgets are node counts,
//! II ceilings, and iteration counts — so the same seed produces the same
//! [`Outcome`] taxonomy byte for byte on any machine.

use std::panic::{catch_unwind, AssertUnwindSafe};

use iced_arch::CgraConfig;
use iced_dfg::{text, Dfg};
use iced_exact::{certify, lower_bound, ExactOptions};
use iced_fault::FaultPlan;
use iced_mapper::{check_dependencies, map_with_faults, MapError, MapperOptions};
use iced_sim::{run_engine, run_oracle, run_with_faults};

use crate::gen::{generate, GenOptions};

/// Options controlling one harness case.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Target fabric.
    pub cgra: CgraConfig,
    /// Heuristic mapper options. Defaults pin `threads = 1` so a panic in
    /// the mapper surfaces on the calling thread where the harness can
    /// catch and classify it.
    pub mapper: MapperOptions,
    /// Engine/oracle run length (iterations).
    pub iterations: u64,
    /// Engine/oracle input seed.
    pub sim_seed: u64,
    /// Run full exact certification only for fault-free kernels at or
    /// under this node count (the exact search is exponential).
    pub exact_max_nodes: usize,
    /// Exact-backend options; defaults use a deterministic node budget and
    /// no wall-clock deadline.
    pub exact: ExactOptions,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        let mapper = MapperOptions {
            max_ii: 64,
            threads: 1,
            ..MapperOptions::default()
        };
        // A small, deterministic budget: refutation work per search node is
        // expensive on the 6×6 fabric (milliseconds of MRRG propagation),
        // and the differential checks stay sound under truncation — a
        // `BestUnderBudget` certificate still pins `cert.ii ≤ heuristic II`
        // and passes the dependency checker.
        let exact = ExactOptions {
            max_ii: 64,
            node_budget: 1_500,
            ..ExactOptions::default()
        };
        HarnessOptions {
            cgra: CgraConfig::iced_prototype(),
            mapper,
            iterations: 12,
            sim_seed: 0x5EED,
            exact_max_nodes: 12,
            exact,
        }
    }
}

/// A differential failure: something no typed error path may ever produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bug {
    /// A backend panicked instead of returning a typed error.
    Panic {
        /// Which stage panicked (`map`, `lower_bound`, `certify`,
        /// `engine`, `oracle`, `fault_sim`, `round_trip`).
        stage: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The admissible lower bound exceeded a produced mapping's II.
    LowerBoundViolation {
        /// The bound.
        lower_bound: u32,
        /// The mapping's II.
        ii: u32,
    },
    /// `check_dependencies` rejected a produced mapping.
    DependencyViolation,
    /// The exact backend contradicted the heuristic (worse II than the
    /// portfolio guarantees, or a refutation while a witness exists).
    BackendDisagreement {
        /// Human-readable contradiction.
        detail: String,
    },
    /// Engine and oracle disagreed on a mapped result.
    EngineDivergence {
        /// Human-readable divergence.
        detail: String,
    },
    /// A backend rejected a mapping the mapper claimed valid.
    EngineRejectedMapping {
        /// The typed engine error.
        error: String,
    },
    /// `text::parse(text::to_text(g))` was not the identity.
    RoundTripMismatch,
}

/// The outcome of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Fault-free mapping that passed every cross-check.
    Mapped {
        /// Heuristic II.
        ii: u32,
        /// Admissible lower bound.
        lower_bound: u32,
        /// Certified II when exact certification ran and completed.
        certified: Option<u32>,
    },
    /// Mapping on a degraded fabric that passed every cross-check.
    Degraded {
        /// Achieved II.
        ii: u32,
        /// II penalty vs the healthy-fabric baseline.
        penalty: u32,
    },
    /// The mapper rejected the case with a typed error — an acceptable
    /// outcome by contract.
    Rejected {
        /// Stable taxonomy class (e.g. `ii_exceeded`).
        class: &'static str,
    },
    /// The generator itself rejected the drawn structure with a typed
    /// `DfgError` (counted, never hidden by retries).
    GeneratorReject {
        /// The typed error rendered.
        error: String,
    },
    /// A differential failure.
    Fault(Bug),
}

impl Outcome {
    /// Whether this outcome is a bug (panic, disagreement, divergence…).
    pub fn is_bug(&self) -> bool {
        matches!(self, Outcome::Fault(_))
    }

    /// Stable taxonomy key for aggregation (`mapped`, `degraded`,
    /// `rejected:<class>`, `generator_reject`, `bug:<kind>`).
    pub fn class(&self) -> String {
        match self {
            Outcome::Mapped { .. } => "mapped".to_string(),
            Outcome::Degraded { .. } => "degraded".to_string(),
            Outcome::Rejected { class } => format!("rejected:{class}"),
            Outcome::GeneratorReject { .. } => "generator_reject".to_string(),
            Outcome::Fault(b) => format!("bug:{}", bug_kind(b)),
        }
    }
}

fn bug_kind(b: &Bug) -> String {
    match b {
        Bug::Panic { stage, .. } => format!("panic:{stage}"),
        Bug::LowerBoundViolation { .. } => "lower_bound_violation".to_string(),
        Bug::DependencyViolation => "dependency_violation".to_string(),
        Bug::BackendDisagreement { .. } => "backend_disagreement".to_string(),
        Bug::EngineDivergence { .. } => "engine_divergence".to_string(),
        Bug::EngineRejectedMapping { .. } => "engine_rejected_mapping".to_string(),
        Bug::RoundTripMismatch => "round_trip_mismatch".to_string(),
    }
}

/// Stable taxonomy class of a [`MapError`].
pub fn map_error_class(e: &MapError) -> &'static str {
    match e {
        MapError::IiExceeded { .. } => "ii_exceeded",
        MapError::MemoryPressure => "memory_pressure",
        MapError::DeadlineExceeded => "deadline",
        MapError::Infeasible { .. } => "infeasible",
        MapError::BudgetExhausted { .. } => "budget_exhausted",
        MapError::Arch(_) => "arch",
        MapError::Dfg(_) => "dfg",
        _ => "other",
    }
}

/// Runs `f`, converting a panic into `Err(message)`.
fn catching<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

/// Runs one kernel × fault-density case through the full oracle matrix.
///
/// `density == 0.0` is the fault-free rung (an empty plan, bit-identical
/// to plain mapping); positive densities draw a deterministic
/// [`FaultPlan`] from `fault_seed`.
pub fn run_case(dfg: &Dfg, density: f64, fault_seed: u64, opts: &HarnessOptions) -> Outcome {
    // (1) Text round-trip: minimized repros must be faithful.
    match catching(|| text::parse(&text::to_text(dfg)).ok() == Some(dfg.clone())) {
        Ok(true) => {}
        Ok(false) => return Outcome::Fault(Bug::RoundTripMismatch),
        Err(message) => {
            return Outcome::Fault(Bug::Panic {
                stage: "round_trip",
                message,
            })
        }
    }
    let plan = if density > 0.0 {
        FaultPlan::generate(&opts.cgra, fault_seed, density)
    } else {
        FaultPlan::empty()
    };
    // (2) Heuristic map (degraded-aware path; empty plan is bit-identical
    // to the plain mapper).
    let degraded = match catching(|| map_with_faults(dfg, &opts.cgra, &opts.mapper, &plan)) {
        Err(message) => {
            return Outcome::Fault(Bug::Panic {
                stage: "map",
                message,
            })
        }
        Ok(Err(e)) => {
            return Outcome::Rejected {
                class: map_error_class(&e),
            }
        }
        Ok(Ok(d)) => d,
    };
    let mapping = &degraded.mapping;
    let ii = mapping.ii();
    // (3) Dependency checker must accept.
    match catching(|| check_dependencies(dfg, mapping)) {
        Ok(true) => {}
        Ok(false) => return Outcome::Fault(Bug::DependencyViolation),
        Err(message) => {
            return Outcome::Fault(Bug::Panic {
                stage: "check_dependencies",
                message,
            })
        }
    }
    // (4) Admissible bound on the *intact* fabric: any mapping on a
    // degraded fabric is also a mapping on the intact one, so the bound
    // holds at every density.
    let lb = match catching(|| lower_bound(dfg, &opts.cgra)) {
        Ok(lb) => lb,
        Err(message) => {
            return Outcome::Fault(Bug::Panic {
                stage: "lower_bound",
                message,
            })
        }
    };
    if lb > ii {
        return Outcome::Fault(Bug::LowerBoundViolation {
            lower_bound: lb,
            ii,
        });
    }
    // (5) Exact certification for small fault-free kernels.
    let mut certified = None;
    if plan.is_empty() && dfg.node_count() <= opts.exact_max_nodes {
        match catching(|| certify(dfg, &opts.cgra, &opts.mapper, &opts.exact)) {
            Err(message) => {
                return Outcome::Fault(Bug::Panic {
                    stage: "certify",
                    message,
                })
            }
            Ok(Ok(cert)) => {
                let c = cert.certificate;
                if c.ii > ii {
                    return Outcome::Fault(Bug::BackendDisagreement {
                        detail: format!(
                            "certified ii {} exceeds heuristic ii {} (portfolio must contain it)",
                            c.ii, ii
                        ),
                    });
                }
                if c.lower_bound > c.ii {
                    return Outcome::Fault(Bug::BackendDisagreement {
                        detail: format!(
                            "certificate bound {} exceeds certified ii {}",
                            c.lower_bound, c.ii
                        ),
                    });
                }
                match catching(|| check_dependencies(dfg, &cert.mapping)) {
                    Ok(true) => {}
                    Ok(false) => return Outcome::Fault(Bug::DependencyViolation),
                    Err(message) => {
                        return Outcome::Fault(Bug::Panic {
                            stage: "check_dependencies",
                            message,
                        })
                    }
                }
                certified = Some(c.ii);
            }
            Ok(Err(e)) => match e {
                // Budget/deadline truncation is inconclusive — acceptable.
                MapError::BudgetExhausted { .. } | MapError::DeadlineExceeded => {}
                // Anything else claims the kernel cannot map — but the
                // heuristic holds a witness.
                other => {
                    return Outcome::Fault(Bug::BackendDisagreement {
                        detail: format!(
                            "exact backend rejected ({other}) while heuristic mapped at ii {ii}"
                        ),
                    })
                }
            },
        }
    }
    // (6) Engine vs oracle bit-identity on the mapped result.
    let eng = catching(|| run_engine(dfg, mapping, opts.iterations, opts.sim_seed));
    let ora = catching(|| run_oracle(dfg, mapping, opts.iterations, opts.sim_seed));
    match (eng, ora) {
        (Err(message), _) => {
            return Outcome::Fault(Bug::Panic {
                stage: "engine",
                message,
            })
        }
        (_, Err(message)) => {
            return Outcome::Fault(Bug::Panic {
                stage: "oracle",
                message,
            })
        }
        (Ok(Ok(a)), Ok(Ok(b))) => {
            if a != b {
                return Outcome::Fault(Bug::EngineDivergence {
                    detail: format!("engine {a:?} != oracle {b:?}"),
                });
            }
        }
        (Ok(Err(ea)), Ok(Err(eb))) => {
            // Both backends rejecting a mapper-approved mapping means the
            // mapper emitted an invalid schedule.
            return Outcome::Fault(Bug::EngineRejectedMapping {
                error: format!("engine: {ea}; oracle: {eb}"),
            });
        }
        (Ok(a), Ok(b)) => {
            return Outcome::Fault(Bug::EngineDivergence {
                detail: format!("engine {a:?} vs oracle {b:?} disagree on acceptance"),
            });
        }
    }
    // (7) SEU fault-sim smoke on degraded rungs: typed contract says a
    // correct mapping never errors.
    if !plan.is_empty() {
        match catching(|| run_with_faults(dfg, mapping, opts.iterations, opts.sim_seed, &plan)) {
            Err(message) => {
                return Outcome::Fault(Bug::Panic {
                    stage: "fault_sim",
                    message,
                })
            }
            Ok(Err(e)) => {
                return Outcome::Fault(Bug::EngineRejectedMapping {
                    error: format!("fault sim: {e}"),
                })
            }
            Ok(Ok(_)) => {}
        }
        return Outcome::Degraded {
            ii,
            penalty: degraded.ii_penalty,
        };
    }
    Outcome::Mapped {
        ii,
        lower_bound: lb,
        certified,
    }
}

/// Generates the seed's kernel and runs its case: the one-call entry the
/// sweep binary and chaos tests use. Returns the generated kernel (when
/// generation succeeded) alongside the outcome.
pub fn run_seed(
    seed: u64,
    density: f64,
    gopts: &GenOptions,
    hopts: &HarnessOptions,
) -> (Option<Dfg>, Outcome) {
    match catching(|| generate(seed, gopts)) {
        Err(message) => (
            None,
            Outcome::Fault(Bug::Panic {
                stage: "generate",
                message,
            }),
        ),
        Ok(Err(e)) => (
            None,
            Outcome::GeneratorReject {
                error: e.to_string(),
            },
        ),
        Ok(Ok(dfg)) => {
            // Salt the fault seed per kernel so rungs do not reuse one
            // fault pattern across the corpus (same scheme as fault_sweep).
            let fault_seed = (0xFA11 ^ dfg.canonical_hash()).wrapping_add(seed.wrapping_mul(7919));
            let outcome = run_case(&dfg, density, fault_seed, hopts);
            (Some(dfg), outcome)
        }
    }
}

/// Installs a silent panic hook for the duration of `f`, so expected
/// `catch_unwind` classification does not spam stderr with backtraces.
/// Restores the previous hook afterwards. Process-global: callers run it
/// once around a whole sweep, not per case.
pub fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_cases_map_or_reject_typed() {
        let gopts = GenOptions::default();
        let hopts = HarnessOptions::default();
        with_quiet_panics(|| {
            for seed in 0..40u64 {
                let (_, outcome) = run_seed(seed, 0.0, &gopts, &hopts);
                assert!(!outcome.is_bug(), "seed {seed}: {outcome:?}");
            }
        });
    }

    #[test]
    fn degraded_rungs_hold_the_contract() {
        let gopts = GenOptions::default();
        let hopts = HarnessOptions::default();
        with_quiet_panics(|| {
            for seed in 0..15u64 {
                for density in [0.1, 0.3] {
                    let (_, outcome) = run_seed(seed, density, &gopts, &hopts);
                    assert!(!outcome.is_bug(), "seed {seed} d{density}: {outcome:?}");
                }
            }
        });
    }

    #[test]
    fn outcomes_are_deterministic() {
        let gopts = GenOptions::default();
        let hopts = HarnessOptions::default();
        with_quiet_panics(|| {
            for seed in [3u64, 17, 91] {
                let (_, a) = run_seed(seed, 0.2, &gopts, &hopts);
                let (_, b) = run_seed(seed, 0.2, &gopts, &hopts);
                assert_eq!(a, b);
            }
        });
    }

    #[test]
    fn taxonomy_classes_are_stable_strings() {
        let o = Outcome::Rejected {
            class: "ii_exceeded",
        };
        assert_eq!(o.class(), "rejected:ii_exceeded");
        let b = Outcome::Fault(Bug::DependencyViolation);
        assert_eq!(b.class(), "bug:dependency_violation");
        assert!(b.is_bug());
    }
}
