//! CGRA partitioning across pipeline kernels.
//!
//! Each kernel of a streaming application occupies at least one island
//! (§IV-B "CGRA Partitioning"). Offline, the compiler profiles every kernel
//! on every feasible island count, then exhaustively searches the
//! allocation that minimises the pipeline's bottleneck latency over a set
//! of profiling inputs (the paper uses 50 random instances). At runtime the
//! allocation is fixed; only DVFS levels change.

use iced_arch::{CgraConfig, DvfsLevel};
use iced_kernels::pipelines::{Pipeline, StageKernel};
use iced_kernels::UnrollFactor;
use iced_mapper::{map_with, MapError, MapperOptions};
use iced_sim::FabricStats;

/// Profile of one pipeline kernel: achieved II and activity per island
/// budget.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// The stage kernel this profiles.
    pub stage: StageKernel,
    /// `ii_by_islands[k - 1]` = II in base cycles when mapped on `k`
    /// islands (`None` when unmappable within that budget).
    pub ii_by_islands: Vec<Option<u32>>,
    /// Average busy fraction of the active tiles at the Table I allocation
    /// (used for power accounting).
    pub activity: f64,
}

impl KernelProfile {
    /// Profiles `stage` on `config` for island budgets `1..=max_islands`.
    ///
    /// Streaming kernels are mapped with a uniform `normal` level (§IV-B
    /// maps partitions at normal/relax; we keep partitions uniform so the
    /// runtime controller can scale a kernel's whole island group one level
    /// at a time).
    ///
    /// # Errors
    ///
    /// Returns an error if the kernel cannot be mapped even on the full
    /// fabric.
    pub fn measure(
        stage: StageKernel,
        config: &CgraConfig,
        max_islands: usize,
    ) -> Result<KernelProfile, MapError> {
        let dfg = stage.source.dfg(UnrollFactor::X1);
        let mut ii_by_islands = Vec::with_capacity(max_islands);
        let mut activity = 0.25;
        for k in 1..=max_islands {
            let opts = MapperOptions {
                dvfs_aware: false,
                allowed_levels: vec![DvfsLevel::Normal],
                island_budget: Some(k),
                ..MapperOptions::default()
            };
            match map_with(&dfg, config, &opts) {
                Ok(m) => {
                    if k == stage.islands.min(max_islands) {
                        let stats = FabricStats::analyze(&m);
                        // Busy fraction of the tiles actually granted to
                        // this kernel.
                        let tpi = config.island_rows() * config.island_cols();
                        let used = (k * tpi).max(1);
                        let busy: f64 = stats
                            .tiles()
                            .iter()
                            .take(used)
                            .map(|t| t.utilization())
                            .sum();
                        activity = busy / used as f64;
                    }
                    ii_by_islands.push(Some(m.ii()));
                }
                Err(MapError::IiExceeded { .. }) | Err(MapError::MemoryPressure) => {
                    ii_by_islands.push(None);
                }
                Err(e) => return Err(e),
            }
        }
        if ii_by_islands.iter().all(Option::is_none) {
            return Err(MapError::IiExceeded { max_ii: 0 });
        }
        Ok(KernelProfile {
            stage,
            ii_by_islands,
            activity,
        })
    }

    /// II when granted `islands` islands (falling back to the smallest
    /// feasible budget above it).
    pub fn ii(&self, islands: usize) -> Option<u32> {
        let idx = islands.clamp(1, self.ii_by_islands.len()) - 1;
        self.ii_by_islands[idx..].iter().flatten().next().copied()
    }

    /// Smallest island budget this kernel can be mapped with.
    pub fn min_islands(&self) -> usize {
        1 + self
            .ii_by_islands
            .iter()
            .position(Option::is_some)
            .expect("measure() guarantees at least one feasible budget")
    }
}

/// A complete static partitioning of the fabric across pipeline kernels.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per stage: the kernels with their granted islands, in stage order.
    /// `allocations[s][k]` corresponds to `pipeline.stages[s].kernels[k]`.
    pub allocations: Vec<Vec<usize>>,
    /// The kernel profiles, flattened in stage order.
    pub profiles: Vec<KernelProfile>,
}

impl Partition {
    /// Uses the island allocation published in Table I.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from profiling.
    pub fn table1(pipeline: &Pipeline, config: &CgraConfig) -> Result<Partition, MapError> {
        let mut allocations = Vec::new();
        let mut profiles = Vec::new();
        for stage in &pipeline.stages {
            let mut row = Vec::new();
            for sk in &stage.kernels {
                row.push(sk.islands);
                profiles.push(KernelProfile::measure(*sk, config, config.island_count())?);
            }
            allocations.push(row);
        }
        Ok(Partition {
            allocations,
            profiles,
        })
    }

    /// Offline exhaustive search: enumerate all island allocations (each
    /// kernel ≥ its feasible minimum, total ≤ the fabric's island count)
    /// and pick the one minimising the average bottleneck latency over the
    /// profiling inputs `profile_units` (work units per input).
    ///
    /// # Errors
    ///
    /// Propagates mapping failures from profiling.
    pub fn exhaustive(
        pipeline: &Pipeline,
        config: &CgraConfig,
        profile_units: &[u64],
    ) -> Result<Partition, MapError> {
        let mut profiles = Vec::new();
        for stage in &pipeline.stages {
            for sk in &stage.kernels {
                profiles.push(KernelProfile::measure(*sk, config, config.island_count())?);
            }
        }
        let total = config.island_count();
        let mins: Vec<usize> = profiles.iter().map(KernelProfile::min_islands).collect();
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut current = mins.clone();
        search(
            &profiles,
            profile_units,
            &mins,
            total,
            0,
            &mut current,
            &mut best,
        );
        let flat = best.map(|(_, a)| a).unwrap_or(mins);
        // Unflatten into stage shape.
        let mut allocations = Vec::new();
        let mut it = flat.into_iter();
        for stage in &pipeline.stages {
            allocations.push(
                stage
                    .kernels
                    .iter()
                    .map(|_| it.next().expect("arity"))
                    .collect(),
            );
        }
        Ok(Partition {
            allocations,
            profiles,
        })
    }

    /// Re-searches the island allocation for a shrunken fabric — the
    /// failover path when islands die mid-run. Reuses the offline profiles
    /// (no re-mapping) and the same exhaustive bottleneck search as
    /// [`Partition::exhaustive`], so the result is deterministic in
    /// `(self, total_islands, profile_units)`.
    ///
    /// Returns the flat per-kernel island counts, or `None` when the
    /// surviving fabric cannot grant every kernel its feasible minimum —
    /// the pipeline cannot continue and the caller must halt the stream.
    pub fn reallocate(&self, total_islands: usize, profile_units: &[u64]) -> Option<Vec<usize>> {
        let mins: Vec<usize> = self
            .profiles
            .iter()
            .map(KernelProfile::min_islands)
            .collect();
        if mins.iter().sum::<usize>() > total_islands {
            return None;
        }
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut current = mins.clone();
        search(
            &self.profiles,
            profile_units,
            &mins,
            total_islands,
            0,
            &mut current,
            &mut best,
        );
        Some(best.map(|(_, a)| a).unwrap_or(mins))
    }

    /// Islands granted to flattened kernel index `i`.
    pub fn islands_of(&self, i: usize) -> usize {
        let mut idx = 0;
        for row in &self.allocations {
            for &a in row {
                if idx == i {
                    return a;
                }
                idx += 1;
            }
        }
        panic!("kernel index {i} out of range");
    }

    /// Total islands allocated.
    pub fn total_islands(&self) -> usize {
        self.allocations.iter().flatten().sum()
    }
}

/// Average bottleneck latency (in base cycles) of an allocation over the
/// profiling inputs.
fn bottleneck_cost(profiles: &[KernelProfile], alloc: &[usize], units: &[u64]) -> f64 {
    let mut acc = 0.0;
    for &u in units {
        let mut worst = 0.0f64;
        for (p, &k) in profiles.iter().zip(alloc) {
            let ii = p.ii(k).unwrap_or(u32::MAX) as f64;
            let iters = p.stage.work.iterations(u) as f64;
            worst = worst.max(ii * iters);
        }
        acc += worst;
    }
    acc / units.len().max(1) as f64
}

fn search(
    profiles: &[KernelProfile],
    units: &[u64],
    mins: &[usize],
    remaining: usize,
    idx: usize,
    current: &mut Vec<usize>,
    best: &mut Option<(f64, Vec<usize>)>,
) {
    if idx == profiles.len() {
        let cost = bottleneck_cost(profiles, current, units);
        if best.as_ref().is_none_or(|(b, _)| cost < *b) {
            *best = Some((cost, current.clone()));
        }
        return;
    }
    let others_min: usize = mins[idx + 1..].iter().sum();
    let max_here = remaining.saturating_sub(others_min);
    for k in mins[idx]..=max_here.max(mins[idx]) {
        if k > remaining {
            break;
        }
        current[idx] = k;
        search(profiles, units, mins, remaining - k, idx + 1, current, best);
    }
    current[idx] = mins[idx];
}

#[cfg(test)]
mod tests {
    use super::*;
    use iced_kernels::Kernel;

    #[test]
    fn profiles_improve_with_more_islands() {
        let cfg = CgraConfig::iced_prototype();
        let p = Pipeline::gcn();
        let sk = *p
            .stage_kernels()
            .find(|k| k.source.is_kernel(Kernel::GcnAggregate))
            .unwrap();
        let prof = KernelProfile::measure(sk, &cfg, 9).unwrap();
        let small = prof.ii(prof.min_islands()).unwrap();
        let large = prof.ii(9).unwrap();
        assert!(large <= small, "II {large} on 9 islands vs {small}");
        assert!(prof.activity > 0.0 && prof.activity <= 1.0);
    }

    #[test]
    fn table1_partition_fills_the_fabric() {
        let cfg = CgraConfig::iced_prototype();
        let p = Pipeline::lu();
        let part = Partition::table1(&p, &cfg).unwrap();
        assert_eq!(part.total_islands(), 9);
        assert_eq!(part.profiles.len(), 6);
    }

    #[test]
    fn exhaustive_search_respects_bounds_and_beats_naive() {
        let cfg = CgraConfig::iced_prototype();
        let p = Pipeline::gcn();
        let units: Vec<u64> = (0..10).map(|i| 20 + 15 * i).collect();
        let part = Partition::exhaustive(&p, &cfg, &units).unwrap();
        assert!(part.total_islands() <= 9);
        for (i, prof) in part.profiles.iter().enumerate() {
            assert!(part.islands_of(i) >= prof.min_islands());
        }
        // The chosen allocation is no worse than the all-minimum one.
        let flat: Vec<usize> = (0..part.profiles.len())
            .map(|i| part.islands_of(i))
            .collect();
        let mins: Vec<usize> = part
            .profiles
            .iter()
            .map(KernelProfile::min_islands)
            .collect();
        assert!(
            bottleneck_cost(&part.profiles, &flat, &units)
                <= bottleneck_cost(&part.profiles, &mins, &units) + 1e-9
        );
    }
}
