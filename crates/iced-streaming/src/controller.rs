//! The runtime DVFS Controller (paper §III-B).
//!
//! The controller keeps an `exeTable` of the execution times each kernel
//! reported over the current window (10 inputs, like DRIPS) and a
//! `mapTable` associating kernels with their islands. When the window
//! closes it identifies the bottleneck kernel (largest average execution
//! time), raises its islands one V/F level, and lowers every other
//! kernel's islands one level — all islands of one kernel move together
//! (§IV-B), and `rest` is the lowest runtime level.

use iced_arch::DvfsLevel;
use iced_trace::Phase;

/// What the controller decided at a window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControllerDecision {
    /// Index of the bottleneck kernel this window.
    pub bottleneck: usize,
    /// New level per kernel.
    pub levels: Vec<DvfsLevel>,
}

/// Windowed DVFS controller state.
#[derive(Debug, Clone)]
pub struct DvfsController {
    window: usize,
    exe_table: Vec<Vec<f64>>,
    levels: Vec<DvfsLevel>,
}

impl DvfsController {
    /// Creates a controller for `kernels` pipeline kernels with the given
    /// window length (the paper and DRIPS use 10).
    pub fn new(kernels: usize, window: usize) -> Self {
        DvfsController {
            window: window.max(1),
            exe_table: vec![Vec::new(); kernels],
            levels: vec![DvfsLevel::Normal; kernels],
        }
    }

    /// Current level of kernel `k`.
    pub fn level(&self, k: usize) -> DvfsLevel {
        self.levels[k]
    }

    /// All current levels.
    pub fn levels(&self) -> &[DvfsLevel] {
        &self.levels
    }

    /// Records a kernel's termination signal for one input (updates the
    /// `exeTable`). Once every kernel has reported `window` executions the
    /// DVFS switch triggers and the decision is returned.
    pub fn record(&mut self, kernel: usize, exec_time_us: f64) -> Option<ControllerDecision> {
        self.exe_table[kernel].push(exec_time_us);
        if self.exe_table.iter().any(|t| t.len() < self.window) {
            return None;
        }
        let avgs: Vec<f64> = self
            .exe_table
            .iter()
            .map(|t| t.iter().sum::<f64>() / t.len() as f64)
            .collect();
        let bottleneck = avgs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("times are finite"))
            .map(|(i, _)| i)
            .expect("at least one kernel");
        let worst = avgs[bottleneck];
        let old_levels = iced_trace::enabled().then(|| self.levels.clone());
        for (k, lvl) in self.levels.iter_mut().enumerate() {
            if k == bottleneck {
                *lvl = lvl.raised();
                continue;
            }
            // Lower "if possible" (§III-B): halving a kernel's frequency
            // doubles its execution time; only do it when the slack keeps
            // it clearly under the bottleneck, otherwise the slowed kernel
            // would immediately become the new bottleneck and throughput —
            // which ICED promises not to sacrifice — would drop.
            let cur_div = lvl.rate_divisor().unwrap_or(4) as f64;
            let new_div = lvl.lowered().rate_divisor().unwrap_or(4) as f64;
            let projected = avgs[k] * new_div / cur_div;
            if projected <= worst * 0.95 {
                *lvl = lvl.lowered();
            } else if avgs[k] > worst * 0.95 {
                // Close to the bottleneck itself: recover headroom.
                *lvl = lvl.raised();
            }
        }
        for t in &mut self.exe_table {
            t.clear();
        }
        if let Some(old) = old_levels {
            self.trace_decision(bottleneck, &avgs, worst, &old);
        }
        Some(ControllerDecision {
            bottleneck,
            levels: self.levels.clone(),
        })
    }

    /// Emits one instant event per window decision — per-kernel exeTable
    /// averages and `old→new` level transitions — plus raise/lower counters.
    fn trace_decision(&self, bottleneck: usize, avgs: &[f64], worst: f64, old: &[DvfsLevel]) {
        iced_trace::counter(Phase::Controller, "decisions", 1);
        let mut args: Vec<(String, iced_trace::ArgValue)> = vec![
            ("bottleneck".to_string(), (bottleneck as u64).into()),
            ("worst_avg_us".to_string(), worst.into()),
        ];
        for (k, (&o, &n)) in old.iter().zip(&self.levels).enumerate() {
            args.push((format!("k{k}_avg_us"), avgs[k].into()));
            args.push((format!("k{k}_level"), format!("{o:?}->{n:?}").into()));
            if n > o {
                iced_trace::counter(Phase::Controller, "level_raises", 1);
            } else if n < o {
                iced_trace::counter(Phase::Controller, "level_lowers", 1);
            }
        }
        let borrowed: Vec<(&str, iced_trace::ArgValue)> =
            args.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        iced_trace::instant(Phase::Controller, "dvfs_decision", &borrowed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_triggers_after_ten_reports_per_kernel() {
        let mut c = DvfsController::new(2, 10);
        for i in 0..9 {
            assert!(c.record(0, 5.0).is_none(), "round {i}");
            assert!(c.record(1, 1.0).is_none());
        }
        assert!(c.record(0, 5.0).is_none());
        let d = c.record(1, 1.0).expect("10th report closes the window");
        assert_eq!(d.bottleneck, 0);
        assert_eq!(d.levels[0], DvfsLevel::Normal); // raised() saturates
        assert_eq!(d.levels[1], DvfsLevel::Relax); // non-bottleneck lowered
    }

    #[test]
    fn non_bottleneck_floors_at_rest() {
        let mut c = DvfsController::new(2, 1);
        for _ in 0..5 {
            c.record(0, 9.0);
            c.record(1, 1.0);
        }
        assert_eq!(c.level(0), DvfsLevel::Normal);
        assert_eq!(c.level(1), DvfsLevel::Rest);
    }

    #[test]
    fn bottleneck_shift_raises_the_new_bottleneck() {
        let mut c = DvfsController::new(2, 1);
        c.record(0, 9.0);
        c.record(1, 1.0);
        assert_eq!(c.level(1), DvfsLevel::Relax);
        // Kernel 1 becomes the bottleneck (denser input).
        c.record(0, 1.0);
        let d = c.record(1, 20.0).unwrap();
        assert_eq!(d.bottleneck, 1);
        assert_eq!(c.level(1), DvfsLevel::Normal);
        assert_eq!(c.level(0), DvfsLevel::Relax);
    }

    #[test]
    fn bottleneck_raises_exactly_one_level() {
        let mut c = DvfsController::new(2, 1);
        // Two quiet windows walk kernel 0 down to rest.
        c.record(0, 1.0);
        c.record(1, 9.0);
        c.record(0, 1.0);
        c.record(1, 9.0);
        assert_eq!(c.level(0), DvfsLevel::Rest);
        // Kernel 0 becomes the bottleneck: raised by one level, not to the top.
        c.record(0, 50.0);
        let d = c.record(1, 1.0).unwrap();
        assert_eq!(d.bottleneck, 0);
        assert_eq!(d.levels[0], DvfsLevel::Relax);
    }

    #[test]
    fn all_non_bottlenecks_lower_one_level_when_slack_allows() {
        let mut c = DvfsController::new(3, 1);
        c.record(0, 20.0);
        c.record(1, 1.0);
        let d = c.record(2, 2.0).unwrap();
        assert_eq!(d.bottleneck, 0);
        assert_eq!(
            d.levels,
            vec![DvfsLevel::Normal, DvfsLevel::Relax, DvfsLevel::Relax]
        );
    }

    #[test]
    fn levels_clamp_at_normal_and_rest() {
        let mut c = DvfsController::new(2, 1);
        for _ in 0..5 {
            c.record(0, 9.0);
            c.record(1, 0.1);
        }
        // Bottleneck saturates at normal; the idle kernel floors at rest.
        assert_eq!(c.level(0), DvfsLevel::Normal);
        assert_eq!(c.level(1), DvfsLevel::Rest);
    }

    #[test]
    fn tie_break_picks_the_last_equal_bottleneck() {
        // Equal averages: `max_by` keeps the last maximum, so the highest
        // kernel index deterministically wins the tie.
        let mut c = DvfsController::new(3, 1);
        c.record(0, 5.0);
        c.record(1, 5.0);
        let d = c.record(2, 5.0).unwrap();
        assert_eq!(d.bottleneck, 2);
        // Every tied kernel sits within 5% of the bottleneck: lowering
        // would immediately stall the pipeline, so nobody is lowered —
        // instead the near-bottleneck kernels recover headroom.
        assert_eq!(d.levels, vec![DvfsLevel::Normal; 3]);
    }

    #[test]
    fn exe_table_clears_between_windows() {
        let mut c = DvfsController::new(1, 2);
        assert!(c.record(0, 1.0).is_none());
        assert!(c.record(0, 1.0).is_some());
        assert!(c.record(0, 1.0).is_none()); // new window started fresh
    }
}
