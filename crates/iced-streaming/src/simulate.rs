//! Pipeline event simulation with runtime DVFS or DRIPS re-partitioning.

use iced_arch::{DvfsLevel, IslandId};
use iced_fault::{FaultPlan, MidRunFailure};
use iced_kernels::pipelines::Pipeline;
use iced_power::{PowerModel, TransitionModel, VfPoint};
use iced_trace::Phase;

use crate::controller::DvfsController;
use crate::partition::Partition;

/// Runtime adaptation policy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimePolicy {
    /// ICED: fixed partition, per-window island DVFS (§III-B).
    IcedDvfs,
    /// DRIPS: per-window island re-partitioning towards the bottleneck,
    /// everything at nominal V/F (HPCA'22).
    Drips,
    /// No adaptation at all (ablation).
    StaticNormal,
}

/// Per-window measurement (one point of the Fig. 13 series).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSample {
    /// Window index (each window covers 10 inputs).
    pub window: usize,
    /// Inputs per second achieved in this window.
    pub throughput: f64,
    /// Average power over the window (mW).
    pub power_mw: f64,
    /// DVFS level of every pipeline kernel at the window's close (always
    /// `normal` for the non-DVFS policies) — the controller trace.
    pub levels: Vec<DvfsLevel>,
}

impl WindowSample {
    /// Energy efficiency: throughput per watt.
    pub fn perf_per_watt(&self) -> f64 {
        if self.power_mw <= 0.0 {
            0.0
        } else {
            self.throughput / (self.power_mw / 1000.0)
        }
    }
}

/// Result of streaming one input set through the pipeline.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Policy simulated.
    pub policy: RuntimePolicy,
    /// Per-window samples.
    pub samples: Vec<WindowSample>,
    /// Total wall time (µs).
    pub total_time_us: f64,
    /// Total energy (nJ).
    pub total_energy_nj: f64,
    /// Inputs processed.
    pub inputs: usize,
}

impl StreamReport {
    /// Overall throughput (inputs/s).
    pub fn throughput(&self) -> f64 {
        if self.total_time_us <= 0.0 {
            0.0
        } else {
            self.inputs as f64 / (self.total_time_us * 1e-6)
        }
    }

    /// Overall average power (mW).
    pub fn avg_power_mw(&self) -> f64 {
        if self.total_time_us <= 0.0 {
            0.0
        } else {
            self.total_energy_nj / self.total_time_us
        }
    }

    /// Overall energy efficiency (inputs per second per watt).
    pub fn perf_per_watt(&self) -> f64 {
        let p = self.avg_power_mw();
        if p <= 0.0 {
            0.0
        } else {
            self.throughput() / (p / 1000.0)
        }
    }
}

/// One island failure absorbed mid-run (the failover trace).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverEvent {
    /// Input index at which the failure struck (the repartition happened
    /// before this input was processed).
    pub input_index: usize,
    /// The island that died.
    pub island: IslandId,
    /// Islands still alive after this failure.
    pub surviving_islands: usize,
    /// The per-kernel island allocation chosen for the surviving fabric
    /// (empty when the pipeline could not be repartitioned and halted).
    pub reallocation: Vec<usize>,
}

/// Result of a stream run under a fault plan: the ordinary report plus the
/// failover trace. With no mid-run failures `report` is bit-identical to
/// [`simulate_with_window`]'s and `failovers` is empty.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// The stream report over the inputs that were actually processed.
    pub report: StreamReport,
    /// Every island failure absorbed, in input order.
    pub failovers: Vec<FailoverEvent>,
    /// True when a failure left too few islands for every kernel's feasible
    /// minimum and the stream halted early; `report.inputs` then counts
    /// only the inputs processed before the halt.
    pub halted: bool,
}

/// Simulates streaming `inputs` (work units per input, e.g. graph nnz)
/// through `pipeline` under `policy` with the paper's 10-input adaptation
/// window.
pub fn simulate(
    pipeline: &Pipeline,
    partition: &Partition,
    model: &PowerModel,
    inputs: &[u64],
    policy: RuntimePolicy,
) -> StreamReport {
    simulate_with_window(pipeline, partition, model, inputs, policy, 10)
}

/// [`simulate_with_window`] under a [`FaultPlan`]: every
/// [`MidRunFailure`] in the plan kills one island when its input index is
/// reached, and the runtime repartitions the surviving islands with the
/// same exhaustive bottleneck search used offline
/// ([`Partition::reallocate`], profiled over the not-yet-processed
/// inputs). When the survivors cannot grant every kernel its feasible
/// minimum the stream halts and the report says so — a structured
/// degradation, never a panic. Fully deterministic in its arguments.
pub fn simulate_with_faults(
    pipeline: &Pipeline,
    partition: &Partition,
    model: &PowerModel,
    inputs: &[u64],
    policy: RuntimePolicy,
    window: usize,
    plan: &FaultPlan,
) -> FailoverReport {
    simulate_inner(
        pipeline,
        partition,
        model,
        inputs,
        policy,
        window,
        &plan.midrun,
    )
}

/// [`simulate`] with an explicit adaptation window. The paper adapts every
/// 10 inputs for a fair comparison with DRIPS, but notes that ICED's
/// ns-scale LDO/ADPLL would allow much finer-grained switching — sweeping
/// the window quantifies that headroom (see the `window_sweep` harness).
pub fn simulate_with_window(
    pipeline: &Pipeline,
    partition: &Partition,
    model: &PowerModel,
    inputs: &[u64],
    policy: RuntimePolicy,
    window: usize,
) -> StreamReport {
    simulate_inner(pipeline, partition, model, inputs, policy, window, &[]).report
}

fn simulate_inner(
    pipeline: &Pipeline,
    partition: &Partition,
    model: &PowerModel,
    inputs: &[u64],
    policy: RuntimePolicy,
    window: usize,
    failures: &[MidRunFailure],
) -> FailoverReport {
    let window = window.max(1);
    let n_kernels = partition.profiles.len();
    if n_kernels == 0 {
        // A kernel-less pipeline processes nothing: report an empty stream
        // rather than indexing into per-kernel state that does not exist.
        return FailoverReport {
            report: StreamReport {
                policy,
                samples: Vec::new(),
                total_time_us: 0.0,
                total_energy_nj: 0.0,
                inputs: 0,
            },
            failovers: Vec::new(),
            halted: false,
        };
    }
    // Pre-resolve the failure schedule: the repartition at each strike
    // depends only on (partition, surviving capacity, remaining inputs),
    // so the allocation swaps — and the halt point, if the survivors ever
    // drop below the feasible minimum — are computed up front. Truncating
    // the stream at the halt point lets the ordinary window bookkeeping
    // flush the final (partial) window exactly as at end-of-stream.
    let mut sorted_failures: Vec<&MidRunFailure> = failures.iter().collect();
    sorted_failures.sort_by_key(|f| f.after_inputs);
    let mut capacity = partition.total_islands();
    let mut failovers: Vec<FailoverEvent> = Vec::new();
    let mut swaps: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut truncate_at: Option<usize> = None;
    let mut halted = false;
    for f in sorted_failures {
        let at = f.after_inputs;
        if at >= inputs.len() || truncate_at.is_some() {
            // Strikes past the stream's end (or past a halt) never happen.
            continue;
        }
        capacity = capacity.saturating_sub(1);
        iced_trace::counter(Phase::Controller, "stream_failovers", 1);
        match partition.reallocate(capacity, &inputs[at..]) {
            Some(a) => {
                failovers.push(FailoverEvent {
                    input_index: at,
                    island: f.island,
                    surviving_islands: capacity,
                    reallocation: a.clone(),
                });
                swaps.push((at, a));
            }
            None => {
                iced_trace::counter(Phase::Controller, "stream_halts", 1);
                failovers.push(FailoverEvent {
                    input_index: at,
                    island: f.island,
                    surviving_islands: capacity,
                    reallocation: Vec::new(),
                });
                truncate_at = Some(at);
                halted = true;
            }
        }
    }
    let inputs = &inputs[..truncate_at.unwrap_or(inputs.len())];
    let mut swaps = swaps.into_iter().peekable();
    let stage_of: Vec<usize> = pipeline
        .stages
        .iter()
        .enumerate()
        .flat_map(|(s, st)| st.kernels.iter().map(move |_| s))
        .collect();
    let tpi = 4.0; // 2×2 islands on the prototype
    let f_base = VfPoint::nominal().freq_mhz();

    let mut alloc: Vec<usize> = (0..n_kernels).map(|i| partition.islands_of(i)).collect();
    let mut controller = DvfsController::new(n_kernels, window);
    let transition = TransitionModel::prototype_island();
    let mut prev_levels: Vec<DvfsLevel> = vec![DvfsLevel::Normal; n_kernels];
    let mut finish = vec![0.0f64; n_kernels];
    let mut busy_in_window = vec![0.0f64; n_kernels];
    let mut lat_in_window: Vec<Vec<f64>> = vec![Vec::new(); n_kernels];
    let mut samples = Vec::new();
    let mut total_energy = 0.0;
    let mut window_start = 0.0f64;
    let mut window_idx = 0usize;

    let latency_us = |k: usize, units: u64, alloc: &[usize], level: DvfsLevel| -> f64 {
        let prof = &partition.profiles[k];
        let ii = prof.ii(alloc[k]).unwrap_or(u32::MAX) as f64;
        let iters = prof.stage.work.iterations(units) as f64;
        let div = level.rate_divisor().unwrap_or(4) as f64;
        iters * ii * div / f_base
    };

    for (i, &units) in inputs.iter().enumerate() {
        // Apply any repartition scheduled at this input (island failures
        // strike *before* the input is processed).
        while swaps.peek().is_some_and(|(at, _)| *at == i) {
            let (_, a) = swaps.next().expect("peeked");
            alloc = a;
        }
        // Stage readiness: every kernel of stage s-1 must have finished
        // this input before stage s starts it.
        let mut stage_ready = 0.0f64;
        let mut prev_stage = usize::MAX;
        for k in 0..n_kernels {
            if stage_of[k] != prev_stage {
                // Entering a new stage: inputs flow from the previous one.
                stage_ready = (0..k)
                    .filter(|&j| stage_of[j] + 1 == stage_of[k])
                    .map(|j| finish[j])
                    .fold(stage_ready, f64::max);
                prev_stage = stage_of[k];
            }
            let level = match policy {
                RuntimePolicy::IcedDvfs => controller.level(k),
                _ => DvfsLevel::Normal,
            };
            let lat = latency_us(k, units, &alloc, level);
            let start = finish[k].max(stage_ready);
            finish[k] = start + lat;
            busy_in_window[k] += lat;
            lat_in_window[k].push(lat);
            if policy == RuntimePolicy::IcedDvfs {
                let _ = controller.record(k, lat);
            }
        }

        // Window boundary bookkeeping.
        if (i + 1) % window == 0 || i + 1 == inputs.len() {
            let wall_end = finish.iter().fold(0.0f64, |a, &b| a.max(b));
            let wall = (wall_end - window_start).max(1e-9);
            let mut power = 0.0;
            for k in 0..n_kernels {
                let level = match policy {
                    RuntimePolicy::IcedDvfs => controller.level(k),
                    _ => DvfsLevel::Normal,
                };
                let tiles = alloc[k] as f64 * tpi;
                let busy_frac = (busy_in_window[k] / wall).min(1.0);
                let act = partition.profiles[k].activity;
                let p_busy = model.tile_power_mw(level, act);
                let p_idle = model.tile_power_mw(level, 0.0);
                power += tiles * (p_busy * busy_frac + p_idle * (1.0 - busy_frac));
            }
            // Adaptation hardware: ICED pays one LDO+ADPLL+control unit
            // per island; DRIPS pays its dynamic-reshape support (per-kernel
            // execution monitors, reshape controller, and double-buffered
            // configuration contexts — charged as four controller
            // equivalents, a conservative reading of the DRIPS design).
            let controllers = match policy {
                RuntimePolicy::IcedDvfs => alloc.iter().sum::<usize>(),
                RuntimePolicy::Drips => 4,
                RuntimePolicy::StaticNormal => 0,
            };
            power += model.controllers_power_mw(controllers);
            power += model.sram_power_mw(0.35);
            let in_window = lat_in_window[0].len();
            total_energy += power * wall;
            // Charge DVFS transitions: every island of a kernel whose level
            // changed this window pays the rail-charging energy (ns-scale
            // switch latency is negligible against the ms-scale window and
            // is not added to the timeline).
            if policy == RuntimePolicy::IcedDvfs {
                for k in 0..n_kernels {
                    let new_level = controller.level(k);
                    if new_level != prev_levels[k] {
                        total_energy +=
                            alloc[k] as f64 * transition.energy_nj(prev_levels[k], new_level);
                        prev_levels[k] = new_level;
                    }
                }
            }
            samples.push(WindowSample {
                window: window_idx,
                throughput: in_window as f64 / (wall * 1e-6),
                power_mw: power,
                levels: (0..n_kernels)
                    .map(|k| match policy {
                        RuntimePolicy::IcedDvfs => controller.level(k),
                        _ => DvfsLevel::Normal,
                    })
                    .collect(),
            });
            window_idx += 1;
            window_start = wall_end;
            // DRIPS: move one island from the fastest kernel to the
            // bottleneck (dynamic rebalancing).
            if policy == RuntimePolicy::Drips {
                rebalance(partition, &mut alloc, &lat_in_window);
            }
            for k in 0..n_kernels {
                busy_in_window[k] = 0.0;
                lat_in_window[k].clear();
            }
        }
    }

    // Wall clock: when the last kernel finishes the last input (0 when no
    // inputs streamed).
    let total_time = finish.iter().fold(0.0f64, |a, &b| a.max(b));
    FailoverReport {
        report: StreamReport {
            policy,
            samples,
            total_time_us: total_time,
            total_energy_nj: total_energy,
            inputs: inputs.len(),
        },
        failovers,
        halted,
    }
}

/// DRIPS rebalancing: donate one island from the kernel with the most
/// slack to the bottleneck kernel, if both stay feasible.
fn rebalance(partition: &Partition, alloc: &mut [usize], lats: &[Vec<f64>]) {
    let avg = |v: &Vec<f64>| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let times: Vec<f64> = lats.iter().map(avg).collect();
    let Some(bottleneck) = times
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
    else {
        return;
    };
    let donor = times
        .iter()
        .enumerate()
        .filter(|&(k, _)| k != bottleneck && alloc[k] > partition.profiles[k].min_islands())
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i);
    if let Some(d) = donor {
        // Only donate if the bottleneck actually benefits.
        let p = &partition.profiles[bottleneck];
        let before = p.ii(alloc[bottleneck]);
        let after = p.ii(alloc[bottleneck] + 1);
        if after < before {
            alloc[d] -= 1;
            alloc[bottleneck] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iced_arch::CgraConfig;
    use iced_kernels::workloads;

    fn gcn_setup() -> (Pipeline, Partition, PowerModel, Vec<u64>) {
        let cfg = CgraConfig::iced_prototype();
        let pipeline = Pipeline::gcn();
        let partition = Partition::table1(&pipeline, &cfg).unwrap();
        let inputs: Vec<u64> = workloads::enzymes_like(150, 9)
            .iter()
            .map(|g| g.nnz())
            .collect();
        (pipeline, partition, PowerModel::asap7(), inputs)
    }

    #[test]
    fn iced_beats_drips_on_energy_efficiency() {
        let (pipeline, partition, model, inputs) = gcn_setup();
        let iced = simulate(
            &pipeline,
            &partition,
            &model,
            &inputs,
            RuntimePolicy::IcedDvfs,
        );
        let drips = simulate(&pipeline, &partition, &model, &inputs, RuntimePolicy::Drips);
        let ratio = iced.perf_per_watt() / drips.perf_per_watt();
        assert!(
            ratio > 1.0,
            "ICED/DRIPS perf-per-watt = {ratio:.3} (expected > 1)"
        );
        assert!(ratio < 2.0, "ratio {ratio:.3} implausibly high");
    }

    #[test]
    fn dvfs_lowers_power_versus_static() {
        let (pipeline, partition, model, inputs) = gcn_setup();
        let iced = simulate(
            &pipeline,
            &partition,
            &model,
            &inputs,
            RuntimePolicy::IcedDvfs,
        );
        let stat = simulate(
            &pipeline,
            &partition,
            &model,
            &inputs,
            RuntimePolicy::StaticNormal,
        );
        // Static-normal has no controller overhead but never slows idle
        // kernels; ICED must still come out ahead on average power.
        assert!(
            iced.avg_power_mw() < stat.avg_power_mw() + model.controllers_power_mw(9),
            "iced {} vs static {}",
            iced.avg_power_mw(),
            stat.avg_power_mw()
        );
    }

    #[test]
    fn window_samples_cover_the_stream() {
        let (pipeline, partition, model, inputs) = gcn_setup();
        let r = simulate(
            &pipeline,
            &partition,
            &model,
            &inputs,
            RuntimePolicy::IcedDvfs,
        );
        assert_eq!(r.samples.len(), inputs.len().div_ceil(10));
        assert_eq!(r.inputs, inputs.len());
        assert!(r.total_time_us > 0.0);
        assert!(r
            .samples
            .iter()
            .all(|s| s.power_mw > 0.0 && s.throughput > 0.0));
    }

    #[test]
    fn empty_input_stream_reports_zero_wall_clock() {
        let (pipeline, partition, model, _) = gcn_setup();
        let r = simulate(&pipeline, &partition, &model, &[], RuntimePolicy::IcedDvfs);
        assert!(r.samples.is_empty());
        assert_eq!(r.inputs, 0);
        assert_eq!(r.total_time_us, 0.0);
        assert_eq!(r.total_energy_nj, 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.avg_power_mw(), 0.0);
    }

    #[test]
    fn zero_kernel_pipeline_reports_empty_stream() {
        let pipeline = Pipeline {
            name: "empty",
            stages: Vec::new(),
        };
        let partition = Partition {
            allocations: Vec::new(),
            profiles: Vec::new(),
        };
        let model = PowerModel::asap7();
        let r = simulate(
            &pipeline,
            &partition,
            &model,
            &[10, 20, 30],
            RuntimePolicy::Drips,
        );
        assert!(r.samples.is_empty());
        assert_eq!(r.inputs, 0);
        assert_eq!(r.total_time_us, 0.0);
        assert_eq!(r.total_energy_nj, 0.0);
    }

    #[test]
    fn drips_rebalances_towards_the_bottleneck() {
        let (pipeline, partition, model, _) = gcn_setup();
        // Dense graphs make aggregate the persistent bottleneck.
        let dense: Vec<u64> = vec![240; 40];
        let r = simulate(&pipeline, &partition, &model, &dense, RuntimePolicy::Drips);
        // Rebalancing must help or at least not hurt throughput windows.
        let first = r.samples.first().unwrap().throughput;
        let last = r.samples.last().unwrap().throughput;
        assert!(last >= first * 0.95, "first {first}, last {last}");
    }
}
