//! Streaming-application support for ICED (paper §III-B and §IV-B).
//!
//! Data-dependent streaming applications (the 2-layer GCN, the synthesized
//! LU pipeline) are mapped as a pipeline of kernels, each occupying one or
//! more DVFS islands. Because per-input work varies with the data (graph
//! density, matrix sparsity), the bottleneck stage shifts at runtime; the
//! ICED **DVFS Controller** observes a 10-input window (`exeTable` /
//! `mapTable`), then raises the bottleneck kernel's islands one V/F level
//! and lowers everyone else's (§III-B). The **DRIPS** comparator instead
//! re-partitions islands towards the bottleneck while keeping everything at
//! nominal V/F (Tan et al., HPCA'22) — it optimises throughput where ICED
//! optimises power at equal throughput.
//!
//! * [`partition`] — per-kernel II-vs-islands profiles and the offline
//!   exhaustive partition search (paper: "exhaustively evaluate the mapping
//!   for each kernel on a varying number of islands");
//! * [`DvfsController`] — the windowed runtime level controller;
//! * [`simulate`] — the pipeline event simulator producing throughput,
//!   power, and energy-efficiency series (Fig. 13).
//!
//! # Example
//!
//! ```
//! use iced_arch::CgraConfig;
//! use iced_kernels::pipelines::Pipeline;
//! use iced_kernels::workloads;
//! use iced_power::PowerModel;
//! use iced_streaming::{simulate, Partition, RuntimePolicy};
//!
//! # fn main() -> Result<(), iced_mapper::MapError> {
//! let cfg = CgraConfig::iced_prototype();
//! let pipeline = Pipeline::gcn();
//! let partition = Partition::table1(&pipeline, &cfg)?;
//! let inputs: Vec<u64> = workloads::enzymes_like(40, 7).iter().map(|g| g.nnz()).collect();
//! let report = simulate(
//!     &pipeline, &partition, &PowerModel::asap7(), &inputs, RuntimePolicy::IcedDvfs,
//! );
//! assert!(report.perf_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
pub mod partition;
pub mod simulate;

pub use controller::{ControllerDecision, DvfsController};
pub use partition::{KernelProfile, Partition};
pub use simulate::{
    simulate, simulate_with_faults, simulate_with_window, FailoverEvent, FailoverReport,
    RuntimePolicy, StreamReport, WindowSample,
};
