//! Mid-run island failure: the streaming runtime must repartition the
//! pipeline onto the surviving islands, keep processing, and degrade to a
//! structured halt — never a panic — when the survivors cannot carry every
//! kernel. An empty fault plan must be bit-identical to the plain
//! simulator.

use iced_arch::{CgraConfig, IslandId};
use iced_fault::FaultPlan;
use iced_kernels::pipelines::Pipeline;
use iced_kernels::workloads;
use iced_power::PowerModel;
use iced_streaming::{simulate_with_faults, simulate_with_window, Partition, RuntimePolicy};

fn gcn_setup() -> (Pipeline, Partition, PowerModel, Vec<u64>) {
    let cfg = CgraConfig::iced_prototype();
    let pipeline = Pipeline::gcn();
    let partition = Partition::table1(&pipeline, &cfg).unwrap();
    let inputs: Vec<u64> = workloads::enzymes_like(60, 5)
        .iter()
        .map(|g| g.nnz())
        .collect();
    (pipeline, partition, PowerModel::asap7(), inputs)
}

#[test]
fn empty_plan_matches_plain_simulation_bit_for_bit() {
    let (pipeline, partition, model, inputs) = gcn_setup();
    let plan = FaultPlan::empty();
    for policy in [
        RuntimePolicy::IcedDvfs,
        RuntimePolicy::Drips,
        RuntimePolicy::StaticNormal,
    ] {
        let plain = simulate_with_window(&pipeline, &partition, &model, &inputs, policy, 10);
        let faulted =
            simulate_with_faults(&pipeline, &partition, &model, &inputs, policy, 10, &plan);
        assert!(faulted.failovers.is_empty());
        assert!(!faulted.halted);
        assert_eq!(plain.samples, faulted.report.samples, "{policy:?}");
        assert_eq!(plain.total_time_us, faulted.report.total_time_us);
        assert_eq!(plain.total_energy_nj, faulted.report.total_energy_nj);
        assert_eq!(plain.inputs, faulted.report.inputs);
    }
}

#[test]
fn single_island_failure_repartitions_and_continues() {
    let (pipeline, partition, model, inputs) = gcn_setup();
    let plan = FaultPlan::empty().with_island_failure(IslandId(4), 20);
    let r = simulate_with_faults(
        &pipeline,
        &partition,
        &model,
        &inputs,
        RuntimePolicy::IcedDvfs,
        10,
        &plan,
    );
    assert!(!r.halted, "one island loss must be survivable");
    assert_eq!(r.report.inputs, inputs.len(), "whole stream processed");
    assert_eq!(r.failovers.len(), 1);
    let ev = &r.failovers[0];
    assert_eq!(ev.input_index, 20);
    assert_eq!(ev.island, IslandId(4));
    assert_eq!(ev.surviving_islands, partition.total_islands() - 1);
    // The new allocation fits the survivors and respects every minimum.
    assert!(ev.reallocation.iter().sum::<usize>() <= ev.surviving_islands);
    for (k, prof) in partition.profiles.iter().enumerate() {
        assert!(ev.reallocation[k] >= prof.min_islands());
    }
    // Losing an island can only slow the pipeline down.
    let clean = simulate_with_window(
        &pipeline,
        &partition,
        &model,
        &inputs,
        RuntimePolicy::IcedDvfs,
        10,
    );
    assert!(r.report.total_time_us >= clean.total_time_us);
}

#[test]
fn cascading_failures_halt_with_a_structured_report() {
    let (pipeline, partition, model, inputs) = gcn_setup();
    // Kill more islands than the pipeline's feasible minimum can survive.
    let mins: usize = partition.profiles.iter().map(|p| p.min_islands()).sum();
    let total = partition.total_islands();
    let mut plan = FaultPlan::empty();
    // One failure every 5 inputs until fewer than `mins` islands remain.
    let deaths = total - mins + 1;
    for d in 0..deaths {
        plan = plan.with_island_failure(IslandId(d as u16), 5 * (d + 1));
    }
    let r = simulate_with_faults(
        &pipeline,
        &partition,
        &model,
        &inputs,
        RuntimePolicy::IcedDvfs,
        10,
        &plan,
    );
    assert!(r.halted, "dropping below the feasible minimum must halt");
    assert_eq!(r.failovers.len(), deaths);
    let last = r.failovers.last().unwrap();
    assert!(
        last.reallocation.is_empty(),
        "halt event carries no realloc"
    );
    assert!(last.surviving_islands < mins);
    // The stream stopped at the fatal strike; earlier inputs were
    // processed and reported.
    assert_eq!(r.report.inputs, last.input_index);
    assert!(r.report.inputs < inputs.len());
    assert!(r.report.total_time_us > 0.0);
}

#[test]
fn failover_trace_is_deterministic() {
    let (pipeline, partition, model, inputs) = gcn_setup();
    let plan = FaultPlan::empty()
        .with_island_failure(IslandId(2), 10)
        .with_island_failure(IslandId(7), 35);
    let run = || {
        simulate_with_faults(
            &pipeline,
            &partition,
            &model,
            &inputs,
            RuntimePolicy::Drips,
            10,
            &plan,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.halted, b.halted);
    assert_eq!(a.report.samples, b.report.samples);
    assert_eq!(a.report.total_time_us, b.report.total_time_us);
    assert_eq!(a.report.total_energy_nj, b.report.total_energy_nj);
}

#[test]
fn failures_past_the_stream_end_never_strike() {
    let (pipeline, partition, model, inputs) = gcn_setup();
    let plan = FaultPlan::empty().with_island_failure(IslandId(0), inputs.len() + 100);
    let r = simulate_with_faults(
        &pipeline,
        &partition,
        &model,
        &inputs,
        RuntimePolicy::IcedDvfs,
        10,
        &plan,
    );
    assert!(r.failovers.is_empty());
    assert!(!r.halted);
    assert_eq!(r.report.inputs, inputs.len());
}
