//! Property-based tests for the streaming layer: the windowed controller
//! must behave sanely under arbitrary execution-time sequences, and the
//! pipeline simulator must conserve inputs and produce finite, positive
//! measurements for any workload.

use iced_arch::{CgraConfig, DvfsLevel};
use iced_kernels::pipelines::Pipeline;
use iced_power::PowerModel;
use iced_streaming::{simulate_with_window, DvfsController, Partition, RuntimePolicy};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Partitions are expensive to profile; share one across cases.
fn gcn_partition() -> &'static (Pipeline, Partition) {
    static CACHE: OnceLock<(Pipeline, Partition)> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cfg = CgraConfig::iced_prototype();
        let p = Pipeline::gcn();
        let part = Partition::table1(&p, &cfg).expect("gcn partition maps");
        (p, part)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn controller_levels_stay_active_and_bounded(
        times in proptest::collection::vec((1u32..1000, 1u32..1000, 1u32..1000), 1..60),
    ) {
        let mut c = DvfsController::new(3, 10);
        for (a, b, d) in times {
            c.record(0, a as f64);
            c.record(1, b as f64);
            c.record(2, d as f64);
            for k in 0..3 {
                // Runtime levels never gate a kernel and never exceed normal.
                prop_assert!(c.level(k).is_active());
            }
        }
    }

    #[test]
    fn persistent_bottleneck_converges_to_normal(
        slack in proptest::collection::vec(1u32..50, 30..40),
    ) {
        let mut c = DvfsController::new(2, 10);
        for &s in &slack {
            c.record(0, 1000.0); // immovable bottleneck
            c.record(1, s as f64); // huge slack
        }
        prop_assert_eq!(c.level(0), DvfsLevel::Normal);
        // The slack kernel has been lowered at least one level.
        prop_assert!(c.level(1) < DvfsLevel::Normal);
    }

    #[test]
    fn simulator_conserves_inputs_and_stays_finite(
        units in proptest::collection::vec(1u64..300, 1..50),
        window in 1usize..=20,
        drips in any::<bool>(),
    ) {
        let (pipeline, partition) = gcn_partition();
        let model = PowerModel::asap7();
        let policy = if drips { RuntimePolicy::Drips } else { RuntimePolicy::IcedDvfs };
        let r = simulate_with_window(pipeline, partition, &model, &units, policy, window);
        prop_assert_eq!(r.inputs, units.len());
        prop_assert_eq!(r.samples.len(), units.len().div_ceil(window));
        prop_assert!(r.total_time_us.is_finite() && r.total_time_us > 0.0);
        prop_assert!(r.avg_power_mw().is_finite() && r.avg_power_mw() > 0.0);
        prop_assert!(r.perf_per_watt().is_finite() && r.perf_per_watt() > 0.0);
        for s in &r.samples {
            prop_assert!(s.power_mw > 0.0 && s.throughput > 0.0);
            prop_assert_eq!(s.levels.len(), partition.profiles.len());
        }
    }

    #[test]
    fn static_policy_power_is_input_insensitive(
        a in proptest::collection::vec(10u64..50, 20..25),
        b in proptest::collection::vec(200u64..250, 20..25),
    ) {
        // Under StaticNormal everything runs at nominal; per-window power
        // varies only through busy fractions, which are bounded — so power
        // stays within the all-idle..all-busy envelope for any inputs.
        let (pipeline, partition) = gcn_partition();
        let model = PowerModel::asap7();
        for units in [&a, &b] {
            let r = simulate_with_window(
                pipeline, partition, &model, units, RuntimePolicy::StaticNormal, 10,
            );
            let idle_floor = model.sram_power_mw(0.35);
            let busy_ceiling = idle_floor + 36.0 * model.tile_power_mw(DvfsLevel::Normal, 1.0);
            prop_assert!(r.avg_power_mw() > idle_floor);
            prop_assert!(r.avg_power_mw() < busy_ceiling);
        }
    }
}
