//! Architecture model of the ICED CGRA.
//!
//! The ICED CGRA (paper §III) is an `n×n` mesh of tiles, each containing a
//! functional unit, a register file, a configuration memory, and a crossbar
//! with bypass buffers; the leftmost column is connected to a multi-banked
//! scratchpad memory (SPM). Tiles are clustered into rectangular **DVFS
//! islands** — each with its own LDO + ADPLL — that independently run at one
//! of three voltage/frequency levels ([`DvfsLevel`]) or are power-gated.
//!
//! This crate provides:
//!
//! * [`CgraConfig`] — a validated, parametric description of the array
//!   (dimensions, island geometry, SPM banks, register capacity),
//! * [`TileId`]/[`IslandId`]/[`Dir`] — topology primitives,
//! * [`Mrrg`] — the time-extended Modulo Routing Resource Graph used by the
//!   mapper: occupancy tracking of FU slots, directed mesh links, and
//!   register-file slots at base-clock granularity, with DVFS-rate-aware
//!   reservation windows.
//!
//! # Example
//!
//! ```
//! use iced_arch::{CgraConfig, DvfsLevel};
//!
//! # fn main() -> Result<(), iced_arch::ArchError> {
//! let cgra = CgraConfig::iced_prototype(); // 6×6 with 2×2 islands
//! assert_eq!(cgra.tile_count(), 36);
//! assert_eq!(cgra.island_count(), 9);
//! assert_eq!(DvfsLevel::Normal.rate_divisor(), Some(1));
//! assert_eq!(DvfsLevel::Rest.rate_divisor(), Some(4));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dvfs;
mod error;
mod mrrg;
mod tile;

pub use config::{CgraConfig, CgraConfigBuilder, FuLayout};
pub use dvfs::DvfsLevel;
pub use error::ArchError;
pub use mrrg::Mrrg;
pub use tile::{Dir, IslandId, TileId};
