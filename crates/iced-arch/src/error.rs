//! Error type for architecture configuration.

use std::error::Error;
use std::fmt;

/// Errors produced while building a [`CgraConfig`](crate::CgraConfig) or
/// constructing an [`Mrrg`](crate::Mrrg).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// Array dimensions must be positive.
    ZeroDimension,
    /// Island dimensions must be positive and no larger than the array.
    InvalidIslandGeometry {
        /// Configured island rows.
        island_rows: usize,
        /// Configured island columns.
        island_cols: usize,
    },
    /// Register capacity must be positive (tiles need at least one register
    /// to hold routed values across cycles).
    ZeroRegisterCapacity,
    /// The SPM must have at least one bank.
    ZeroSpmBanks,
    /// The initiation interval handed to the MRRG must be positive.
    ZeroInitiationInterval,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::ZeroDimension => write!(f, "array dimensions must be positive"),
            ArchError::InvalidIslandGeometry {
                island_rows,
                island_cols,
            } => write!(
                f,
                "island geometry {island_rows}x{island_cols} is invalid for this array"
            ),
            ArchError::ZeroRegisterCapacity => {
                write!(f, "register capacity must be at least 1")
            }
            ArchError::ZeroSpmBanks => write!(f, "scratchpad must have at least one bank"),
            ArchError::ZeroInitiationInterval => {
                write!(f, "initiation interval must be at least 1")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_concise() {
        assert!(ArchError::ZeroDimension.to_string().contains("positive"));
    }
}
