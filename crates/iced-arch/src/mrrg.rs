//! Modulo Routing Resource Graph: time-extended occupancy tracking.
//!
//! The MRRG replicates the CGRA's resources along a modulo time axis of `II`
//! base-clock cycles (Mei et al., the representation ICED's Algorithm 2 maps
//! onto). Three resource classes are tracked per `(tile, base-cycle mod II)`
//! slot:
//!
//! * the **functional unit** (one operation per tile cycle),
//! * the four **outgoing mesh links** of the tile's crossbar,
//! * the **register-file** slots used to hold routed values across cycles.
//!
//! DVFS awareness: an action on a tile whose island runs at rate divisor `r`
//! spans `r` consecutive base cycles and must start phase-aligned
//! (`start ≡ 0 (mod r)`); reservation methods take the window length so the
//! same structure serves normal, relax, and rest tiles. Callers guarantee
//! `r` divides `II`, which makes the wrapped windows tessellate.

use crate::config::CgraConfig;
use crate::error::ArchError;
use crate::tile::{Dir, TileId};

/// Occupancy state of a CGRA's resources over one modulo period.
#[derive(Debug, Clone)]
pub struct Mrrg {
    ii: u32,
    tiles: usize,
    reg_capacity: u8,
    /// `[tile * ii + cycle]`
    fu: Vec<bool>,
    /// `[(tile * 4 + dir) * ii + cycle]`
    link: Vec<bool>,
    /// `[tile * ii + cycle]` — number of live register slots.
    reg: Vec<u8>,
}

impl Mrrg {
    /// Creates an empty MRRG for `config` with initiation interval `ii`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ZeroInitiationInterval`] when `ii == 0`.
    pub fn new(config: &CgraConfig, ii: u32) -> Result<Self, ArchError> {
        if ii == 0 {
            return Err(ArchError::ZeroInitiationInterval);
        }
        let tiles = config.tile_count();
        let n = tiles * ii as usize;
        Ok(Mrrg {
            ii,
            tiles,
            reg_capacity: config.reg_capacity(),
            fu: vec![false; n],
            link: vec![false; n * 4],
            reg: vec![0; n],
        })
    }

    /// The initiation interval this MRRG was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn slot(&self, tile: TileId, cycle: u64) -> usize {
        debug_assert!(tile.index() < self.tiles, "tile out of range");
        tile.index() * self.ii as usize + (cycle % self.ii as u64) as usize
    }

    fn link_slot(&self, tile: TileId, dir: Dir, cycle: u64) -> usize {
        (tile.index() * 4 + dir.index()) * self.ii as usize + (cycle % self.ii as u64) as usize
    }

    /// Whether the FU of `tile` is free for a window of `len` base cycles
    /// starting at absolute base cycle `start`.
    pub fn fu_free(&self, tile: TileId, start: u64, len: u32) -> bool {
        (0..len as u64).all(|i| !self.fu[self.slot(tile, start + i)])
    }

    /// Reserves the FU window. Call only after [`fu_free`](Mrrg::fu_free).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if part of the window is already occupied.
    pub fn occupy_fu(&mut self, tile: TileId, start: u64, len: u32) {
        for i in 0..len as u64 {
            let s = self.slot(tile, start + i);
            debug_assert!(!self.fu[s], "double-booked FU slot");
            self.fu[s] = true;
        }
    }

    /// Releases a previously reserved FU window.
    pub fn release_fu(&mut self, tile: TileId, start: u64, len: u32) {
        for i in 0..len as u64 {
            let s = self.slot(tile, start + i);
            self.fu[s] = false;
        }
    }

    /// Whether the outgoing link of `tile` towards `dir` is free for `len`
    /// base cycles starting at `start`.
    pub fn link_free(&self, tile: TileId, dir: Dir, start: u64, len: u32) -> bool {
        (0..len as u64).all(|i| !self.link[self.link_slot(tile, dir, start + i)])
    }

    /// Reserves a link window.
    pub fn occupy_link(&mut self, tile: TileId, dir: Dir, start: u64, len: u32) {
        for i in 0..len as u64 {
            let s = self.link_slot(tile, dir, start + i);
            self.link[s] = true;
        }
    }

    /// Releases a link window.
    pub fn release_link(&mut self, tile: TileId, dir: Dir, start: u64, len: u32) {
        for i in 0..len as u64 {
            let s = self.link_slot(tile, dir, start + i);
            self.link[s] = false;
        }
    }

    /// Whether a register slot of `tile` can hold a value for `len` base
    /// cycles starting at `start`. Windows of `II` or more cycles demand a
    /// slot for the whole period (the value overlaps itself across
    /// iterations).
    pub fn reg_available(&self, tile: TileId, start: u64, len: u64) -> bool {
        let span = len.min(self.ii as u64);
        (0..span).all(|i| self.reg[self.slot(tile, start + i)] < self.reg_capacity)
    }

    /// Reserves a register hold window.
    pub fn occupy_reg(&mut self, tile: TileId, start: u64, len: u64) {
        let span = len.min(self.ii as u64);
        for i in 0..span {
            let s = self.slot(tile, start + i);
            debug_assert!(self.reg[s] < self.reg_capacity, "register overflow");
            self.reg[s] += 1;
        }
    }

    /// Releases a register hold window.
    pub fn release_reg(&mut self, tile: TileId, start: u64, len: u64) {
        let span = len.min(self.ii as u64);
        for i in 0..span {
            let s = self.slot(tile, start + i);
            debug_assert!(self.reg[s] > 0, "releasing an empty register window");
            self.reg[s] = self.reg[s].saturating_sub(1);
        }
    }

    /// Number of occupied FU base-cycle slots on `tile` (used by the
    /// utilization accounting).
    pub fn fu_busy_cycles(&self, tile: TileId) -> u32 {
        let base = tile.index() * self.ii as usize;
        self.fu[base..base + self.ii as usize]
            .iter()
            .filter(|&&b| b)
            .count() as u32
    }

    /// Number of occupied outgoing-link base-cycle slots on `tile`.
    pub fn link_busy_cycles(&self, tile: TileId) -> u32 {
        let mut n = 0;
        for dir in Dir::ALL {
            let base = (tile.index() * 4 + dir.index()) * self.ii as usize;
            n += self.link[base..base + self.ii as usize]
                .iter()
                .filter(|&&b| b)
                .count() as u32;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrrg(ii: u32) -> Mrrg {
        Mrrg::new(&CgraConfig::square(4).unwrap(), ii).unwrap()
    }

    #[test]
    fn zero_ii_rejected() {
        assert!(matches!(
            Mrrg::new(&CgraConfig::square(4).unwrap(), 0),
            Err(ArchError::ZeroInitiationInterval)
        ));
    }

    #[test]
    fn fu_windows_wrap_modulo_ii() {
        let mut m = mrrg(4);
        let t = TileId(5);
        // A rest-rate op at absolute cycle 4 occupies cycles 4..8 ≡ 0..4.
        assert!(m.fu_free(t, 4, 4));
        m.occupy_fu(t, 4, 4);
        assert!(!m.fu_free(t, 0, 1));
        assert!(!m.fu_free(t, 103, 1)); // any absolute time maps into the period
        assert_eq!(m.fu_busy_cycles(t), 4);
        m.release_fu(t, 4, 4);
        assert!(m.fu_free(t, 0, 4));
    }

    #[test]
    fn links_are_independent_per_direction() {
        let mut m = mrrg(4);
        let t = TileId(0);
        m.occupy_link(t, Dir::East, 1, 1);
        assert!(!m.link_free(t, Dir::East, 1, 1));
        assert!(m.link_free(t, Dir::South, 1, 1));
        assert!(m.link_free(t, Dir::East, 2, 1));
        assert_eq!(m.link_busy_cycles(t), 1);
    }

    #[test]
    fn register_capacity_is_enforced() {
        let cfg = CgraConfig::builder(2, 2)
            .island(1, 1)
            .reg_capacity(2)
            .build()
            .unwrap();
        let mut m = Mrrg::new(&cfg, 2).unwrap();
        let t = TileId(3);
        assert!(m.reg_available(t, 0, 2));
        m.occupy_reg(t, 0, 2);
        m.occupy_reg(t, 0, 2);
        assert!(!m.reg_available(t, 0, 1));
        assert!(!m.reg_available(t, 1, 1));
        m.release_reg(t, 0, 2);
        assert!(m.reg_available(t, 1, 1));
    }

    #[test]
    fn long_holds_clamp_to_one_period() {
        let mut m = mrrg(4);
        let t = TileId(2);
        // Holding for 100 cycles just pins one slot for the whole period.
        m.occupy_reg(t, 1, 100);
        for c in 0..4 {
            assert_eq!(m.reg[t.index() * 4 + c], 1);
        }
        m.release_reg(t, 1, 100);
        assert!(m.reg_available(t, 0, 4));
    }

    #[test]
    fn clone_snapshots_state() {
        let mut m = mrrg(2);
        let snap = m.clone();
        m.occupy_fu(TileId(1), 0, 1);
        assert!(!m.fu_free(TileId(1), 0, 1));
        assert!(snap.fu_free(TileId(1), 0, 1));
    }
}
