//! Modulo Routing Resource Graph: time-extended occupancy tracking.
//!
//! The MRRG replicates the CGRA's resources along a modulo time axis of `II`
//! base-clock cycles (Mei et al., the representation ICED's Algorithm 2 maps
//! onto). Three resource classes are tracked per `(tile, base-cycle mod II)`
//! slot:
//!
//! * the **functional unit** (one operation per tile cycle),
//! * the four **outgoing mesh links** of the tile's crossbar,
//! * the **register-file** slots used to hold routed values across cycles.
//!
//! DVFS awareness: an action on a tile whose island runs at rate divisor `r`
//! spans `r` consecutive base cycles and must start phase-aligned
//! (`start ≡ 0 (mod r)`); reservation methods take the window length so the
//! same structure serves normal, relax, and rest tiles. Callers guarantee
//! `r` divides `II`, which makes the wrapped windows tessellate.
//!
//! FU and link occupancy is stored as packed `u64` words — one bit per
//! modulo cycle — so a window probe is a handful of word-mask tests instead
//! of a per-cycle loop. Register occupancy stays a `u8` count per slot
//! (capacity can exceed 1).

use crate::config::CgraConfig;
use crate::error::ArchError;
use crate::tile::{Dir, TileId};

/// Occupancy state of a CGRA's resources over one modulo period.
#[derive(Debug, Clone)]
pub struct Mrrg {
    ii: u32,
    tiles: usize,
    reg_capacity: u8,
    /// `u64` words per bit track (`ceil(ii / 64)`).
    words: usize,
    /// One bit track per tile: `[tile * words ..][cycle bit]`.
    fu: Vec<u64>,
    /// One bit track per (tile, dir): `[(tile * 4 + dir) * words ..]`.
    link: Vec<u64>,
    /// `[tile * ii + cycle]` — number of live register slots.
    reg: Vec<u8>,
}

/// Whether all `len` bits starting at `bit` are clear in the track at
/// `words[base..]`. `bit + len` must not exceed the track's bit width.
#[inline]
fn track_free(words: &[u64], base: usize, bit: u64, len: u64) -> bool {
    let mut w = base + (bit / 64) as usize;
    let mut b = bit % 64;
    let mut rem = len;
    while rem > 0 {
        let take = rem.min(64 - b);
        let mask = (u64::MAX >> (64 - take)) << b;
        if words[w] & mask != 0 {
            return false;
        }
        rem -= take;
        b = 0;
        w += 1;
    }
    true
}

/// Sets `len` bits starting at `bit` in the track at `words[base..]`.
#[inline]
fn track_set(words: &mut [u64], base: usize, bit: u64, len: u64) {
    let mut w = base + (bit / 64) as usize;
    let mut b = bit % 64;
    let mut rem = len;
    while rem > 0 {
        let take = rem.min(64 - b);
        let mask = (u64::MAX >> (64 - take)) << b;
        words[w] |= mask;
        rem -= take;
        b = 0;
        w += 1;
    }
}

/// Clears `len` bits starting at `bit` in the track at `words[base..]`.
#[inline]
fn track_clear(words: &mut [u64], base: usize, bit: u64, len: u64) {
    let mut w = base + (bit / 64) as usize;
    let mut b = bit % 64;
    let mut rem = len;
    while rem > 0 {
        let take = rem.min(64 - b);
        let mask = (u64::MAX >> (64 - take)) << b;
        words[w] &= !mask;
        rem -= take;
        b = 0;
        w += 1;
    }
}

impl Mrrg {
    /// Creates an empty MRRG for `config` with initiation interval `ii`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ZeroInitiationInterval`] when `ii == 0`.
    pub fn new(config: &CgraConfig, ii: u32) -> Result<Self, ArchError> {
        if ii == 0 {
            return Err(ArchError::ZeroInitiationInterval);
        }
        let tiles = config.tile_count();
        let words = (ii as usize).div_ceil(64);
        Ok(Mrrg {
            ii,
            tiles,
            reg_capacity: config.reg_capacity(),
            words,
            fu: vec![0; tiles * words],
            link: vec![0; tiles * 4 * words],
            reg: vec![0; tiles * ii as usize],
        })
    }

    /// The initiation interval this MRRG was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Clears every reservation in place, yielding the same state as a
    /// fresh [`Mrrg::new`] without reallocating. Lets a mapper reuse one
    /// allocation across retry attempts at the same II.
    pub fn reset(&mut self) {
        self.fu.fill(0);
        self.link.fill(0);
        self.reg.fill(0);
    }

    fn slot(&self, tile: TileId, cycle: u64) -> usize {
        debug_assert!(tile.index() < self.tiles, "tile out of range");
        tile.index() * self.ii as usize + (cycle % self.ii as u64) as usize
    }

    /// Splits the wrapped modulo window `[start, start + len)` into its
    /// unwrapped head (starting at `start mod II`) and, when the window
    /// crosses the period boundary, a tail starting at cycle 0.
    #[inline]
    fn window(&self, start: u64, len: u64) -> (u64, u64, u64) {
        debug_assert!(len <= self.ii as u64, "window longer than the period");
        let s = start % self.ii as u64;
        let head = len.min(self.ii as u64 - s);
        (s, head, len - head)
    }

    /// Whether the FU of `tile` is free for a window of `len` base cycles
    /// starting at absolute base cycle `start`.
    pub fn fu_free(&self, tile: TileId, start: u64, len: u32) -> bool {
        let base = tile.index() * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_free(&self.fu, base, s, head) && (tail == 0 || track_free(&self.fu, base, 0, tail))
    }

    /// Reserves the FU window. Call only after [`fu_free`](Mrrg::fu_free).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if part of the window is already occupied.
    pub fn occupy_fu(&mut self, tile: TileId, start: u64, len: u32) {
        debug_assert!(self.fu_free(tile, start, len), "double-booked FU slot");
        let base = tile.index() * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_set(&mut self.fu, base, s, head);
        if tail > 0 {
            track_set(&mut self.fu, base, 0, tail);
        }
    }

    /// Releases a previously reserved FU window.
    pub fn release_fu(&mut self, tile: TileId, start: u64, len: u32) {
        let base = tile.index() * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_clear(&mut self.fu, base, s, head);
        if tail > 0 {
            track_clear(&mut self.fu, base, 0, tail);
        }
    }

    /// Whether the outgoing link of `tile` towards `dir` is free for `len`
    /// base cycles starting at `start`.
    pub fn link_free(&self, tile: TileId, dir: Dir, start: u64, len: u32) -> bool {
        let base = (tile.index() * 4 + dir.index()) * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_free(&self.link, base, s, head)
            && (tail == 0 || track_free(&self.link, base, 0, tail))
    }

    /// Reserves a link window.
    pub fn occupy_link(&mut self, tile: TileId, dir: Dir, start: u64, len: u32) {
        let base = (tile.index() * 4 + dir.index()) * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_set(&mut self.link, base, s, head);
        if tail > 0 {
            track_set(&mut self.link, base, 0, tail);
        }
    }

    /// Releases a link window.
    pub fn release_link(&mut self, tile: TileId, dir: Dir, start: u64, len: u32) {
        let base = (tile.index() * 4 + dir.index()) * self.words;
        let (s, head, tail) = self.window(start, len as u64);
        track_clear(&mut self.link, base, s, head);
        if tail > 0 {
            track_clear(&mut self.link, base, 0, tail);
        }
    }

    /// Whether a register slot of `tile` can hold a value for `len` base
    /// cycles starting at `start`. Windows of `II` or more cycles demand a
    /// slot for the whole period (the value overlaps itself across
    /// iterations).
    pub fn reg_available(&self, tile: TileId, start: u64, len: u64) -> bool {
        let span = len.min(self.ii as u64);
        (0..span).all(|i| self.reg[self.slot(tile, start + i)] < self.reg_capacity)
    }

    /// Reserves a register hold window.
    pub fn occupy_reg(&mut self, tile: TileId, start: u64, len: u64) {
        let span = len.min(self.ii as u64);
        for i in 0..span {
            let s = self.slot(tile, start + i);
            debug_assert!(self.reg[s] < self.reg_capacity, "register overflow");
            self.reg[s] += 1;
        }
    }

    /// Releases a register hold window.
    pub fn release_reg(&mut self, tile: TileId, start: u64, len: u64) {
        let span = len.min(self.ii as u64);
        for i in 0..span {
            let s = self.slot(tile, start + i);
            debug_assert!(self.reg[s] > 0, "releasing an empty register window");
            self.reg[s] = self.reg[s].saturating_sub(1);
        }
    }

    /// Number of occupied FU base-cycle slots on `tile` (used by the
    /// utilization accounting).
    pub fn fu_busy_cycles(&self, tile: TileId) -> u32 {
        let base = tile.index() * self.words;
        self.fu[base..base + self.words]
            .iter()
            .map(|w| w.count_ones())
            .sum()
    }

    /// Number of occupied outgoing-link base-cycle slots on `tile`.
    pub fn link_busy_cycles(&self, tile: TileId) -> u32 {
        let mut n = 0;
        for dir in Dir::ALL {
            let base = (tile.index() * 4 + dir.index()) * self.words;
            n += self.link[base..base + self.words]
                .iter()
                .map(|w| w.count_ones())
                .sum::<u32>();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrrg(ii: u32) -> Mrrg {
        Mrrg::new(&CgraConfig::square(4).unwrap(), ii).unwrap()
    }

    #[test]
    fn zero_ii_rejected() {
        assert!(matches!(
            Mrrg::new(&CgraConfig::square(4).unwrap(), 0),
            Err(ArchError::ZeroInitiationInterval)
        ));
    }

    #[test]
    fn fu_windows_wrap_modulo_ii() {
        let mut m = mrrg(4);
        let t = TileId(5);
        // A rest-rate op at absolute cycle 4 occupies cycles 4..8 ≡ 0..4.
        assert!(m.fu_free(t, 4, 4));
        m.occupy_fu(t, 4, 4);
        assert!(!m.fu_free(t, 0, 1));
        assert!(!m.fu_free(t, 103, 1)); // any absolute time maps into the period
        assert_eq!(m.fu_busy_cycles(t), 4);
        m.release_fu(t, 4, 4);
        assert!(m.fu_free(t, 0, 4));
    }

    #[test]
    fn windows_crossing_the_period_boundary_split() {
        // II = 6: a window starting at cycle 5 of length 2 wraps to 5, 0.
        let mut m = mrrg(6);
        let t = TileId(7);
        m.occupy_fu(t, 5, 2);
        assert!(!m.fu_free(t, 5, 1));
        assert!(!m.fu_free(t, 0, 1));
        assert!(m.fu_free(t, 1, 4));
        assert_eq!(m.fu_busy_cycles(t), 2);
        m.release_fu(t, 5, 2);
        assert_eq!(m.fu_busy_cycles(t), 0);
    }

    #[test]
    fn wide_periods_span_multiple_words() {
        // II = 96 > 64 exercises the two-word track path.
        let mut m = mrrg(96);
        let t = TileId(3);
        m.occupy_fu(t, 62, 4); // straddles the word boundary at bit 64
        assert!(!m.fu_free(t, 63, 1));
        assert!(!m.fu_free(t, 65, 1));
        assert!(m.fu_free(t, 66, 4));
        assert_eq!(m.fu_busy_cycles(t), 4);
        m.occupy_link(t, Dir::West, 94, 2);
        assert!(!m.link_free(t, Dir::West, 95, 1));
        assert!(m.link_free(t, Dir::West, 0, 64));
        assert_eq!(m.link_busy_cycles(t), 2);
        m.release_link(t, Dir::West, 94, 2);
        m.release_fu(t, 62, 4);
        assert!(m.fu_free(t, 0, 96));
    }

    #[test]
    fn links_are_independent_per_direction() {
        let mut m = mrrg(4);
        let t = TileId(0);
        m.occupy_link(t, Dir::East, 1, 1);
        assert!(!m.link_free(t, Dir::East, 1, 1));
        assert!(m.link_free(t, Dir::South, 1, 1));
        assert!(m.link_free(t, Dir::East, 2, 1));
        assert_eq!(m.link_busy_cycles(t), 1);
    }

    #[test]
    fn register_capacity_is_enforced() {
        let cfg = CgraConfig::builder(2, 2)
            .island(1, 1)
            .reg_capacity(2)
            .build()
            .unwrap();
        let mut m = Mrrg::new(&cfg, 2).unwrap();
        let t = TileId(3);
        assert!(m.reg_available(t, 0, 2));
        m.occupy_reg(t, 0, 2);
        m.occupy_reg(t, 0, 2);
        assert!(!m.reg_available(t, 0, 1));
        assert!(!m.reg_available(t, 1, 1));
        m.release_reg(t, 0, 2);
        assert!(m.reg_available(t, 1, 1));
    }

    #[test]
    fn long_holds_clamp_to_one_period() {
        let mut m = mrrg(4);
        let t = TileId(2);
        // Holding for 100 cycles just pins one slot for the whole period.
        m.occupy_reg(t, 1, 100);
        for c in 0..4 {
            assert_eq!(m.reg[t.index() * 4 + c], 1);
        }
        m.release_reg(t, 1, 100);
        assert!(m.reg_available(t, 0, 4));
    }

    #[test]
    fn reset_clears_everything_in_place() {
        let mut m = mrrg(4);
        let t = TileId(6);
        m.occupy_fu(t, 1, 2);
        m.occupy_link(t, Dir::North, 0, 1);
        m.occupy_reg(t, 2, 3);
        m.reset();
        assert!(m.fu_free(t, 0, 4));
        assert!(m.link_free(t, Dir::North, 0, 4));
        assert!(m.reg_available(t, 0, 4));
        assert_eq!(m.fu_busy_cycles(t), 0);
        assert_eq!(m.link_busy_cycles(t), 0);
    }

    #[test]
    fn clone_snapshots_state() {
        let mut m = mrrg(2);
        let snap = m.clone();
        m.occupy_fu(TileId(1), 0, 1);
        assert!(!m.fu_free(TileId(1), 0, 1));
        assert!(snap.fu_free(TileId(1), 0, 1));
    }
}
