//! DVFS levels supported by ICED islands.

use std::fmt;

/// Voltage/frequency level of a DVFS island.
///
/// The paper's Equation (1) fixes the frequency relationship
/// `f(normal) = 2·f(relax) = 4·f(rest)`; the prototype's operating points
/// are normal @ 0.7 V/434 MHz, relax @ 0.5 V/217 MHz, rest @
/// 0.42 V/108.5 MHz (§V-A). Power-gating switches an island off entirely.
///
/// The derive ordering is `PowerGated < Rest < Relax < Normal`, so "higher
/// level" means faster, matching Algorithm 1/2's comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DvfsLevel {
    /// Island switched off (headers gated); no clock, no leakage.
    PowerGated,
    /// Quarter frequency, lowest active voltage.
    Rest,
    /// Half frequency.
    Relax,
    /// Nominal voltage and frequency.
    #[default]
    Normal,
}

impl DvfsLevel {
    /// The three *active* levels, fastest first.
    pub const ACTIVE: [DvfsLevel; 3] = [DvfsLevel::Normal, DvfsLevel::Relax, DvfsLevel::Rest];

    /// Base-clock cycles per cycle of this level's clock domain
    /// (`None` when power-gated).
    pub fn rate_divisor(self) -> Option<u32> {
        match self {
            DvfsLevel::Normal => Some(1),
            DvfsLevel::Relax => Some(2),
            DvfsLevel::Rest => Some(4),
            DvfsLevel::PowerGated => None,
        }
    }

    /// Frequency as a fraction of nominal: the metric behind the paper's
    /// "average DVFS level" figures (normal 100 %, relax 50 %, rest 25 %,
    /// power-gated 0 %).
    pub fn frequency_fraction(self) -> f64 {
        match self {
            DvfsLevel::Normal => 1.0,
            DvfsLevel::Relax => 0.5,
            DvfsLevel::Rest => 0.25,
            DvfsLevel::PowerGated => 0.0,
        }
    }

    /// One level faster (saturating at `Normal`); power-gated islands wake
    /// into `Rest`.
    pub fn raised(self) -> DvfsLevel {
        match self {
            DvfsLevel::PowerGated => DvfsLevel::Rest,
            DvfsLevel::Rest => DvfsLevel::Relax,
            DvfsLevel::Relax | DvfsLevel::Normal => DvfsLevel::Normal,
        }
    }

    /// One *active* level slower (saturating at `Rest`; never gates — gating
    /// is an explicit decision, not a gradual one).
    pub fn lowered(self) -> DvfsLevel {
        match self {
            DvfsLevel::Normal => DvfsLevel::Relax,
            DvfsLevel::Relax | DvfsLevel::Rest => DvfsLevel::Rest,
            DvfsLevel::PowerGated => DvfsLevel::PowerGated,
        }
    }

    /// Whether the island is running at all.
    pub fn is_active(self) -> bool {
        self != DvfsLevel::PowerGated
    }
}

impl fmt::Display for DvfsLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DvfsLevel::Normal => "normal",
            DvfsLevel::Relax => "relax",
            DvfsLevel::Rest => "rest",
            DvfsLevel::PowerGated => "power-gated",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_speed() {
        assert!(DvfsLevel::Normal > DvfsLevel::Relax);
        assert!(DvfsLevel::Relax > DvfsLevel::Rest);
        assert!(DvfsLevel::Rest > DvfsLevel::PowerGated);
    }

    #[test]
    fn equation_one_holds() {
        // f_normal = 2*f_relax = 4*f_rest
        let f = DvfsLevel::frequency_fraction;
        assert_eq!(f(DvfsLevel::Normal), 2.0 * f(DvfsLevel::Relax));
        assert_eq!(f(DvfsLevel::Normal), 4.0 * f(DvfsLevel::Rest));
    }

    #[test]
    fn rate_divisors_invert_fractions() {
        for lvl in DvfsLevel::ACTIVE {
            let r = lvl.rate_divisor().unwrap() as f64;
            assert!((lvl.frequency_fraction() * r - 1.0).abs() < 1e-12);
        }
        assert_eq!(DvfsLevel::PowerGated.rate_divisor(), None);
    }

    #[test]
    fn raise_lower_saturate() {
        assert_eq!(DvfsLevel::Normal.raised(), DvfsLevel::Normal);
        assert_eq!(DvfsLevel::Rest.lowered(), DvfsLevel::Rest);
        assert_eq!(DvfsLevel::Relax.raised(), DvfsLevel::Normal);
        assert_eq!(DvfsLevel::Normal.lowered(), DvfsLevel::Relax);
        assert_eq!(DvfsLevel::PowerGated.raised(), DvfsLevel::Rest);
        assert_eq!(DvfsLevel::PowerGated.lowered(), DvfsLevel::PowerGated);
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(DvfsLevel::default(), DvfsLevel::Normal);
    }
}
