//! Topology primitives: tiles, islands, mesh directions.

use std::fmt;

/// Identifier of one CGRA tile.
///
/// Tiles are numbered row-major: tile `r·cols + c` sits at row `r`,
/// column `c`, matching the paper's Figure 1 numbering (tile0 top-left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TileId(pub u16);

impl TileId {
    /// Dense index of this tile.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tile{}", self.0)
    }
}

/// Identifier of one DVFS island (a rectangular group of tiles sharing an
/// LDO + ADPLL + DVFS control unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IslandId(pub u16);

impl IslandId {
    /// Dense index of this island.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IslandId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "island{}", self.0)
    }
}

/// Mesh direction of a tile-to-tile link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// Towards row − 1.
    North,
    /// Towards column + 1.
    East,
    /// Towards row + 1.
    South,
    /// Towards column − 1.
    West,
}

impl Dir {
    /// All four directions, in a fixed deterministic order.
    pub const ALL: [Dir; 4] = [Dir::North, Dir::East, Dir::South, Dir::West];

    /// The opposite direction.
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::West => Dir::East,
        }
    }

    /// Dense index 0..4.
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::East => 1,
            Dir::South => 2,
            Dir::West => 3,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::North => "N",
            Dir::East => "E",
            Dir::South => "S",
            Dir::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn indices_are_dense_and_distinct() {
        let mut seen = [false; 4];
        for d in Dir::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(TileId(9).to_string(), "tile9");
        assert_eq!(IslandId(2).to_string(), "island2");
        assert_eq!(Dir::North.to_string(), "N");
    }
}
