//! Parametric CGRA description.

use crate::error::ArchError;
use crate::tile::{Dir, IslandId, TileId};

/// Functional-unit layout across the fabric.
///
/// Real CGRAs are often heterogeneous: multipliers and dividers are large,
/// so only a subset of tiles carries them (the paper's CGRA-Flow companion
/// framework exposes exactly this kind of per-tile FU customization). The
/// mapper consults [`CgraConfig::tile_supports`] when filtering placement
/// candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FuLayout {
    /// Every tile carries a full FU (the ICED prototype).
    #[default]
    Homogeneous,
    /// Multiplier/divider FUs on a checkerboard: tiles with even
    /// `(row + col)` carry them, the rest are ALU-only.
    CheckerboardMul,
    /// Multiplier/divider FUs only on even columns.
    EvenColumnsMul,
}

/// A validated description of an ICED CGRA instance.
///
/// Defaults follow the paper's prototype: a `6×6` array with `2×2` DVFS
/// islands, 32 KB of scratchpad memory in 8 banks reachable from the
/// leftmost tile column, and per-tile register files used by the router to
/// hold values across cycles.
///
/// Construct via [`CgraConfig::builder`], or use the shorthand constructors
/// [`CgraConfig::iced_prototype`] (6×6, 2×2 islands) and
/// [`CgraConfig::square`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CgraConfig {
    rows: usize,
    cols: usize,
    island_rows: usize,
    island_cols: usize,
    reg_capacity: u8,
    spm_banks: usize,
    spm_kib: usize,
    fu_layout: FuLayout,
}

impl CgraConfig {
    /// The paper's 6×6 prototype with 2×2 DVFS islands.
    pub fn iced_prototype() -> Self {
        CgraConfig::builder(6, 6)
            .build()
            .expect("prototype config is valid")
    }

    /// A square `n×n` array with the default 2×2 island geometry (clamped to
    /// the array for `n = 1`).
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is zero.
    pub fn square(n: usize) -> Result<Self, ArchError> {
        let island = 2.min(n.max(1));
        CgraConfig::builder(n, n).island(island, island).build()
    }

    /// A square array with per-tile DVFS (1×1 islands) — the UE-CGRA-style
    /// comparator configuration.
    ///
    /// # Errors
    ///
    /// Returns an error when `n` is zero.
    pub fn square_per_tile(n: usize) -> Result<Self, ArchError> {
        CgraConfig::builder(n, n).island(1, 1).build()
    }

    /// Starts building a `rows×cols` configuration.
    pub fn builder(rows: usize, cols: usize) -> CgraConfigBuilder {
        CgraConfigBuilder {
            rows,
            cols,
            island_rows: 2,
            island_cols: 2,
            reg_capacity: 16,
            spm_banks: 8,
            spm_kib: 32,
            fu_layout: FuLayout::Homogeneous,
        }
    }

    /// Number of tile rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of tile columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of tiles.
    pub fn tile_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Island height in tiles.
    pub fn island_rows(&self) -> usize {
        self.island_rows
    }

    /// Island width in tiles.
    pub fn island_cols(&self) -> usize {
        self.island_cols
    }

    /// Register-file slots per tile available to the router.
    pub fn reg_capacity(&self) -> u8 {
        self.reg_capacity
    }

    /// Scratchpad bank count.
    pub fn spm_banks(&self) -> usize {
        self.spm_banks
    }

    /// Scratchpad capacity in KiB.
    pub fn spm_kib(&self) -> usize {
        self.spm_kib
    }

    /// Number of island grid rows (edge islands may be narrower when the
    /// island geometry does not divide the array — e.g. 3×3 islands on an
    /// 8×8 array, the "irregular" case the paper notes for Figure 4).
    pub fn island_grid_rows(&self) -> usize {
        self.rows.div_ceil(self.island_rows)
    }

    /// Number of island grid columns.
    pub fn island_grid_cols(&self) -> usize {
        self.cols.div_ceil(self.island_cols)
    }

    /// Total number of DVFS islands.
    pub fn island_count(&self) -> usize {
        self.island_grid_rows() * self.island_grid_cols()
    }

    /// `(row, col)` position of a tile.
    pub fn position(&self, tile: TileId) -> (usize, usize) {
        let i = tile.index();
        (i / self.cols, i % self.cols)
    }

    /// Tile at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is outside the array.
    pub fn tile_at(&self, row: usize, col: usize) -> TileId {
        assert!(row < self.rows && col < self.cols, "position out of bounds");
        TileId((row * self.cols + col) as u16)
    }

    /// Iterator over all tiles in row-major order.
    pub fn tiles(&self) -> impl ExactSizeIterator<Item = TileId> + 'static {
        (0..self.tile_count() as u16).map(TileId)
    }

    /// Iterator over all islands.
    pub fn islands(&self) -> impl ExactSizeIterator<Item = IslandId> + 'static {
        (0..self.island_count() as u16).map(IslandId)
    }

    /// The island containing `tile`.
    pub fn island_of(&self, tile: TileId) -> IslandId {
        let (r, c) = self.position(tile);
        let ir = r / self.island_rows;
        let ic = c / self.island_cols;
        IslandId((ir * self.island_grid_cols() + ic) as u16)
    }

    /// Tiles belonging to `island`, in row-major order.
    pub fn island_tiles(&self, island: IslandId) -> Vec<TileId> {
        let ir = island.index() / self.island_grid_cols();
        let ic = island.index() % self.island_grid_cols();
        let r0 = ir * self.island_rows;
        let c0 = ic * self.island_cols;
        let mut tiles = Vec::new();
        for r in r0..(r0 + self.island_rows).min(self.rows) {
            for c in c0..(c0 + self.island_cols).min(self.cols) {
                tiles.push(self.tile_at(r, c));
            }
        }
        tiles
    }

    /// The neighbouring tile in direction `dir`, if it exists.
    pub fn neighbor(&self, tile: TileId, dir: Dir) -> Option<TileId> {
        let (r, c) = self.position(tile);
        let (nr, nc) = match dir {
            Dir::North => (r.checked_sub(1)?, c),
            Dir::South => (r + 1, c),
            Dir::East => (r, c + 1),
            Dir::West => (r, c.checked_sub(1)?),
        };
        (nr < self.rows && nc < self.cols).then(|| self.tile_at(nr, nc))
    }

    /// All existing neighbours of `tile` with their directions.
    pub fn neighbors(&self, tile: TileId) -> impl Iterator<Item = (Dir, TileId)> + '_ {
        Dir::ALL
            .into_iter()
            .filter_map(move |d| self.neighbor(tile, d).map(|t| (d, t)))
    }

    /// Whether `tile` can execute SPM loads/stores: in the ICED topology
    /// only the leftmost column connects to the scratchpad crossbar.
    pub fn is_memory_tile(&self, tile: TileId) -> bool {
        self.position(tile).1 == 0
    }

    /// Functional-unit layout of the fabric.
    pub fn fu_layout(&self) -> FuLayout {
        self.fu_layout
    }

    /// Whether `tile` carries a multiplier/divider-class FU. ALU, control,
    /// move, and (on SPM tiles) memory operations are supported everywhere.
    pub fn tile_has_multiplier(&self, tile: TileId) -> bool {
        let (r, c) = self.position(tile);
        match self.fu_layout {
            FuLayout::Homogeneous => true,
            FuLayout::CheckerboardMul => (r + c) % 2 == 0,
            FuLayout::EvenColumnsMul => c % 2 == 0,
        }
    }

    /// A stable content digest of this configuration, for cache keys.
    ///
    /// Every field is fed into an [`iced_hash::StableHasher`] under an
    /// explicit tag, so the digest survives process restarts and
    /// field-order refactors (unlike a derived `Hash` with
    /// `DefaultHasher`). Any semantic change — dimensions, island
    /// geometry, register capacity, SPM shape, FU layout — changes it.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = iced_hash::StableHasher::new();
        h.write_str("cgra-config");
        h.write_str("rows");
        h.write_usize(self.rows);
        h.write_str("cols");
        h.write_usize(self.cols);
        h.write_str("island_rows");
        h.write_usize(self.island_rows);
        h.write_str("island_cols");
        h.write_usize(self.island_cols);
        h.write_str("reg_capacity");
        h.write_u8(self.reg_capacity);
        h.write_str("spm_banks");
        h.write_usize(self.spm_banks);
        h.write_str("spm_kib");
        h.write_usize(self.spm_kib);
        h.write_str("fu_layout");
        h.write_u8(match self.fu_layout {
            FuLayout::Homogeneous => 0,
            FuLayout::CheckerboardMul => 1,
            FuLayout::EvenColumnsMul => 2,
        });
        h.finish()
    }

    /// Manhattan distance between two tiles (router's admissible heuristic).
    pub fn manhattan(&self, a: TileId, b: TileId) -> usize {
        let (ar, ac) = self.position(a);
        let (br, bc) = self.position(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }
}

impl Default for CgraConfig {
    fn default() -> Self {
        CgraConfig::iced_prototype()
    }
}

/// Builder for [`CgraConfig`]. Created by [`CgraConfig::builder`].
#[derive(Debug, Clone)]
pub struct CgraConfigBuilder {
    rows: usize,
    cols: usize,
    island_rows: usize,
    island_cols: usize,
    reg_capacity: u8,
    spm_banks: usize,
    spm_kib: usize,
    fu_layout: FuLayout,
}

impl CgraConfigBuilder {
    /// Sets the DVFS island geometry (`1×1` = per-tile DVFS).
    pub fn island(mut self, rows: usize, cols: usize) -> Self {
        self.island_rows = rows;
        self.island_cols = cols;
        self
    }

    /// Sets the per-tile register capacity available for routing.
    pub fn reg_capacity(mut self, slots: u8) -> Self {
        self.reg_capacity = slots;
        self
    }

    /// Sets the SPM bank count.
    pub fn spm_banks(mut self, banks: usize) -> Self {
        self.spm_banks = banks;
        self
    }

    /// Sets the SPM capacity in KiB.
    pub fn spm_kib(mut self, kib: usize) -> Self {
        self.spm_kib = kib;
        self
    }

    /// Sets the functional-unit layout (heterogeneous fabrics).
    pub fn fu_layout(mut self, layout: FuLayout) -> Self {
        self.fu_layout = layout;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] for zero dimensions, island geometry larger
    /// than the array, zero register capacity, or zero SPM banks.
    pub fn build(self) -> Result<CgraConfig, ArchError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(ArchError::ZeroDimension);
        }
        if self.island_rows == 0
            || self.island_cols == 0
            || self.island_rows > self.rows
            || self.island_cols > self.cols
        {
            return Err(ArchError::InvalidIslandGeometry {
                island_rows: self.island_rows,
                island_cols: self.island_cols,
            });
        }
        if self.reg_capacity == 0 {
            return Err(ArchError::ZeroRegisterCapacity);
        }
        if self.spm_banks == 0 {
            return Err(ArchError::ZeroSpmBanks);
        }
        Ok(CgraConfig {
            rows: self.rows,
            cols: self.cols,
            island_rows: self.island_rows,
            island_cols: self.island_cols,
            reg_capacity: self.reg_capacity,
            spm_banks: self.spm_banks,
            spm_kib: self.spm_kib,
            fu_layout: self.fu_layout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = CgraConfig::iced_prototype();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.cols(), 6);
        assert_eq!(c.island_count(), 9);
        assert_eq!(c.spm_banks(), 8);
        assert_eq!(c.spm_kib(), 32);
        assert_eq!(
            c.island_tiles(IslandId(0)),
            vec![
                c.tile_at(0, 0),
                c.tile_at(0, 1),
                c.tile_at(1, 0),
                c.tile_at(1, 1)
            ]
        );
    }

    #[test]
    fn per_tile_config_has_one_island_per_tile() {
        let c = CgraConfig::square_per_tile(4).unwrap();
        assert_eq!(c.island_count(), 16);
        for t in c.tiles() {
            assert_eq!(c.island_tiles(c.island_of(t)), vec![t]);
        }
    }

    #[test]
    fn irregular_islands_cover_all_tiles_once() {
        // 3×3 islands on 8×8: the paper's "irregular island shape" case.
        let c = CgraConfig::builder(8, 8).island(3, 3).build().unwrap();
        assert_eq!(c.island_count(), 9);
        let mut covered = vec![0u8; c.tile_count()];
        for i in c.islands() {
            for t in c.island_tiles(i) {
                covered[t.index()] += 1;
                assert_eq!(c.island_of(t), i);
            }
        }
        assert!(covered.iter().all(|&x| x == 1));
    }

    #[test]
    fn neighbors_respect_mesh_borders() {
        let c = CgraConfig::square(4).unwrap();
        let corner = c.tile_at(0, 0);
        let dirs: Vec<Dir> = c.neighbors(corner).map(|(d, _)| d).collect();
        assert_eq!(dirs, vec![Dir::East, Dir::South]);
        let center = c.tile_at(1, 1);
        assert_eq!(c.neighbors(center).count(), 4);
        assert_eq!(c.neighbor(center, Dir::North), Some(c.tile_at(0, 1)));
    }

    #[test]
    fn memory_tiles_are_leftmost_column() {
        let c = CgraConfig::square(4).unwrap();
        for t in c.tiles() {
            assert_eq!(c.is_memory_tile(t), c.position(t).1 == 0);
        }
        assert_eq!(c.tiles().filter(|&t| c.is_memory_tile(t)).count(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(matches!(
            CgraConfig::builder(0, 4).build(),
            Err(ArchError::ZeroDimension)
        ));
        assert!(matches!(
            CgraConfig::builder(4, 4).island(5, 2).build(),
            Err(ArchError::InvalidIslandGeometry { .. })
        ));
        assert!(matches!(
            CgraConfig::builder(4, 4).reg_capacity(0).build(),
            Err(ArchError::ZeroRegisterCapacity)
        ));
        assert!(matches!(
            CgraConfig::builder(4, 4).spm_banks(0).build(),
            Err(ArchError::ZeroSpmBanks)
        ));
    }

    #[test]
    fn heterogeneous_layouts_restrict_multipliers() {
        let hom = CgraConfig::square(4).unwrap();
        assert!(hom.tiles().all(|t| hom.tile_has_multiplier(t)));
        let check = CgraConfig::builder(4, 4)
            .fu_layout(FuLayout::CheckerboardMul)
            .build()
            .unwrap();
        let with_mul = check
            .tiles()
            .filter(|&t| check.tile_has_multiplier(t))
            .count();
        assert_eq!(with_mul, 8);
        assert!(check.tile_has_multiplier(check.tile_at(0, 0)));
        assert!(!check.tile_has_multiplier(check.tile_at(0, 1)));
        let cols = CgraConfig::builder(4, 4)
            .fu_layout(FuLayout::EvenColumnsMul)
            .build()
            .unwrap();
        assert!(cols.tile_has_multiplier(cols.tile_at(3, 2)));
        assert!(!cols.tile_has_multiplier(cols.tile_at(3, 3)));
    }

    #[test]
    fn canonical_hash_is_pinned_and_field_sensitive() {
        // Cross-process stability contract (service disk cache); change
        // deliberately or not at all.
        let proto = CgraConfig::iced_prototype();
        assert_eq!(proto.canonical_hash(), 0x6e22_878d_c451_e094);
        assert_eq!(proto.canonical_hash(), proto.clone().canonical_hash());
        let variants = [
            CgraConfig::builder(8, 6).build().unwrap(),
            CgraConfig::builder(6, 6).island(3, 3).build().unwrap(),
            CgraConfig::builder(6, 6).reg_capacity(8).build().unwrap(),
            CgraConfig::builder(6, 6).spm_banks(4).build().unwrap(),
            CgraConfig::builder(6, 6).spm_kib(64).build().unwrap(),
            CgraConfig::builder(6, 6)
                .fu_layout(FuLayout::CheckerboardMul)
                .build()
                .unwrap(),
        ];
        for v in &variants {
            assert_ne!(proto.canonical_hash(), v.canonical_hash(), "{v:?}");
        }
    }

    #[test]
    fn manhattan_distance() {
        let c = CgraConfig::square(6).unwrap();
        assert_eq!(c.manhattan(c.tile_at(0, 0), c.tile_at(3, 2)), 5);
        assert_eq!(c.manhattan(c.tile_at(2, 2), c.tile_at(2, 2)), 0);
    }
}
