//! Property-based tests for the architecture substrate: MRRG reservations
//! must be exact inverses of releases, island geometry must partition the
//! fabric, and topology relations must be symmetric.

use iced_arch::{CgraConfig, Dir, Mrrg, TileId};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CgraConfig> {
    (1usize..=8, 1usize..=8, 1usize..=3, 1usize..=3)
        .prop_filter_map("island fits array", |(rows, cols, ir, ic)| {
            CgraConfig::builder(rows, cols).island(ir, ic).build().ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn islands_partition_the_fabric(cfg in arb_config()) {
        let mut seen = vec![0u32; cfg.tile_count()];
        for island in cfg.islands() {
            for t in cfg.island_tiles(island) {
                seen[t.index()] += 1;
                prop_assert_eq!(cfg.island_of(t), island);
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn neighbor_relation_is_symmetric(cfg in arb_config()) {
        for t in cfg.tiles() {
            for (d, n) in cfg.neighbors(t) {
                prop_assert_eq!(cfg.neighbor(n, d.opposite()), Some(t));
            }
        }
    }

    #[test]
    fn manhattan_is_a_metric(cfg in arb_config(), a in 0usize..64, b in 0usize..64, c in 0usize..64) {
        let n = cfg.tile_count();
        let (a, b, c) = (TileId((a % n) as u16), TileId((b % n) as u16), TileId((c % n) as u16));
        prop_assert_eq!(cfg.manhattan(a, b), cfg.manhattan(b, a));
        prop_assert_eq!(cfg.manhattan(a, a), 0);
        prop_assert!(cfg.manhattan(a, c) <= cfg.manhattan(a, b) + cfg.manhattan(b, c));
    }

    #[test]
    fn mrrg_occupy_release_round_trips(
        cfg in arb_config(),
        ii in 1u32..=8,
        ops in proptest::collection::vec((0usize..64, 0u64..32, 1u32..=4), 0..24),
    ) {
        let mut m = Mrrg::new(&cfg, ii).unwrap();
        let n = cfg.tile_count();
        let mut committed = Vec::new();
        for (t, start, len) in ops {
            let tile = TileId((t % n) as u16);
            let len = len.min(ii);
            if m.fu_free(tile, start, len) {
                m.occupy_fu(tile, start, len);
                committed.push((tile, start, len));
            }
            // Occupied windows must report busy.
            prop_assert!(!committed.iter().any(|&(tt, s, l)| tt == tile && l > 0
                && m.fu_free(tt, s, l)));
        }
        for (tile, start, len) in committed.into_iter().rev() {
            m.release_fu(tile, start, len);
        }
        for t in cfg.tiles() {
            prop_assert_eq!(m.fu_busy_cycles(t), 0);
            prop_assert!(m.fu_free(t, 0, ii));
        }
    }

    #[test]
    fn link_windows_are_independent_per_direction(cfg in arb_config(), ii in 1u32..=6) {
        let mut m = Mrrg::new(&cfg, ii).unwrap();
        let t = TileId(0);
        m.occupy_link(t, Dir::East, 0, 1);
        for d in [Dir::North, Dir::South, Dir::West] {
            prop_assert!(m.link_free(t, d, 0, 1));
        }
        m.release_link(t, Dir::East, 0, 1);
        prop_assert!(m.link_free(t, Dir::East, 0, 1));
    }

    #[test]
    fn register_pressure_never_exceeds_capacity(
        ii in 1u32..=6,
        holds in proptest::collection::vec((0u64..16, 1u64..8), 0..64),
    ) {
        let cfg = CgraConfig::builder(2, 2).reg_capacity(4).build().unwrap();
        let mut m = Mrrg::new(&cfg, ii).unwrap();
        let t = TileId(0);
        let mut live = 0usize;
        for (start, len) in holds {
            if m.reg_available(t, start, len) {
                m.occupy_reg(t, start, len);
                live += 1;
            }
        }
        // With capacity 4 and every hold clamped to one period, at most 4
        // can overlap any single cycle; the accept count may be larger only
        // if holds are disjoint in time.
        prop_assert!(live <= 4 * ii as usize);
    }
}
