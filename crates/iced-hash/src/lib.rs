//! Stable content hashing for the ICED toolchain.
//!
//! `iced-service` keys its compile/simulate result cache by the *content*
//! of a request — the dataflow graph, the CGRA configuration, and the
//! mapper options. Such a key must be reproducible across process runs
//! (so a disk-spilled cache survives a daemon restart) and across
//! refactors that merely reorder struct fields. The standard library's
//! `DefaultHasher` guarantees neither, and deriving `Hash` ties the
//! digest to declaration order; this crate provides the substitute:
//!
//! * [`StableHasher`] — a fixed, documented algorithm (FNV-1a 64 over a
//!   length-prefixed byte encoding, finished with a SplitMix64 avalanche)
//!   that every toolchain crate feeds *explicitly tagged* fields into, in
//!   an order the `canonical_hash` implementations own.
//! * [`combine`] — order-dependent digest composition for building one
//!   cache key out of several component digests.
//!
//! Digest stability is part of the wire/cache contract: the pinned-digest
//! tests in `iced-dfg`, `iced-arch`, and `iced-mapper` fail loudly if the
//! algorithm or any canonical encoding drifts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Final avalanche pass (SplitMix64's mixer): FNV-1a alone diffuses low
/// bits poorly, which matters when digests are truncated into buckets.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A stable, seedable 64-bit content hasher.
///
/// All multi-byte integers are fed little-endian; variable-length inputs
/// are length-prefixed so concatenation ambiguities cannot produce
/// colliding encodings (`("ab","c")` vs `("a","bc")`).
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// A hasher with the default seed.
    pub fn new() -> StableHasher {
        StableHasher { state: FNV_OFFSET }
    }

    /// A hasher whose stream is domain-separated by `seed` — used to
    /// derive independent digests of the same content (e.g. the two
    /// halves of a 128-bit cache key).
    pub fn with_seed(seed: u64) -> StableHasher {
        let mut h = StableHasher::new();
        h.write_u64(seed);
        h
    }

    #[inline]
    fn step(&mut self, byte: u8) {
        self.state = (self.state ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }

    /// Feeds one byte.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.step(v);
    }

    /// Feeds a `u32` (little-endian).
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.step(b);
        }
    }

    /// Feeds a `u64` (little-endian).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.step(b);
        }
    }

    /// Feeds a `usize` widened to 64 bits, so 32- and 64-bit hosts agree.
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean as one byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.step(u8::from(v));
    }

    /// Feeds a byte slice, length-prefixed.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for &b in bytes {
            self.step(b);
        }
    }

    /// Feeds a string's UTF-8 bytes, length-prefixed.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        mix(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

/// Folds a sequence of digests into one, order-dependently. Use for
/// composing a cache key from component `canonical_hash` values.
pub fn combine(parts: &[u64]) -> u64 {
    let mut h = StableHasher::new();
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// Domain-separation seed for rendezvous (highest-random-weight) scores.
/// Distinct from the cache-key seeds (`0x1ced_0001`/`0x1ced_0002`) so the
/// placement function is independent of the key bits themselves.
const RENDEZVOUS_SEED: u64 = 0x1ced_0004;

/// A stable identifier for a cluster shard, derived from its address
/// string (e.g. `"127.0.0.1:4401"`). Routers and benches must agree on
/// this so both sides compute the same owner for a key.
pub fn shard_id(addr: &str) -> u64 {
    let mut h = StableHasher::with_seed(RENDEZVOUS_SEED);
    h.write_str(addr);
    h.finish()
}

/// The rendezvous score of `shard` for the 128-bit key `(key_hi, key_lo)`.
/// The shard with the highest score over a set owns the key; the
/// runner-up is its replication successor. Removing one shard only
/// remaps the keys that shard owned — every other key keeps its
/// maximum, which is the property that makes failover cheap.
pub fn rendezvous_score(key_hi: u64, key_lo: u64, shard: u64) -> u64 {
    let mut h = StableHasher::with_seed(RENDEZVOUS_SEED);
    h.write_u64(key_hi);
    h.write_u64(key_lo);
    h.write_u64(shard);
    h.finish()
}

/// Indices into `shards` ordered best-first by rendezvous score (ties
/// broken by shard id so the order is total and deterministic). Index 0
/// is the key's owner, index 1 its replication successor.
pub fn rendezvous_rank(key_hi: u64, key_lo: u64, shards: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..shards.len()).collect();
    order.sort_by_key(|&i| {
        (
            std::cmp::Reverse(rendezvous_score(key_hi, key_lo, shards[i])),
            shards[i],
        )
    });
    order
}

/// The index of the shard owning `(key_hi, key_lo)`, or `None` for an
/// empty shard set.
pub fn rendezvous_owner(key_hi: u64, key_lo: u64, shards: &[u64]) -> Option<usize> {
    shards
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| (rendezvous_score(key_hi, key_lo, s), std::cmp::Reverse(s)))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_across_runs() {
        // Pinned values: these are the cross-process stability contract.
        // If this test fails, every disk-spilled service cache and every
        // pinned digest downstream is invalidated — bump them all together.
        let mut h = StableHasher::new();
        h.write_str("iced");
        h.write_u64(42);
        h.write_bool(true);
        assert_eq!(h.finish(), 0xb90a_9c55_2bfa_3bab);
        assert_eq!(StableHasher::new().finish(), 0xf52a_15e9_a9b5_e89b);
    }

    #[test]
    fn length_prefix_disambiguates() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn seeds_separate_domains() {
        let mut a = StableHasher::with_seed(1);
        let mut b = StableHasher::with_seed(2);
        a.write_str("x");
        b.write_str("x");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_dependent() {
        assert_ne!(combine(&[1, 2]), combine(&[2, 1]));
        assert_ne!(combine(&[1]), combine(&[1, 0]));
    }

    #[test]
    fn rendezvous_is_deterministic_and_ranked_consistently() {
        let shards: Vec<u64> = ["a:1", "b:2", "c:3", "d:4"]
            .iter()
            .map(|a| shard_id(a))
            .collect();
        for k in 0..64u64 {
            let (hi, lo) = (mix(k), mix(k ^ 0xdead));
            let rank = rendezvous_rank(hi, lo, &shards);
            assert_eq!(rank.len(), shards.len());
            let mut seen = rank.clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3], "rank must be a permutation");
            assert_eq!(rendezvous_owner(hi, lo, &shards), Some(rank[0]));
            assert_eq!(rank, rendezvous_rank(hi, lo, &shards));
        }
        assert_eq!(rendezvous_owner(1, 2, &[]), None);
    }

    #[test]
    fn rendezvous_balances_roughly_evenly() {
        let shards: Vec<u64> = (0..4)
            .map(|i| shard_id(&format!("127.0.0.1:44{i:02}")))
            .collect();
        let mut counts = [0usize; 4];
        let n = 4096u64;
        for k in 0..n {
            let (hi, lo) = (mix(k), mix(k.wrapping_mul(0x9e37_79b9)));
            counts[rendezvous_owner(hi, lo, &shards).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            // Perfectly even would be 1024; allow a wide statistical band.
            assert!((600..=1500).contains(&c), "shard {i} owns {c} of {n} keys");
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_own_keys() {
        let shards: Vec<u64> = (0..5).map(|i| shard_id(&format!("s{i}"))).collect();
        let survivors: Vec<u64> = shards[..4].to_vec();
        for k in 0..512u64 {
            let (hi, lo) = (mix(k ^ 7), mix(k ^ 13));
            let before = rendezvous_owner(hi, lo, &shards).unwrap();
            let after = rendezvous_owner(hi, lo, &survivors).unwrap();
            if before != 4 {
                assert_eq!(before, after, "key {k} moved despite its owner surviving");
            } else {
                // The dead shard's keys land on the old runner-up.
                assert_eq!(after, rendezvous_rank(hi, lo, &shards)[1]);
            }
        }
    }
}
