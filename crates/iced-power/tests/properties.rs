//! Property-based tests on the power model: physical monotonicities that
//! must hold for any calibration.

use iced_arch::DvfsLevel;
use iced_power::{PowerModel, TransitionModel};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = PowerModel> {
    (0.0f64..=0.6, 0.0f64..=0.8, 0.0f64..=0.9)
        .prop_map(|(sf, cf, ss)| PowerModel::with_fractions(sf, cf, ss))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn power_is_monotone_in_activity(model in arb_model(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for lvl in DvfsLevel::ACTIVE {
            prop_assert!(model.tile_power_mw(lvl, lo) <= model.tile_power_mw(lvl, hi) + 1e-12);
        }
    }

    #[test]
    fn power_is_monotone_in_level(model in arb_model(), a in 0.0f64..=1.0) {
        let n = model.tile_power_mw(DvfsLevel::Normal, a);
        let rl = model.tile_power_mw(DvfsLevel::Relax, a);
        let rs = model.tile_power_mw(DvfsLevel::Rest, a);
        let pg = model.tile_power_mw(DvfsLevel::PowerGated, a);
        prop_assert!(n >= rl && rl >= rs && rs >= pg);
        prop_assert_eq!(pg, 0.0);
    }

    #[test]
    fn full_array_calibration_anchor_holds(model in arb_model()) {
        // Whatever the fractions, a fully-active nominal array must draw
        // exactly the published power: the split redistributes it only.
        let p = 36.0 * model.tile_power_mw(DvfsLevel::Normal, 1.0);
        prop_assert!((p - 113.95).abs() < 1e-6, "{p}");
    }

    #[test]
    fn controller_power_is_linear(model in arb_model(), n in 0usize..64, m in 0usize..64) {
        let pn = model.controllers_power_mw(n);
        let pm = model.controllers_power_mw(m);
        prop_assert!((model.controllers_power_mw(n + m) - (pn + pm)).abs() < 1e-9);
    }

    #[test]
    fn sram_power_is_bounded_and_monotone(model in arb_model(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(model.sram_power_mw(lo) <= model.sram_power_mw(hi) + 1e-12);
        prop_assert!(model.sram_power_mw(1.0) <= 62.653 + 1e-9);
        prop_assert!(model.sram_power_mw(0.0) >= 0.0);
    }

    #[test]
    fn transitions_bigger_steps_cost_more(_x in 0u8..1) {
        let t = TransitionModel::prototype_island();
        let rest_to_normal = t.energy_nj(DvfsLevel::Rest, DvfsLevel::Normal);
        let relax_to_normal = t.energy_nj(DvfsLevel::Relax, DvfsLevel::Normal);
        let gated_to_normal = t.energy_nj(DvfsLevel::PowerGated, DvfsLevel::Normal);
        prop_assert!(gated_to_normal >= rest_to_normal);
        prop_assert!(rest_to_normal >= relax_to_normal);
        prop_assert!(t.latency_ns(DvfsLevel::PowerGated, DvfsLevel::Normal)
            > t.latency_ns(DvfsLevel::Relax, DvfsLevel::Normal));
    }
}
