//! Analytical power, energy, area, and timing model for the ICED CGRA.
//!
//! The paper obtains power/area from a placed-and-routed 6×6 design in the
//! ASAP7 predictive PDK and SRAM numbers from CACTI 6.5 (§V-A); the
//! evaluation then combines those constants with per-tile activity from the
//! cycle-level simulation (Equations 2–4). This crate embeds the published
//! post-layout constants and implements those equations, so the benchmark
//! harness reproduces the figures the same way the paper does — cycle counts
//! and activities in, milliwatts out.
//!
//! Published anchors (paper §V-A):
//!
//! * 6×6 array without SRAM: 6.63 mm², 113.95 mW @ 0.7 V / 434 MHz;
//! * V/F levels: normal 0.7 V/434 MHz, relax 0.5 V/217 MHz,
//!   rest 0.42 V/108.5 MHz, plus power-gating;
//! * per-tile DVFS controller overhead: > 30 % of a tile (UE-CGRA);
//! * SRAM (32 KB, 8 banks, 22 nm CACTI): 0.559 mm², up to 62.653 mW.
//!
//! # Example
//!
//! ```
//! use iced_arch::DvfsLevel;
//! use iced_power::PowerModel;
//!
//! let model = PowerModel::asap7();
//! let busy = model.tile_power_mw(DvfsLevel::Normal, 1.0);
//! let rest = model.tile_power_mw(DvfsLevel::Rest, 1.0);
//! assert!(rest < 0.25 * busy); // V² scaling beats the 4x frequency drop alone
//! assert_eq!(model.tile_power_mw(DvfsLevel::PowerGated, 0.0), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod model;
mod transition;
mod vf;

pub use area::{AreaModel, Fig8Breakdown};
pub use model::{EnergyReport, PowerModel};
pub use transition::TransitionModel;
pub use vf::VfPoint;
