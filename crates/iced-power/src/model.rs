//! Power and energy model (Equations 2–4 of the paper).

use iced_arch::DvfsLevel;

use crate::vf::VfPoint;

/// Power model of one ICED CGRA instance, calibrated against the paper's
/// ASAP7 post-layout numbers.
///
/// Per-tile power at voltage `V`, frequency `f`, and FU/crossbar activity
/// `a ∈ [0, 1]` (measured in the tile's own clock domain) follows
/// Equation (2):
///
/// ```text
/// P(tile) = C·V²·f·(clk + (1 − clk)·a)  +  P_static(V)
/// ```
///
/// where `clk` is the clock-tree share of dynamic power — an un-gated tile
/// keeps toggling its clock network even when idle, which is precisely the
/// waste DVFS and power-gating attack. `P_static(V)` scales quadratically
/// with voltage (a standard near-threshold leakage fit); a power-gated tile
/// consumes nothing. The effective capacitance `C` is calibrated so that a
/// fully-active 6×6 array at nominal V/F draws the published 113.95 mW.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    tile_dynamic_nominal_mw: f64,
    tile_static_nominal_mw: f64,
    clock_tree_fraction: f64,
    controller_power_mw: f64,
    sram_max_power_mw: f64,
    sram_static_fraction: f64,
}

/// Published average power of the 6×6 array (no SRAM) at nominal V/F.
pub const ARRAY_NOMINAL_POWER_MW: f64 = 113.95;
/// Tiles in the published layout.
pub const ARRAY_TILE_COUNT: f64 = 36.0;
/// Peak power of the 32 KB / 8-bank SRAM (CACTI 6.5, 22 nm).
pub const SRAM_MAX_POWER_MW: f64 = 62.653;

impl PowerModel {
    /// The calibration used throughout the evaluation: ASAP7 post-layout
    /// anchors, a 95 % dynamic / 5 % static split at nominal (FinFET
    /// leakage is small), a 15 % residual clock share when idle (clock
    /// gating leaves the local clock spine toggling — this sets how much a
    /// power-gating-only design can still save, the paper's 1.12×), a 20 %
    /// SRAM static share (selected by the calibration sweep in
    /// `iced-bench/src/bin/calibrate.rs` against the paper's Fig. 11
    /// ratios), and a DVFS controller (LDO + ADPLL + control unit)
    /// costing 30 % of a nominal tile (UE-CGRA's published overhead).
    pub fn asap7() -> Self {
        PowerModel::with_fractions(0.05, 0.15, 0.20)
    }

    /// A custom calibration: `static_fraction` of nominal tile power is
    /// leakage, `clock_fraction` of dynamic power persists when idle, and
    /// `sram_static_fraction` of SRAM peak power persists at zero activity.
    /// Used by calibration sweeps and sensitivity studies; the evaluation
    /// uses [`PowerModel::asap7`].
    pub fn with_fractions(
        static_fraction: f64,
        clock_fraction: f64,
        sram_static_fraction: f64,
    ) -> Self {
        let tile_nominal = ARRAY_NOMINAL_POWER_MW / ARRAY_TILE_COUNT;
        let sf = static_fraction.clamp(0.0, 1.0);
        PowerModel {
            tile_dynamic_nominal_mw: (1.0 - sf) * tile_nominal,
            tile_static_nominal_mw: sf * tile_nominal,
            clock_tree_fraction: clock_fraction.clamp(0.0, 1.0),
            controller_power_mw: 0.30 * tile_nominal,
            sram_max_power_mw: SRAM_MAX_POWER_MW,
            sram_static_fraction: sram_static_fraction.clamp(0.0, 1.0),
        }
    }

    /// Average power of one tile at `level` with activity `activity`
    /// (Equation 2). Activity is clamped to `[0, 1]`.
    pub fn tile_power_mw(&self, level: DvfsLevel, activity: f64) -> f64 {
        let Some(vf) = VfPoint::of(level) else {
            return 0.0; // power-gated
        };
        let a = activity.clamp(0.0, 1.0);
        let nominal = VfPoint::nominal();
        let v_ratio = vf.voltage_v() / nominal.voltage_v();
        let f_ratio = vf.freq_mhz() / nominal.freq_mhz();
        let dynamic = self.tile_dynamic_nominal_mw
            * v_ratio.powi(2)
            * f_ratio
            * (self.clock_tree_fraction + (1.0 - self.clock_tree_fraction) * a);
        let static_p = self.tile_static_nominal_mw * v_ratio.powi(2);
        dynamic + static_p
    }

    /// Power of `n` DVFS controllers (one per island; `n = tiles` for the
    /// per-tile comparator, `0` for the no-DVFS baseline). Part of
    /// `P_non_tile` in Equation (3).
    pub fn controllers_power_mw(&self, n: usize) -> f64 {
        self.controller_power_mw * n as f64
    }

    /// SRAM power at access activity `a ∈ [0, 1]` (Equation 3's
    /// `P_SRAM`): static share plus activity-scaled dynamic share.
    pub fn sram_power_mw(&self, activity: f64) -> f64 {
        let a = activity.clamp(0.0, 1.0);
        self.sram_max_power_mw * (self.sram_static_fraction + (1.0 - self.sram_static_fraction) * a)
    }

    /// Nominal power of one tile at full activity (calibration anchor).
    pub fn tile_nominal_mw(&self) -> f64 {
        self.tile_dynamic_nominal_mw + self.tile_static_nominal_mw
    }

    /// Power of a single DVFS controller.
    pub fn controller_power_each_mw(&self) -> f64 {
        self.controller_power_mw
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::asap7()
    }
}

/// Total power/energy accounting for one execution (Equation 4).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyReport {
    /// Σ tile power (mW).
    pub tiles_mw: f64,
    /// DVFS controller power (mW).
    pub controllers_mw: f64,
    /// SRAM power (mW).
    pub sram_mw: f64,
    /// Execution time (µs).
    pub exec_time_us: f64,
}

impl EnergyReport {
    /// Total power in mW (Equation 3 + tile sum).
    pub fn total_power_mw(&self) -> f64 {
        self.tiles_mw + self.controllers_mw + self.sram_mw
    }

    /// Total energy in nJ (Equation 4): `P × ExecTime`.
    pub fn energy_nj(&self) -> f64 {
        self.total_power_mw() * self.exec_time_us
    }

    /// Energy efficiency proxy: work-per-energy, with work normalised out by
    /// the caller; equals `1 / energy` scaled to per-µJ.
    pub fn perf_per_watt(&self, work_units: f64) -> f64 {
        let e = self.energy_nj();
        if e <= 0.0 {
            return 0.0;
        }
        work_units / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_array_matches_published_nominal_power() {
        let m = PowerModel::asap7();
        let p = ARRAY_TILE_COUNT * m.tile_power_mw(DvfsLevel::Normal, 1.0);
        assert!((p - ARRAY_NOMINAL_POWER_MW).abs() < 1e-9);
    }

    #[test]
    fn levels_are_strictly_cheaper_when_slower() {
        let m = PowerModel::asap7();
        for a in [0.0, 0.5, 1.0] {
            let n = m.tile_power_mw(DvfsLevel::Normal, a);
            let rl = m.tile_power_mw(DvfsLevel::Relax, a);
            let rs = m.tile_power_mw(DvfsLevel::Rest, a);
            assert!(n > rl && rl > rs && rs > 0.0, "activity {a}");
        }
        assert_eq!(m.tile_power_mw(DvfsLevel::PowerGated, 1.0), 0.0);
    }

    #[test]
    fn idle_tile_burns_residual_clock_and_leakage_only() {
        let m = PowerModel::asap7();
        let idle = m.tile_power_mw(DvfsLevel::Normal, 0.0);
        let busy = m.tile_power_mw(DvfsLevel::Normal, 1.0);
        // Clock-gated idle tiles are leakage-dominated: a small but
        // non-zero fraction of busy power.
        assert!(idle > 0.05 * busy);
        assert!(idle < 0.3 * busy);
    }

    #[test]
    fn activity_is_clamped() {
        let m = PowerModel::asap7();
        assert_eq!(
            m.tile_power_mw(DvfsLevel::Normal, 2.0),
            m.tile_power_mw(DvfsLevel::Normal, 1.0)
        );
        assert_eq!(
            m.tile_power_mw(DvfsLevel::Normal, -1.0),
            m.tile_power_mw(DvfsLevel::Normal, 0.0)
        );
    }

    #[test]
    fn per_tile_controller_overhead_is_30_percent() {
        let m = PowerModel::asap7();
        let per_tile_over = m.controllers_power_mw(36);
        assert!((per_tile_over / ARRAY_NOMINAL_POWER_MW - 0.30).abs() < 1e-9);
        // Island controllers (9) cost a quarter of that.
        assert!((m.controllers_power_mw(9) * 4.0 - per_tile_over).abs() < 1e-9);
    }

    #[test]
    fn sram_power_spans_static_to_max() {
        let m = PowerModel::asap7();
        assert!(m.sram_power_mw(0.0) > 0.0);
        assert!((m.sram_power_mw(1.0) - SRAM_MAX_POWER_MW).abs() < 1e-9);
        assert!(m.sram_power_mw(0.5) < SRAM_MAX_POWER_MW);
    }

    #[test]
    fn energy_is_power_times_time() {
        let r = EnergyReport {
            tiles_mw: 100.0,
            controllers_mw: 10.0,
            sram_mw: 40.0,
            exec_time_us: 2.0,
        };
        assert!((r.total_power_mw() - 150.0).abs() < 1e-12);
        assert!((r.energy_nj() - 300.0).abs() < 1e-12);
        assert!((r.perf_per_watt(600.0) - 2.0).abs() < 1e-12);
    }
}
