//! Voltage/frequency operating points.

use iced_arch::DvfsLevel;

/// One voltage/frequency operating point of a DVFS island.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfPoint {
    voltage_v: f64,
    freq_mhz: f64,
}

impl VfPoint {
    /// The paper's operating point for `level`, or `None` when power-gated.
    ///
    /// The points are co-designed with the compiler so that Equation (1)
    /// (`f_normal = 2·f_relax = 4·f_rest`) holds exactly.
    pub fn of(level: DvfsLevel) -> Option<VfPoint> {
        match level {
            DvfsLevel::Normal => Some(VfPoint {
                voltage_v: 0.70,
                freq_mhz: 434.0,
            }),
            DvfsLevel::Relax => Some(VfPoint {
                voltage_v: 0.50,
                freq_mhz: 217.0,
            }),
            DvfsLevel::Rest => Some(VfPoint {
                voltage_v: 0.42,
                freq_mhz: 108.5,
            }),
            DvfsLevel::PowerGated => None,
        }
    }

    /// Supply voltage in volts.
    pub fn voltage_v(self) -> f64 {
        self.voltage_v
    }

    /// Clock frequency in MHz.
    pub fn freq_mhz(self) -> f64 {
        self.freq_mhz
    }

    /// The nominal operating point (normal level).
    pub fn nominal() -> VfPoint {
        VfPoint::of(DvfsLevel::Normal).expect("normal is never gated")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_match_paper() {
        let n = VfPoint::of(DvfsLevel::Normal).unwrap();
        let rl = VfPoint::of(DvfsLevel::Relax).unwrap();
        let rs = VfPoint::of(DvfsLevel::Rest).unwrap();
        assert_eq!((n.voltage_v(), n.freq_mhz()), (0.70, 434.0));
        assert_eq!((rl.voltage_v(), rl.freq_mhz()), (0.50, 217.0));
        assert_eq!((rs.voltage_v(), rs.freq_mhz()), (0.42, 108.5));
        assert!(VfPoint::of(DvfsLevel::PowerGated).is_none());
    }

    #[test]
    fn equation_one_holds_on_frequencies() {
        let f = |l| VfPoint::of(l).unwrap().freq_mhz();
        assert_eq!(f(DvfsLevel::Normal), 2.0 * f(DvfsLevel::Relax));
        assert_eq!(f(DvfsLevel::Normal), 4.0 * f(DvfsLevel::Rest));
    }
}
