//! DVFS transition costs.
//!
//! ICED's islands switch levels at runtime through an on-chip LDO and an
//! all-digital PLL (paper §III-A); the paper emphasises that the adopted
//! regulator is "capable of ns-scale fine-grained on-chip DVFS". A level
//! switch is not free, though: the island's supply rail and decoupling
//! capacitance must be charged or discharged across the voltage step, and
//! the ADPLL needs a relock interval. This module models both so the
//! streaming simulator can charge every controller decision.
//!
//! The model is first-order and documented rather than fitted: transition
//! energy is `C_island · |V₁² − V₂²|` with the island capacitance derived
//! from the calibrated dynamic power (`P = C·V²·f` at nominal), and the
//! latency is a fixed regulator settle time per step, defaulting to 100 ns
//! (ns-scale, as published) plus the power-gate wake penalty when leaving
//! the gated state.

use iced_arch::DvfsLevel;

use crate::vf::VfPoint;

/// First-order DVFS transition cost model for one island.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionModel {
    island_capacitance_nf: f64,
    settle_ns_per_step: f64,
    wake_ns: f64,
}

impl TransitionModel {
    /// Model for a 2×2-tile island of the calibrated prototype.
    ///
    /// Island switched capacitance follows from the calibrated tile
    /// dynamic power: `C = P_dyn / (V² · f)` per tile, four tiles per
    /// island, plus an equal share of rail decoupling (factor 2).
    pub fn prototype_island() -> TransitionModel {
        let nominal = VfPoint::nominal();
        let tile_dyn_mw = 0.95 * 113.95 / 36.0;
        // C in nF: P[mW] = C[nF] * V^2 * f[MHz] * 1e-3  =>  C = P/(V^2 f) * 1e3
        let c_tile_nf = tile_dyn_mw / (nominal.voltage_v().powi(2) * nominal.freq_mhz()) * 1e3;
        TransitionModel {
            island_capacitance_nf: 2.0 * 4.0 * c_tile_nf,
            settle_ns_per_step: 100.0,
            wake_ns: 500.0,
        }
    }

    /// Energy to move one island from `from` to `to`, in nJ.
    ///
    /// Rail energy is `C · |V₁² − V₂²|`; entering the power-gated state is
    /// free (the rail discharges), leaving it charges from zero.
    pub fn energy_nj(&self, from: DvfsLevel, to: DvfsLevel) -> f64 {
        let v = |l: DvfsLevel| VfPoint::of(l).map_or(0.0, |p| p.voltage_v());
        let (v1, v2) = (v(from), v(to));
        if v2 <= v1 {
            return 0.0; // stepping down recovers no energy but costs none
        }
        self.island_capacitance_nf * (v2 * v2 - v1 * v1)
    }

    /// Settle latency of the transition, in ns.
    pub fn latency_ns(&self, from: DvfsLevel, to: DvfsLevel) -> f64 {
        if from == to {
            return 0.0;
        }
        let steps = {
            let idx = |l: DvfsLevel| match l {
                DvfsLevel::PowerGated => 0i32,
                DvfsLevel::Rest => 1,
                DvfsLevel::Relax => 2,
                DvfsLevel::Normal => 3,
            };
            (idx(from) - idx(to)).unsigned_abs() as f64
        };
        let wake = if from == DvfsLevel::PowerGated {
            self.wake_ns
        } else {
            0.0
        };
        wake + steps * self.settle_ns_per_step
    }
}

impl Default for TransitionModel {
    fn default() -> Self {
        TransitionModel::prototype_island()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepping_up_costs_energy_down_does_not() {
        let m = TransitionModel::prototype_island();
        let up = m.energy_nj(DvfsLevel::Rest, DvfsLevel::Normal);
        assert!(up > 0.0);
        assert_eq!(m.energy_nj(DvfsLevel::Normal, DvfsLevel::Rest), 0.0);
        // Bigger voltage step, bigger energy.
        let small = m.energy_nj(DvfsLevel::Relax, DvfsLevel::Normal);
        assert!(up > small);
    }

    #[test]
    fn latency_is_ns_scale_and_wake_is_heavier() {
        let m = TransitionModel::prototype_island();
        assert_eq!(m.latency_ns(DvfsLevel::Normal, DvfsLevel::Normal), 0.0);
        let step = m.latency_ns(DvfsLevel::Relax, DvfsLevel::Normal);
        assert!(step > 0.0 && step < 1000.0, "ns-scale: {step}");
        let wake = m.latency_ns(DvfsLevel::PowerGated, DvfsLevel::Rest);
        assert!(wake > step);
    }

    #[test]
    fn transition_energy_is_small_versus_a_window() {
        // Sanity: one switch costs far less than the island burns in a
        // 10-input window (ms scale), justifying the paper's "trivial
        // overhead" claim for the controller.
        let m = TransitionModel::prototype_island();
        let e_switch = m.energy_nj(DvfsLevel::Rest, DvfsLevel::Normal);
        // One island at nominal for 1 ms ≈ 4 tiles × 3.165 mW × 1000 µs.
        let e_window = 4.0 * 3.165 * 1000.0;
        assert!(e_switch < e_window / 100.0, "{e_switch} vs {e_window}");
    }
}
