//! Area model and the Figure 8 breakdown.

use iced_arch::CgraConfig;

/// Published area of the 6×6 array without SRAM macros (mm²).
pub const ARRAY_AREA_MM2: f64 = 6.63;
/// Published SRAM area (32 KB / 8 banks, CACTI 6.5 @ 22 nm), mm².
pub const SRAM_AREA_MM2: f64 = 0.559;

/// Area model calibrated to the published 6×6 layout.
///
/// The published 6.63 mm² covers 36 tiles plus 9 island DVFS units
/// (LDO + ADPLL + control). With the per-tile DVFS overhead pinned at 30 %
/// of a tile (the paper quotes "more than 30 %" for UE-CGRA's controller),
/// solving `36·A_tile + 9·0.3·A_tile = 6.63` gives the tile area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    tile_mm2: f64,
    controller_mm2: f64,
    sram_mm2: f64,
}

impl AreaModel {
    /// The ASAP7 calibration described above.
    pub fn asap7() -> Self {
        let tile = ARRAY_AREA_MM2 / (36.0 + 9.0 * 0.30);
        AreaModel {
            tile_mm2: tile,
            controller_mm2: 0.30 * tile,
            sram_mm2: SRAM_AREA_MM2,
        }
    }

    /// Area of one tile (FU + crossbar + registers + config memory), mm².
    pub fn tile_mm2(&self) -> f64 {
        self.tile_mm2
    }

    /// Area of one DVFS unit (LDO + ADPLL + control), mm².
    pub fn controller_mm2(&self) -> f64 {
        self.controller_mm2
    }

    /// SRAM macro area, mm².
    pub fn sram_mm2(&self) -> f64 {
        self.sram_mm2
    }

    /// Full-chip breakdown for an arbitrary configuration (Figure 8 is the
    /// 6×6 / 2×2-island instance).
    pub fn breakdown(&self, config: &CgraConfig) -> Fig8Breakdown {
        let tiles = config.tile_count() as f64 * self.tile_mm2;
        let dvfs = config.island_count() as f64 * self.controller_mm2;
        Fig8Breakdown {
            tiles_mm2: tiles,
            dvfs_mm2: dvfs,
            sram_mm2: self.sram_mm2,
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::asap7()
    }
}

/// Area breakdown of one ICED instance (paper Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Breakdown {
    /// Total tile area (mm²).
    pub tiles_mm2: f64,
    /// Total DVFS-support area: LDOs + ADPLLs + control units (mm²).
    pub dvfs_mm2: f64,
    /// SRAM macro area (mm²).
    pub sram_mm2: f64,
}

impl Fig8Breakdown {
    /// Array area without SRAM macros (the paper's headline 6.63 mm²).
    pub fn array_mm2(&self) -> f64 {
        self.tiles_mm2 + self.dvfs_mm2
    }

    /// Total chip area including SRAM.
    pub fn total_mm2(&self) -> f64 {
        self.array_mm2() + self.sram_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_breakdown_matches_published_total() {
        let b = AreaModel::asap7().breakdown(&CgraConfig::iced_prototype());
        assert!((b.array_mm2() - ARRAY_AREA_MM2).abs() < 1e-9);
        assert!((b.sram_mm2 - SRAM_AREA_MM2).abs() < 1e-12);
        assert!(b.total_mm2() > b.array_mm2());
    }

    #[test]
    fn per_tile_dvfs_costs_more_area() {
        let m = AreaModel::asap7();
        let island = m.breakdown(&CgraConfig::iced_prototype());
        let per_tile = m.breakdown(&CgraConfig::square_per_tile(6).unwrap());
        assert!(per_tile.dvfs_mm2 > island.dvfs_mm2 * 3.9);
        // UE-CGRA-style overhead: >30% of the tile area.
        assert!(per_tile.dvfs_mm2 / per_tile.tiles_mm2 >= 0.30);
    }
}
