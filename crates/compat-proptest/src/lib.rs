//! Offline drop-in subset of `proptest`.
//!
//! crates.io is unreachable in this build environment, so this
//! workspace-local crate supplies the exact API surface the workspace's
//! property tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`,
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_filter_map`,
//! range and tuple strategies, `collection::vec`, and `any::<T>()`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! directly with the assertion message. Generation is deterministic per
//! test (seeded from the test's module path), so failures reproduce.

#![forbid(unsafe_code)]

pub mod test_runner {
    /// Execution knobs (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Deterministic per-test entropy source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from a test's name, so each test draws a
        /// stable but distinct sequence across runs.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps through `f`, retrying when it returns `None`. `whence`
        /// names the rejection reason in the give-up panic.
        fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map gave up after 10000 rejections: {}",
                self.whence
            );
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    // Wrap-safe for full-width ranges: span+1 may overflow
                    // only when the range covers every value, where any
                    // draw is in range.
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
            lo + unit * (hi - lo)
        }
    }

    /// Always produces a clone of one value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the whole domain of `T`.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (subset of `proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assertion inside a property test (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..=4, f in 0.25f64..=0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.25..=0.75).contains(&f));
        }

        #[test]
        fn combinators_compose(v in collection::vec((0usize..5, any::<bool>()), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn filter_map_retries(x in (0u32..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x))) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = (0u64..1000, 0.0f64..=1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = TestRng::for_test("t");
        let mut r2 = TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
