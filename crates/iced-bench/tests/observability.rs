//! Acceptance e2e for the service observability layer: a live daemon with
//! the JSONL event log enabled serves mixed cold/warm/erroring traffic,
//! and every response's request id must be found again in the event log
//! with the matching verb and outcome; the `stats` verb must report
//! ordered quantiles whose counts agree with the lifetime histogram; and
//! `svc_load` must emit client-side percentiles into `BENCH_service.json`.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use iced_service::{Server, ServiceConfig};

/// A line-oriented test client (no retries: every envelope is observed).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
        let mut out = String::new();
        let n = self.reader.read_line(&mut out).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        out.trim_end().to_string()
    }
}

/// The `"req":"cN-M"` token of an envelope, quotes included so later
/// substring matches are exact (`"c1-3"` never matches `"c1-30"`).
fn req_token(resp: &str) -> String {
    let at = resp
        .find("\"req\":\"")
        .unwrap_or_else(|| panic!("no req token in {resp}"));
    let rest = &resp[at + "\"req\":\"".len()..];
    let end = rest.find('"').expect("terminated token");
    format!("\"{}\"", &rest[..end])
}

/// Extracts `"field":<u64>` from a flat JSON rendering.
fn json_u64(s: &str, field: &str) -> u64 {
    let tag = format!("\"{field}\":");
    let at = s.find(&tag).unwrap_or_else(|| panic!("no {field} in {s}"));
    s[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("digits after field")
}

/// The flat sub-object rendered for `inner` within the `outer` section.
/// Summaries hold no nested objects, so the next `}` closes them.
fn section<'a>(s: &'a str, outer: &str, inner: &str) -> &'a str {
    let o = s
        .find(&format!("\"{outer}\":"))
        .unwrap_or_else(|| panic!("no {outer} section in {s}"));
    let tag = format!("\"{inner}\":{{");
    let i = s[o..]
        .find(&tag)
        .unwrap_or_else(|| panic!("no {inner} inside {outer}: {s}"));
    let start = o + i + tag.len() - 1;
    let end = s[start..].find('}').expect("closed object") + start;
    &s[start..=end]
}

#[test]
fn request_ids_correlate_responses_with_the_event_log() {
    let log = std::env::temp_dir().join(format!("iced-svc-obs-e2e-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let server = Server::start(ServiceConfig {
        threads: 2,
        queue_cap: 16,
        log_path: Some(log.clone()),
        ..ServiceConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let mut c = Client::connect(addr);

    // Mixed traffic. Each entry records the expected event-log evidence:
    // (req token, verb, event, outcome-or-code fragment).
    let mut expect: Vec<(String, &'static str, &'static str, &'static str)> = Vec::new();

    let cold = c.round_trip(r#"{"id":1,"verb":"compile","kernel":"fir"}"#);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    expect.push((
        req_token(&cold),
        "compile",
        "request_finish",
        "\"outcome\":\"ok\"",
    ));

    let cold2 = c.round_trip(r#"{"id":2,"verb":"compile","kernel":"latnrm"}"#);
    assert!(cold2.contains("\"cached\":false"), "{cold2}");
    expect.push((
        req_token(&cold2),
        "compile",
        "request_finish",
        "\"outcome\":\"ok\"",
    ));

    let warm = c.round_trip(r#"{"id":3,"verb":"compile","kernel":"fir"}"#);
    assert!(warm.contains("\"cached\":true"), "{warm}");
    expect.push((
        req_token(&warm),
        "compile",
        "request_finish",
        "\"outcome\":\"cached\"",
    ));

    let sim =
        c.round_trip(r#"{"id":4,"verb":"simulate","kernel":"fir","iterations":500,"seed":3}"#);
    assert!(sim.contains("\"ok\":true"), "{sim}");
    expect.push((
        req_token(&sim),
        "simulate",
        "request_finish",
        "\"outcome\":\"ok\"",
    ));

    let health = c.round_trip(r#"{"id":5,"verb":"healthz"}"#);
    assert!(health.contains("\"ok\":true"), "{health}");
    expect.push((
        req_token(&health),
        "healthz",
        "request_finish",
        "\"outcome\":\"ok\"",
    ));

    // Reader-level error: the verb parsed but the kernel does not exist.
    let bad = c.round_trip(r#"{"id":6,"verb":"compile","kernel":"no-such-kernel"}"#);
    assert!(bad.contains("\"unknown_kernel\""), "{bad}");
    expect.push((
        req_token(&bad),
        "compile",
        "request_error",
        "\"code\":\"unknown_kernel\"",
    ));

    // Worker-level error: an impossible deadline fails inside the mapper.
    let dead = c.round_trip(
        r#"{"id":7,"verb":"compile","kernel":"fft","unroll":2,"strategy":"baseline","deadline_ms":0}"#,
    );
    assert!(dead.contains("\"deadline_exceeded\""), "{dead}");
    expect.push((
        req_token(&dead),
        "compile",
        "request_error",
        "\"code\":\"deadline_exceeded\"",
    ));

    // Quantile view: p50 ≤ p95 ≤ p99 ≤ max, and the lifetime count agrees
    // with the log2 bucket sum the `metrics` verb exposes.
    let stats = c.round_trip(r#"{"id":8,"verb":"stats"}"#);
    assert!(stats.contains("\"ok\":true"), "{stats}");
    expect.push((
        req_token(&stats),
        "stats",
        "request_finish",
        "\"outcome\":\"ok\"",
    ));
    let life = section(&stats, "lifetime", "compile");
    let (p50, p95, p99) = (
        json_u64(life, "p50_us"),
        json_u64(life, "p95_us"),
        json_u64(life, "p99_us"),
    );
    assert!(p50 <= p95 && p95 <= p99, "quantiles out of order: {life}");
    assert!(p99 <= json_u64(life, "max_us"), "p99 above max: {life}");
    assert!(p99 > 0, "compiles ran, p99 must be non-zero: {life}");

    let metrics = c.round_trip(r#"{"id":9,"verb":"metrics"}"#);
    let hist = section(&metrics, "latency", "compile");
    let buckets_tag = "\"log2_us_buckets\":[";
    let b0 = hist
        .find(buckets_tag)
        .unwrap_or_else(|| panic!("no buckets in {hist}"))
        + buckets_tag.len();
    let b1 = hist[b0..].find(']').expect("closed array") + b0;
    let bucket_sum: u64 = hist[b0..b1]
        .split(',')
        .filter(|t| !t.is_empty())
        .map(|t| t.parse::<u64>().expect("bucket count"))
        .sum();
    let life_count = json_u64(life, "count");
    assert_eq!(
        bucket_sum, life_count,
        "stats lifetime count must equal the histogram bucket sum"
    );
    // cold + cold2 + warm + dead all landed on the compile histogram.
    assert_eq!(life_count, 4, "{life}");

    server.shutdown();
    server.wait(); // flushes and closes the event log

    // (a) Every response's request id shows up in the log with the
    // matching verb and outcome.
    let events = std::fs::read_to_string(&log).expect("event log written");
    for (req, verb, event, detail) in &expect {
        let tag = format!("\"req\":{req}");
        let line = events
            .lines()
            .find(|l| l.contains(&format!("\"event\":\"{event}\"")) && l.contains(&tag))
            .unwrap_or_else(|| panic!("no {event} with req {req} in log:\n{events}"));
        assert!(
            line.contains(&format!("\"verb\":\"{verb}\"")),
            "wrong verb for {req}: {line}"
        );
        assert!(line.contains(detail), "missing {detail} for {req}: {line}");
    }
    // Lifecycle events bracket the run.
    assert!(events.contains("\"event\":\"server_start\""), "{events}");
    assert!(events.contains("\"event\":\"server_stop\""), "{events}");
    let _ = std::fs::remove_file(&log);
}

#[test]
fn svc_load_reports_client_side_percentiles() {
    let out = std::env::temp_dir().join(format!("BENCH_service-obs-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_svc_load"))
        .args(["--tiny", "--out", out.to_str().expect("utf8 path")])
        .status()
        .expect("run svc_load");
    assert!(status.success(), "svc_load failed: {status}");

    let report = std::fs::read_to_string(&out).expect("report written");
    // (c) Both latency phases carry client-side percentile fields.
    for phase in ["cold", "warm"] {
        let line = report
            .lines()
            .find(|l| l.contains(&format!("\"phase\": \"{phase}\"")))
            .unwrap_or_else(|| panic!("no {phase} phase in report:\n{report}"));
        for field in ["\"p50_us\":", "\"p95_us\":", "\"p99_us\":"] {
            assert!(line.contains(field), "{phase} lacks {field}: {line}");
        }
    }
    // The server-side expositions ride along in the same report.
    assert!(report.contains("\"server_metrics\":"), "{report}");
    assert!(report.contains("\"server_stats\":"), "{report}");
    assert!(report.contains("\"server_prometheus\":"), "{report}");
    assert!(report.contains("iced_svc_requests_total"), "{report}");
    let _ = std::fs::remove_file(&out);
}
