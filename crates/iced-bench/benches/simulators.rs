//! Criterion benches for the simulation layer: schedule validation,
//! activity analysis, functional interpretation/replay, and energy
//! accounting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iced::kernels::{Kernel, UnrollFactor};
use iced::sim::{functional, validate_schedule, FabricStats};
use iced::{Strategy, Toolchain};
use std::hint::black_box;
use std::time::Duration;

fn bench_validation(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let mut g = c.benchmark_group("validate");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    for k in [Kernel::Fir, Kernel::Fft] {
        let dfg = k.dfg(UnrollFactor::X1);
        let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
        g.bench_with_input(
            BenchmarkId::from_parameter(k.name()),
            &(dfg, compiled),
            |b, (dfg, compiled)| {
                b.iter(|| validate_schedule(black_box(dfg), compiled.mapping()).expect("valid"))
            },
        );
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let dfg = Kernel::Dtw.dfg(UnrollFactor::X1);
    let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
    c.bench_function("fabric_stats", |b| {
        b.iter(|| FabricStats::analyze(black_box(compiled.mapping())))
    });
}

fn bench_functional(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let mut g = c.benchmark_group("functional");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let dfg = Kernel::Gemm.dfg(UnrollFactor::X1);
    let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
    g.bench_function("interpret_256", |b| {
        b.iter(|| functional::interpret(black_box(&dfg), 256, 42))
    });
    g.bench_function("replay_256", |b| {
        b.iter(|| {
            functional::replay(black_box(&dfg), compiled.mapping(), 256, 42, 128).expect("legal")
        })
    });
    g.finish();
}

fn bench_energy(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let dfg = Kernel::Mvt.dfg(UnrollFactor::X1);
    let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
    c.bench_function("energy_accounting", |b| {
        b.iter(|| black_box(&compiled).energy(4096))
    });
}

fn bench_engine(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let mut g = c.benchmark_group("engine");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for k in [Kernel::Fir, Kernel::Fft] {
        let dfg = k.dfg(UnrollFactor::X1);
        let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
        g.bench_function(&format!("cycle_step_64_{}", k.name()), |b| {
            b.iter(|| {
                iced::sim::engine::run(black_box(&dfg), compiled.mapping(), 64, 1)
                    .expect("legal schedule")
            })
        });
    }
    g.finish();
}

fn bench_bitstream(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let dfg = Kernel::Dtw.dfg(UnrollFactor::X1);
    let compiled = tc.compile(&dfg, Strategy::IcedIslands).expect("maps");
    c.bench_function("bitstream_assemble", |b| {
        b.iter(|| iced::mapper::Bitstream::assemble(black_box(&dfg), compiled.mapping()))
    });
}

criterion_group!(
    benches,
    bench_validation,
    bench_stats,
    bench_functional,
    bench_energy,
    bench_engine,
    bench_bitstream
);
criterion_main!(benches);
