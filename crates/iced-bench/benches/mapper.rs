//! Criterion benches for the mapping toolchain — the paper's compile-time
//! claim is "optimal solutions within tens of seconds"; this measures the
//! baseline and DVFS-aware mappers per kernel and per fabric size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iced::arch::CgraConfig;
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::{map_baseline, map_dvfs_aware};
use std::hint::black_box;
use std::time::Duration;

fn bench_kernels(c: &mut Criterion) {
    let cfg = CgraConfig::iced_prototype();
    let mut g = c.benchmark_group("map_6x6");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for k in [Kernel::Fir, Kernel::Spmv, Kernel::Fft, Kernel::Gemm] {
        let dfg = k.dfg(UnrollFactor::X1);
        g.bench_with_input(BenchmarkId::new("baseline", k.name()), &dfg, |b, dfg| {
            b.iter(|| map_baseline(black_box(dfg), &cfg).expect("maps"))
        });
        g.bench_with_input(BenchmarkId::new("iced", k.name()), &dfg, |b, dfg| {
            b.iter(|| map_dvfs_aware(black_box(dfg), &cfg).expect("maps"))
        });
    }
    g.finish();
}

fn bench_sizes(c: &mut Criterion) {
    let dfg = Kernel::Conv.dfg(UnrollFactor::X1);
    let mut g = c.benchmark_group("map_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [4usize, 6, 8] {
        let cfg = CgraConfig::square(n).expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| map_dvfs_aware(black_box(&dfg), cfg).expect("maps"))
        });
    }
    g.finish();
}

fn bench_unrolled(c: &mut Criterion) {
    let cfg = CgraConfig::iced_prototype();
    let mut g = c.benchmark_group("map_unrolled");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for k in [Kernel::Fir, Kernel::Gemm] {
        let dfg = k.dfg(UnrollFactor::X2);
        g.bench_with_input(BenchmarkId::from_parameter(k.name()), &dfg, |b, dfg| {
            b.iter(|| map_dvfs_aware(black_box(dfg), &cfg).expect("maps"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_sizes, bench_unrolled);
criterion_main!(benches);
