//! Criterion benches for the compiler analyses: recurrence-cycle
//! enumeration / RecMII, Algorithm-1 labeling, unrolling, and MRRG
//! construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iced::arch::{CgraConfig, Mrrg};
use iced::dfg::recurrence;
use iced::dfg::transform::{unroll, UnrollOptions};
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::label_dvfs_levels;
use std::hint::black_box;
use std::time::Duration;

fn bench_recurrence(c: &mut Criterion) {
    let mut g = c.benchmark_group("recurrence");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for k in [Kernel::Fir, Kernel::Fft, Kernel::LuSolver1] {
        let dfg = k.dfg(UnrollFactor::X2);
        g.bench_with_input(BenchmarkId::new("rec_mii", k.name()), &dfg, |b, dfg| {
            b.iter(|| recurrence::rec_mii(black_box(dfg)))
        });
        g.bench_with_input(BenchmarkId::new("cycles", k.name()), &dfg, |b, dfg| {
            b.iter(|| recurrence::enumerate_cycles(black_box(dfg)))
        });
    }
    g.finish();
}

fn bench_labeling(c: &mut Criterion) {
    let cfg = CgraConfig::iced_prototype();
    let mut g = c.benchmark_group("labeling");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for k in [Kernel::Spmv, Kernel::GcnCombRelu] {
        let dfg = k.dfg(UnrollFactor::X1);
        g.bench_with_input(BenchmarkId::from_parameter(k.name()), &dfg, |b, dfg| {
            b.iter(|| label_dvfs_levels(black_box(dfg), &cfg, 4))
        });
    }
    g.finish();
}

fn bench_unroll(c: &mut Criterion) {
    let mut g = c.benchmark_group("unroll");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let dfg = Kernel::Fft.dfg(UnrollFactor::X1);
    for factor in [2u32, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(factor), &factor, |b, &f| {
            b.iter(|| unroll(black_box(&dfg), &UnrollOptions::new(f)).expect("unrolls"))
        });
    }
    g.finish();
}

fn bench_mrrg(c: &mut Criterion) {
    let mut g = c.benchmark_group("mrrg_build");
    g.sample_size(30).measurement_time(Duration::from_secs(2));
    for n in [6usize, 8] {
        let cfg = CgraConfig::square(n).expect("valid");
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| Mrrg::new(black_box(cfg), 8).expect("valid ii"))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_recurrence,
    bench_labeling,
    bench_unroll,
    bench_mrrg
);
criterion_main!(benches);
