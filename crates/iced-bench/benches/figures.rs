//! Criterion benches for the figure-regeneration pipelines themselves —
//! one group per evaluation artifact, so `cargo bench` exercises the code
//! path behind every table and figure (Table I, Figs. 2/4/8/9-12 pipeline
//! on a representative kernel, Fig. 13 streaming on a shortened stream).

use criterion::{criterion_group, criterion_main, Criterion};
use iced::arch::CgraConfig;
use iced::kernels::pipelines::Pipeline;
use iced::kernels::{workloads, Kernel, UnrollFactor};
use iced::power::{AreaModel, PowerModel};
use iced::streaming::{simulate, Partition, RuntimePolicy};
use iced::{Strategy, Toolchain};
use std::hint::black_box;
use std::time::Duration;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_suite_generation", |b| {
        b.iter(|| {
            for k in Kernel::ALL {
                for uf in UnrollFactor::ALL {
                    black_box(k.dfg(uf));
                }
            }
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let cfg = CgraConfig::iced_prototype();
    c.bench_function("fig08_breakdown", |b| {
        b.iter(|| {
            let area = AreaModel::asap7().breakdown(black_box(&cfg));
            let power = PowerModel::asap7().controllers_power_mw(9);
            (area, power)
        })
    });
}

fn bench_fig9_pipeline(c: &mut Criterion) {
    let tc = Toolchain::prototype();
    let dfg = Kernel::Histogram.dfg(UnrollFactor::X1);
    let mut g = c.benchmark_group("fig09_pipeline");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    g.bench_function("three_strategies", |b| {
        b.iter(|| {
            let base = tc
                .compile(black_box(&dfg), Strategy::Baseline)
                .expect("maps");
            let pt = tc
                .compile(black_box(&dfg), Strategy::PerTileDvfs)
                .expect("maps");
            let ic = tc
                .compile(black_box(&dfg), Strategy::IcedIslands)
                .expect("maps");
            (
                base.average_utilization_all_tiles(),
                pt.average_utilization(),
                ic.average_utilization(),
            )
        })
    });
    g.finish();
}

fn bench_fig13_stream(c: &mut Criterion) {
    let cfg = CgraConfig::iced_prototype();
    let model = PowerModel::asap7();
    let pipeline = Pipeline::gcn();
    let partition = Partition::table1(&pipeline, &cfg).expect("partition maps");
    let inputs: Vec<u64> = workloads::enzymes_like(50, 9)
        .iter()
        .map(|g| g.nnz())
        .collect();
    let mut g = c.benchmark_group("fig13_stream");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("gcn_50_inputs_iced", |b| {
        b.iter(|| {
            simulate(
                black_box(&pipeline),
                &partition,
                &model,
                &inputs,
                RuntimePolicy::IcedDvfs,
            )
        })
    });
    g.bench_function("gcn_50_inputs_drips", |b| {
        b.iter(|| {
            simulate(
                black_box(&pipeline),
                &partition,
                &model,
                &inputs,
                RuntimePolicy::Drips,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig8,
    bench_fig9_pipeline,
    bench_fig13_stream
);
criterion_main!(benches);
