//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §5 for the index). This library
//! holds the bits they share: suite iteration, formatting, and the
//! iteration count used for power accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Compiled, Strategy, Toolchain};

/// Loop iterations charged when converting activity to energy; the figures
/// compare averages, so any value cancels out (kept explicit for clarity).
pub const POWER_ITERATIONS: u64 = 4096;

/// Worker-thread count for [`par_sweep`]: the `ICED_BENCH_THREADS`
/// environment variable wins, then available parallelism.
fn sweep_threads() -> usize {
    if let Some(v) = std::env::var_os("ICED_BENCH_THREADS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Fans `work` over `items` on scoped worker threads, returning results in
/// input order — the sweep harness behind every figure/bench binary.
///
/// Items are claimed from a shared counter (same pattern as the mapper's
/// portfolio search), so long points — one kernel mapping much slower than
/// the rest, say — never leave workers idle behind a static partition.
/// `work` must be order-independent; output order is restored afterwards,
/// so printing/CSV emission stays deterministic. Worker count comes from
/// `ICED_BENCH_THREADS`, defaulting to available parallelism; set it to 1
/// to debug with a strictly serial sweep.
pub fn par_sweep<T, R>(items: &[T], work: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = sweep_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(&work).collect();
    }
    let next = AtomicUsize::new(0);
    let (next, work) = (&next, &work);
    let mut parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(idx) else {
                            break;
                        };
                        out.push((idx, work(item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    for part in &mut parts {
        for (idx, r) in part.drain(..) {
            slots[idx] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index claimed exactly once"))
        .collect()
}

/// A compiled result for every standalone kernel under one strategy.
pub fn compile_suite(
    toolchain: &Toolchain,
    uf: UnrollFactor,
    strategy: Strategy,
) -> Vec<(Kernel, Compiled)> {
    par_sweep(&Kernel::STANDALONE, |&k| {
        let c = toolchain
            .compile(&k.dfg(uf), strategy)
            .unwrap_or_else(|e| panic!("{} {:?} {}: {e}", k.name(), uf, strategy.name()));
        (k, c)
    })
}

/// Mean of a metric over compiled results.
pub fn mean(rows: &[(Kernel, Compiled)], metric: impl Fn(&Compiled) -> f64) -> f64 {
    rows.iter().map(|(_, c)| metric(c)).sum::<f64>() / rows.len().max(1) as f64
}

/// Render a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Writes a figure's data series as CSV when `ICED_CSV_DIR` is set —
/// artifact-style output ("the script directly generates the figures"),
/// ready for any plotting tool. Silently does nothing otherwise.
pub fn emit_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let Some(dir) = std::env::var_os("ICED_CSV_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("iced-bench: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("iced-bench: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// An active `ICED_TRACE` recording session: the collector to drain and
/// the path to export to when the binary finishes.
#[derive(Debug)]
pub struct TraceSession {
    path: std::path::PathBuf,
    collector: std::sync::Arc<iced::trace::RecordingCollector>,
}

/// Installs a process-wide [`iced::trace::RecordingCollector`] when the
/// `ICED_TRACE` environment variable names an output file. Set
/// `ICED_TRACE_DETAIL=1` as well to record one event per simulated FU
/// firing (large, but gives full timeline replay). Returns `None` — and
/// leaves tracing disabled, costing nothing — when `ICED_TRACE` is unset.
pub fn init_tracing() -> Option<TraceSession> {
    let path = std::path::PathBuf::from(std::env::var_os("ICED_TRACE")?);
    let collector = std::sync::Arc::new(iced::trace::RecordingCollector::new());
    if iced::trace::install(collector.clone()).is_err() {
        eprintln!("iced-bench: a trace collector is already installed");
        return None;
    }
    if std::env::var_os("ICED_TRACE_DETAIL").is_some() {
        iced::trace::set_detail(true);
    }
    Some(TraceSession { path, collector })
}

/// Exports a recording finished by [`init_tracing`] and prints its
/// [`iced::trace::TraceSummary`]. A path ending in `.jsonl` exports
/// line-delimited JSON; anything else gets Chrome `trace_event` JSON
/// (loadable in Perfetto / `chrome://tracing`).
pub fn finish_tracing(session: Option<TraceSession>) {
    let Some(TraceSession { path, collector }) = session else {
        return;
    };
    let records = collector.records();
    let jsonl = path.extension().is_some_and(|e| e == "jsonl");
    let mut out = Vec::new();
    let res = if jsonl {
        iced::trace::export::write_jsonl(&records, &mut out)
    } else {
        iced::trace::export::write_chrome_trace(&records, &mut out)
    };
    if let Err(e) = res.and_then(|()| std::fs::write(&path, &out)) {
        eprintln!("iced-bench: cannot write trace {}: {e}", path.display());
        return;
    }
    eprintln!(
        "wrote {} ({} records, {})",
        path.display(),
        records.len(),
        if jsonl { "jsonl" } else { "chrome trace" }
    );
    eprint!("{}", iced::trace::TraceSummary::from_records(&records));
}

/// Runs a bench binary's body under the `ICED_TRACE` tracing session:
/// every `fn main` in `src/bin/` is `iced_bench::with_tracing(run)`.
pub fn with_tracing(body: impl FnOnce()) {
    let session = init_tracing();
    body();
    finish_tracing(session);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sweep_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        let doubled = par_sweep(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert!(par_sweep::<usize, usize>(&[], |&x| x).is_empty());
    }

    #[test]
    fn suite_compiles_under_iced() {
        let tc = Toolchain::prototype();
        let rows = compile_suite(&tc, UnrollFactor::X1, Strategy::IcedIslands);
        assert_eq!(rows.len(), 10);
        let m = mean(&rows, |c| c.average_utilization());
        assert!(m > 0.0 && m <= 1.0);
        assert_eq!(pct(0.5), "50.0");
    }
}
