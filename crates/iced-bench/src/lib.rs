//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the
//! paper's evaluation (see `DESIGN.md` §5 for the index). This library
//! holds the bits they share: suite iteration, formatting, and the
//! iteration count used for power accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Compiled, Strategy, Toolchain};

/// Loop iterations charged when converting activity to energy; the figures
/// compare averages, so any value cancels out (kept explicit for clarity).
pub const POWER_ITERATIONS: u64 = 4096;

/// A compiled result for every standalone kernel under one strategy.
pub fn compile_suite(
    toolchain: &Toolchain,
    uf: UnrollFactor,
    strategy: Strategy,
) -> Vec<(Kernel, Compiled)> {
    Kernel::STANDALONE
        .iter()
        .map(|&k| {
            let c = toolchain
                .compile(&k.dfg(uf), strategy)
                .unwrap_or_else(|e| panic!("{} {:?} {}: {e}", k.name(), uf, strategy.name()));
            (k, c)
        })
        .collect()
}

/// Mean of a metric over compiled results.
pub fn mean(rows: &[(Kernel, Compiled)], metric: impl Fn(&Compiled) -> f64) -> f64 {
    rows.iter().map(|(_, c)| metric(c)).sum::<f64>() / rows.len().max(1) as f64
}

/// Render a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Writes a figure's data series as CSV when `ICED_CSV_DIR` is set —
/// artifact-style output ("the script directly generates the figures"),
/// ready for any plotting tool. Silently does nothing otherwise.
pub fn emit_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let Some(dir) = std::env::var_os("ICED_CSV_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("iced-bench: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("iced-bench: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_compiles_under_iced() {
        let tc = Toolchain::prototype();
        let rows = compile_suite(&tc, UnrollFactor::X1, Strategy::IcedIslands);
        assert_eq!(rows.len(), 10);
        let m = mean(&rows, |c| c.average_utilization());
        assert!(m > 0.0 && m <= 1.0);
        assert_eq!(pct(0.5), "50.0");
    }
}
