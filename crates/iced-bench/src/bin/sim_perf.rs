//! Simulator performance benchmark: runs the 10-kernel standalone suite
//! (DVFS-aware mappings) through both cycle engines and emits
//! `BENCH_sim.json` — per-kernel wall time for the compiled engine vs. the
//! naive oracle, simulated cycles per second on a long run, and a peak-RSS
//! proxy — so the simulator's speed trajectory is tracked across PRs.
//! Every compiled-engine report is checked bit-identical against the
//! oracle's; the process exits non-zero on divergence.
//!
//! Phases run engine-first so the recorded peak RSS covers only the
//! compiled engine's long runs: a growing high-water mark here would mean
//! the engine's memory is no longer flat in the iteration count.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin sim_perf -- [--quick] [--out PATH] [--iters N]
//! ```
//!
//! `--quick` compares at 10k iterations and long-runs 100k (the CI
//! perf-smoke configuration); the default compares at 100k and long-runs
//! one million iterations. `--iters N` overrides the comparison count.

use std::fmt::Write as _;
use std::time::Instant;

use iced::kernels::{Kernel, UnrollFactor};
use iced::sim::{run_engine, run_oracle};
use iced::{Strategy, Toolchain};

struct KernelRow {
    kernel: &'static str,
    ii: u32,
    oracle_wall_us: u128,
    engine_wall_us: u128,
    long_wall_us: u128,
    long_cycles: u64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.oracle_wall_us as f64 / (self.engine_wall_us.max(1)) as f64
    }

    fn cycles_per_sec(&self) -> f64 {
        self.long_cycles as f64 / (self.long_wall_us.max(1) as f64 / 1e6)
    }
}

/// Process high-water-mark RSS in kB (`VmHWM`), or 0 where unavailable.
fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    if let Some(kb) = rest.split_whitespace().next() {
                        return kb.parse().unwrap_or(0);
                    }
                }
            }
        }
    }
    0
}

fn emit_json(
    rows: &[KernelRow],
    compare_iters: u64,
    long_iters: u64,
    engine_peak_rss: u64,
) -> String {
    let oracle_total: u128 = rows.iter().map(|r| r.oracle_wall_us).sum();
    let engine_total: u128 = rows.iter().map(|r| r.engine_wall_us).sum();
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"standalone-x1\",\n");
    let _ = writeln!(out, "  \"compare_iterations\": {compare_iters},");
    let _ = writeln!(out, "  \"long_iterations\": {long_iters},");
    let _ = writeln!(out, "  \"engine_peak_rss_kb\": {engine_peak_rss},");
    out.push_str("  \"equivalence\": \"ok\",\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"ii\": {}, \"oracle_wall_us\": {}, \
             \"engine_wall_us\": {}, \"speedup\": {:.2}, \"long_wall_us\": {}, \
             \"cycles_per_sec\": {:.0}}}{}",
            r.kernel,
            r.ii,
            r.oracle_wall_us,
            r.engine_wall_us,
            r.speedup(),
            r.long_wall_us,
            r.cycles_per_sec(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(
        out,
        "  ],\n  \"totals\": {{\"oracle_wall_us\": {}, \"engine_wall_us\": {}, \
         \"speedup\": {:.2}}}\n}}",
        oracle_total,
        engine_total,
        oracle_total as f64 / engine_total.max(1) as f64
    );
    out
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_sim.json".to_string(), String::clone);
    let compare_iters: u64 = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 10_000 } else { 100_000 });
    let long_iters: u64 = if quick { 100_000 } else { 1_000_000 };

    let tc = Toolchain::prototype();
    let suite: Vec<_> = Kernel::STANDALONE
        .iter()
        .map(|&k| {
            let dfg = k.dfg(UnrollFactor::X1);
            let mapping = tc
                .compile(&dfg, Strategy::IcedIslands)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name()))
                .mapping()
                .clone();
            (k, dfg, mapping)
        })
        .collect();

    // Phase 1 — compiled engine only: long runs for throughput, then the
    // comparison-length runs. Peak RSS sampled here is an engine-only
    // figure (the oracle has not allocated anything yet).
    let mut rows: Vec<KernelRow> = Vec::new();
    for (k, dfg, mapping) in &suite {
        let start = Instant::now();
        let long = run_engine(dfg, mapping, long_iters, 42)
            .unwrap_or_else(|e| panic!("{} engine long run: {e}", k.name()));
        let long_wall_us = start.elapsed().as_micros();
        let start = Instant::now();
        let _fast = run_engine(dfg, mapping, compare_iters, 42).unwrap();
        let engine_wall_us = start.elapsed().as_micros();
        rows.push(KernelRow {
            kernel: k.name(),
            ii: mapping.ii(),
            oracle_wall_us: 0,
            engine_wall_us,
            long_wall_us,
            long_cycles: long.cycles,
        });
    }
    let engine_peak_rss = peak_rss_kb();

    // Phase 2 — naive oracle at the comparison length, with the report
    // equality check that backs the "equivalence: ok" field.
    for (row, (k, dfg, mapping)) in rows.iter_mut().zip(&suite) {
        let fast = run_engine(dfg, mapping, compare_iters, 42).unwrap();
        let start = Instant::now();
        let slow = run_oracle(dfg, mapping, compare_iters, 42)
            .unwrap_or_else(|e| panic!("{} oracle: {e}", k.name()));
        row.oracle_wall_us = start.elapsed().as_micros();
        if fast != slow {
            eprintln!(
                "sim_perf: {} diverged — compiled engine report != oracle report",
                k.name()
            );
            std::process::exit(1);
        }
    }

    println!(
        "{:<12} {:>4} {:>12} {:>12} {:>9} {:>14}",
        "kernel", "ii", "oracle us", "engine us", "speedup", "cycles/sec"
    );
    for r in &rows {
        println!(
            "{:<12} {:>4} {:>12} {:>12} {:>8.1}x {:>14.0}",
            r.kernel,
            r.ii,
            r.oracle_wall_us,
            r.engine_wall_us,
            r.speedup(),
            r.cycles_per_sec()
        );
    }
    let oracle_total: u128 = rows.iter().map(|r| r.oracle_wall_us).sum();
    let engine_total: u128 = rows.iter().map(|r| r.engine_wall_us).sum();
    println!(
        "total: oracle {} us, engine {} us ({:.1}x) at {} iterations; \
         long runs {} iterations, engine peak RSS {} kB",
        oracle_total,
        engine_total,
        oracle_total as f64 / engine_total.max(1) as f64,
        compare_iters,
        long_iters,
        engine_peak_rss
    );
    println!("equivalence: ok (every compiled-engine report matched the oracle)");

    let json = emit_json(&rows, compare_iters, long_iters, engine_peak_rss);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("sim_perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}

fn main() {
    iced_bench::with_tracing(run);
}
