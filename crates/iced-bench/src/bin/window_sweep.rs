//! Ablation: runtime-DVFS adaptation window vs energy efficiency.
//!
//! The paper fixes the window at 10 inputs for a fair comparison with
//! DRIPS, but argues ICED's ns-scale voltage regulator would allow
//! finer-grained switching "to achieve greater energy efficiency". This
//! sweep quantifies that: shorter windows track the shifting bottleneck
//! sooner; longer windows average it away.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin window_sweep
//! ```

use iced::arch::CgraConfig;
use iced::kernels::pipelines::Pipeline;
use iced::kernels::workloads;
use iced::power::PowerModel;
use iced::streaming::{simulate_with_window, Partition, RuntimePolicy};

fn run() {
    let cfg = CgraConfig::iced_prototype();
    let model = PowerModel::asap7();
    for (name, pipeline, inputs) in [
        (
            "gcn",
            Pipeline::gcn(),
            workloads::enzymes_like(150, 9)
                .iter()
                .map(|g| g.nnz())
                .collect::<Vec<_>>(),
        ),
        (
            "lu",
            Pipeline::lu(),
            workloads::suitesparse_like(150, 11)
                .iter()
                .map(|m| m.nnz as u64)
                .collect(),
        ),
    ] {
        let partition = Partition::table1(&pipeline, &cfg).expect("partition maps");
        println!("--- {name} ---");
        println!(
            "{:>8} {:>12} {:>10} {:>14}",
            "window", "thr /s", "power mW", "ppw"
        );
        for window in [1usize, 2, 5, 10, 20, 50] {
            let r = simulate_with_window(
                &pipeline,
                &partition,
                &model,
                &inputs,
                RuntimePolicy::IcedDvfs,
                window,
            );
            println!(
                "{:>8} {:>12.0} {:>10.1} {:>14.0}",
                window,
                r.throughput(),
                r.avg_power_mw(),
                r.perf_per_watt()
            );
        }
        println!();
    }
    println!("shorter windows adapt sooner (the paper's ns-scale DVFS headroom)");
}

fn main() {
    iced_bench::with_tracing(run);
}
