//! Regenerates **Figure 13**: normalized energy efficiency
//! (performance-per-watt, ICED over DRIPS) for the GCN and LU streaming
//! applications across the input stream, one point per 10-input interval
//! (paper: ~1.12× average on GCN, ~1.26× on LU).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig13
//! ```

use iced::arch::CgraConfig;
use iced::kernels::pipelines::Pipeline;
use iced::kernels::workloads;
use iced::power::PowerModel;
use iced::streaming::{simulate, Partition, RuntimePolicy};

fn run(name: &str, pipeline: &Pipeline, inputs: &[u64]) {
    let mut csv: Vec<Vec<String>> = Vec::new();
    let cfg = CgraConfig::iced_prototype();
    let model = PowerModel::asap7();
    let partition = Partition::table1(pipeline, &cfg).expect("table1 partition maps");
    let iced = simulate(
        pipeline,
        &partition,
        &model,
        inputs,
        RuntimePolicy::IcedDvfs,
    );
    let drips = simulate(pipeline, &partition, &model, inputs, RuntimePolicy::Drips);

    println!("--- {name}: ICED/DRIPS perf-per-watt per 10-input interval ---");
    let ratios: Vec<f64> = iced
        .samples
        .iter()
        .zip(&drips.samples)
        .map(|(a, b)| a.perf_per_watt() / b.perf_per_watt())
        .collect();
    for (i, r) in ratios.iter().enumerate() {
        csv.push(vec![i.to_string(), format!("{r:.4}")]);
    }
    iced_bench::emit_csv(
        &format!("fig13_{name}"),
        &["interval", "iced_over_drips_ppw"],
        &csv,
    );
    for (i, chunk) in ratios.chunks(10).enumerate() {
        let cells: Vec<String> = chunk.iter().map(|r| format!("{r:5.2}")).collect();
        println!("  intervals {:>3}..: {}", i * 10, cells.join(" "));
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "  overall: ICED {:.0}/s @ {:.1} mW, DRIPS {:.0}/s @ {:.1} mW -> average ratio {:.2}x\n",
        iced.throughput(),
        iced.avg_power_mw(),
        drips.throughput(),
        drips.avg_power_mw(),
        avg,
    );
}

fn generate() {
    // The paper profiles the first 50 inputs to seed the initial mapping
    // and then streams the datasets (ENZYMES inference split / 150 sparse
    // matrices).
    let gcn_inputs: Vec<u64> = workloads::enzymes_like(150, 9)
        .iter()
        .map(|g| g.nnz())
        .collect();
    run("GCN", &Pipeline::gcn(), &gcn_inputs);
    let lu_inputs: Vec<u64> = workloads::suitesparse_like(150, 11)
        .iter()
        .map(|m| m.nnz as u64)
        .collect();
    run("LU", &Pipeline::lu(), &lu_inputs);
    println!("paper anchors: GCN ~1.12x, LU ~1.26x (up to 1.26x)");
}

fn main() {
    iced_bench::with_tracing(generate);
}
