//! Calibration sweep: finds power-model fractions that best reproduce the
//! paper's Fig. 11 ratios (iced/baseline 1.32x, pg/baseline 1.12x,
//! per-tile/iced 1.6x at UF2). Mappings are computed once; only the
//! accounting is swept.
use iced::kernels::{Kernel, UnrollFactor};
use iced::power::PowerModel;
use iced::sim::EnergyBreakdown;
use iced::{Strategy, Toolchain};

fn run() {
    let tc = Toolchain::prototype();
    // Precompute all mappings once.
    let mut compiled = Vec::new();
    for k in Kernel::STANDALONE {
        let dfg = k.dfg(UnrollFactor::X2);
        let per: Vec<_> = Strategy::ALL
            .iter()
            .map(|&s| (s, tc.compile(&dfg, s).unwrap()))
            .collect();
        compiled.push((dfg, per));
    }
    let mut best = (f64::MAX, 0.0, 0.0, 0.0);
    for sf10 in 0..=8 {
        for cf10 in 0..=10 {
            for ss10 in [0.0f64, 0.1, 0.2, 0.3] {
                let sf = sf10 as f64 * 0.05;
                let cf = cf10 as f64 * 0.05;
                let model = PowerModel::with_fractions(sf, cf, ss10);
                let mut sums = [0.0f64; 4];
                for (dfg, per) in &compiled {
                    for (i, (s, c)) in per.iter().enumerate() {
                        sums[i] += EnergyBreakdown::account(
                            dfg,
                            c.mapping(),
                            &model,
                            s.dvfs_support(),
                            4096,
                        )
                        .total_power_mw();
                    }
                }
                let iced_r = sums[0] / sums[3];
                let pg_r = sums[0] / sums[1];
                let pt_r = sums[2] / sums[3];
                let err = ((iced_r - 1.32f64) / 1.32).powi(2)
                    + ((pg_r - 1.12f64) / 1.12).powi(2)
                    + ((pt_r - 1.60f64) / 1.60).powi(2);
                if err < best.0 {
                    best = (err, sf, cf, ss10);
                    println!(
                        "sf={sf:.2} cf={cf:.2} ss={ss10:.1}: iced={iced_r:.2} pg={pg_r:.2} pt={pt_r:.2} err={err:.4}"
                    );
                }
            }
        }
    }
    println!(
        "best: static={:.2} clock={:.2} sram_static={:.1}",
        best.1, best.2, best.3
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
