//! Regenerates **Figure 8**: area and power breakdown of the 6×6 ICED CGRA
//! at nominal V/F (0.7 V / 434 MHz), from the calibrated ASAP7 model.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig08
//! ```

use iced::arch::{CgraConfig, DvfsLevel};
use iced::power::{AreaModel, PowerModel};

fn run() {
    let cfg = CgraConfig::iced_prototype();
    let area = AreaModel::asap7();
    let power = PowerModel::asap7();
    let b = area.breakdown(&cfg);

    println!("6x6 ICED CGRA @ 0.7 V / 434 MHz (ASAP7 calibration)\n");
    println!("area breakdown:");
    println!(
        "  tiles ({}):            {:>7.3} mm2",
        cfg.tile_count(),
        b.tiles_mm2
    );
    println!(
        "  DVFS units ({} islands): {:>7.3} mm2",
        cfg.island_count(),
        b.dvfs_mm2
    );
    println!(
        "  array total (no SRAM):  {:>7.3} mm2  (published: 6.630 mm2)",
        b.array_mm2()
    );
    println!(
        "  SRAM (32 KB, 8 banks):  {:>7.3} mm2  (published: 0.559 mm2)",
        b.sram_mm2
    );
    println!("  chip total:             {:>7.3} mm2", b.total_mm2());

    let tile_full = power.tile_power_mw(DvfsLevel::Normal, 1.0);
    println!("\npower breakdown at full activity:");
    println!("  one tile:               {:>7.3} mW", tile_full);
    println!(
        "  36-tile array:          {:>7.2} mW  (published average: 113.95 mW)",
        36.0 * tile_full
    );
    println!(
        "  9 island DVFS units:    {:>7.2} mW ({:.1} % of the array)",
        power.controllers_power_mw(9),
        100.0 * power.controllers_power_mw(9) / (36.0 * tile_full)
    );
    println!(
        "  36 per-tile DVFS units: {:>7.2} mW ({:.1} % of the array — the >30 % UE-CGRA overhead)",
        power.controllers_power_mw(36),
        100.0 * power.controllers_power_mw(36) / (36.0 * tile_full)
    );
    println!(
        "  SRAM peak:              {:>7.2} mW  (published: 62.653 mW)",
        power.sram_power_mw(1.0)
    );

    println!("\nV/F operating points:");
    for lvl in DvfsLevel::ACTIVE {
        let vf = iced::power::VfPoint::of(lvl).expect("active");
        println!(
            "  {:<7} {:.2} V / {:>6.1} MHz -> tile {:>6.3} mW busy, {:>6.3} mW idle",
            lvl.to_string(),
            vf.voltage_v(),
            vf.freq_mhz(),
            power.tile_power_mw(lvl, 1.0),
            power.tile_power_mw(lvl, 0.0),
        );
    }
}

fn main() {
    iced_bench::with_tracing(run);
}
