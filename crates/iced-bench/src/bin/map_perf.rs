//! Mapper performance benchmark: maps the 10-kernel standalone suite
//! (baseline + DVFS-aware) at several portfolio thread counts and emits
//! `BENCH_mapper.json` — per-kernel wall time, `ii_attempts` and
//! `dijkstra_expansions` — so the mapper's speed trajectory is tracked
//! across PRs. Every parallel mapping is checked bit-identical against the
//! serial reference; the process exits non-zero on divergence.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin map_perf -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` benches thread counts 1 and 4 only (the CI perf-smoke
//! configuration); the default sweep is 1/2/4/8.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use iced::arch::CgraConfig;
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::{map_with, MapperOptions, Mapping};
use iced::trace::{Phase, RecordingCollector};

struct KernelRow {
    kernel: &'static str,
    ii: u32,
    wall_us: u128,
    ii_attempts: u64,
    dijkstra_expansions: u64,
}

struct RunRow {
    mode: &'static str,
    threads: usize,
    kernels: Vec<KernelRow>,
}

fn mode_opts(mode: &str) -> MapperOptions {
    match mode {
        "baseline" => MapperOptions::baseline(),
        _ => MapperOptions::default(),
    }
}

fn bench_run(
    collector: &RecordingCollector,
    cfg: &CgraConfig,
    mode: &'static str,
    threads: usize,
    reference: Option<&[Mapping]>,
) -> (RunRow, Vec<Mapping>) {
    let mut kernels = Vec::new();
    let mut mappings = Vec::new();
    for (i, kernel) in Kernel::STANDALONE.iter().enumerate() {
        let dfg = kernel.dfg(UnrollFactor::X1);
        let opts = MapperOptions {
            threads,
            ..mode_opts(mode)
        };
        let attempts_before = collector.counter_total(Phase::Mapper, "ii_attempts");
        let expansions_before = collector.counter_total(Phase::Router, "dijkstra_expansions");
        let start = Instant::now();
        let mapping = map_with(&dfg, cfg, &opts)
            .unwrap_or_else(|e| panic!("{} ({mode}, {threads} threads): {e}", kernel.name()));
        let wall_us = start.elapsed().as_micros();
        if let Some(reference) = reference {
            assert!(
                mapping.result_eq(&reference[i]),
                "{} ({mode}): threads={threads} diverged from the serial mapping",
                kernel.name()
            );
        }
        kernels.push(KernelRow {
            kernel: kernel.name(),
            ii: mapping.ii(),
            wall_us,
            ii_attempts: collector.counter_total(Phase::Mapper, "ii_attempts") - attempts_before,
            dijkstra_expansions: collector.counter_total(Phase::Router, "dijkstra_expansions")
                - expansions_before,
        });
        mappings.push(mapping);
    }
    (
        RunRow {
            mode,
            threads,
            kernels,
        },
        mappings,
    )
}

fn emit_json(runs: &[RunRow], thread_counts: &[usize]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"standalone-x1\",\n  \"thread_counts\": [");
    for (i, t) in thread_counts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{t}");
    }
    out.push_str("],\n  \"determinism\": \"ok\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let wall: u128 = run.kernels.iter().map(|k| k.wall_us).sum();
        let exp: u64 = run.kernels.iter().map(|k| k.dijkstra_expansions).sum();
        let _ = writeln!(
            out,
            "    {{\"mode\": \"{}\", \"threads\": {}, \"total_wall_us\": {}, \
             \"total_dijkstra_expansions\": {}, \"kernels\": [",
            run.mode, run.threads, wall, exp
        );
        for (j, k) in run.kernels.iter().enumerate() {
            let _ = writeln!(
                out,
                "      {{\"kernel\": \"{}\", \"ii\": {}, \"wall_us\": {}, \
                 \"ii_attempts\": {}, \"dijkstra_expansions\": {}}}{}",
                k.kernel,
                k.ii,
                k.wall_us,
                k.ii_attempts,
                k.dijkstra_expansions,
                if j + 1 < run.kernels.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "    ]}}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_mapper.json".to_string(), String::clone);
    let thread_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };

    // This binary installs its own collector (it needs the mapper/router
    // counters regardless of `ICED_TRACE`), so it does not use
    // `iced_bench::with_tracing`.
    let collector = Arc::new(RecordingCollector::new());
    assert!(
        iced::trace::install(collector.clone()).is_ok(),
        "map_perf must own the process trace collector"
    );

    let cfg = CgraConfig::iced_prototype();
    let mut runs = Vec::new();
    for mode in ["baseline", "dvfs-aware"] {
        let (serial_row, reference) = bench_run(&collector, &cfg, mode, 1, None);
        runs.push(serial_row);
        for &threads in &thread_counts[1..] {
            let (row, _) = bench_run(&collector, &cfg, mode, threads, Some(&reference));
            runs.push(row);
        }
    }

    for run in &runs {
        let wall: u128 = run.kernels.iter().map(|k| k.wall_us).sum();
        let exp: u64 = run.kernels.iter().map(|k| k.dijkstra_expansions).sum();
        println!(
            "{:>10}  threads={}  wall={:>8} us  expansions={}",
            run.mode, run.threads, wall, exp
        );
    }
    println!("determinism: ok (every parallel run matched the serial mapping)");

    let json = emit_json(&runs, thread_counts);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("map_perf: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
