//! Ablation study of the mapper's design choices (the knobs DESIGN.md §4
//! calls out): recurrence-cycle-first placement order, the per-II label
//! ladder, and the final island relaxation pass. Reports II, average DVFS
//! level, and power per variant across the standalone suite. The
//! variant×kernel grid is swept in parallel (`ICED_BENCH_THREADS` to pin
//! the worker count).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin ablations
//! ```

use iced::arch::{CgraConfig, DvfsLevel};
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::{map_with, relax_islands, MapperOptions};
use iced::power::PowerModel;
use iced::sim::{DvfsSupport, EnergyBreakdown, FabricStats};

struct Variant {
    name: &'static str,
    opts: MapperOptions,
    island_relax: bool,
}

fn run() {
    let cfg = CgraConfig::iced_prototype();
    let model = PowerModel::asap7();
    let variants = [
        Variant {
            name: "full iced",
            opts: MapperOptions::default(),
            island_relax: true,
        },
        Variant {
            name: "no island-relax",
            opts: MapperOptions::default(),
            island_relax: false,
        },
        Variant {
            name: "no cycle-first",
            opts: MapperOptions {
                cycle_first: false,
                ..MapperOptions::default()
            },
            island_relax: true,
        },
        Variant {
            name: "no label-ladder",
            opts: MapperOptions {
                label_ladder: false,
                max_ii: 96,
                ..MapperOptions::default()
            },
            island_relax: true,
        },
        Variant {
            name: "relax-only levels",
            opts: MapperOptions {
                allowed_levels: vec![DvfsLevel::Normal, DvfsLevel::Relax],
                ..MapperOptions::default()
            },
            island_relax: true,
        },
    ];

    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>8}",
        "variant", "avg II", "avg lvl %", "power mW", "mapped"
    );
    // Flatten to (variant, kernel) cells — the natural unit of sweep work —
    // and fan out; aggregation back to per-variant rows keeps print order.
    let cells: Vec<(usize, Kernel)> = (0..variants.len())
        .flat_map(|vi| Kernel::STANDALONE.into_iter().map(move |k| (vi, k)))
        .collect();
    let measured = iced_bench::par_sweep(&cells, |&(vi, k)| {
        let v = &variants[vi];
        let dfg = k.dfg(UnrollFactor::X1);
        let Ok(m) = map_with(&dfg, &cfg, &v.opts) else {
            return None;
        };
        let m = if v.island_relax {
            relax_islands(&dfg, &m)
        } else {
            m
        };
        let stats = FabricStats::analyze(&m);
        let pw = EnergyBreakdown::account(&dfg, &m, &model, DvfsSupport::PerIsland, 4096)
            .total_power_mw();
        Some((m.ii() as f64, stats.average_dvfs_level(), pw))
    });
    for (vi, v) in variants.iter().enumerate() {
        let mut ii_sum = 0.0;
        let mut lvl_sum = 0.0;
        let mut pw_sum = 0.0;
        let mut mapped = 0usize;
        for (cell, row) in cells.iter().zip(&measured) {
            if cell.0 != vi {
                continue;
            }
            let Some((ii, lvl, pw)) = row else { continue };
            ii_sum += ii;
            lvl_sum += lvl;
            pw_sum += pw;
            mapped += 1;
        }
        let n = mapped.max(1) as f64;
        println!(
            "{:<18} {:>8.2} {:>10.1} {:>10.1} {:>7}/10",
            v.name,
            ii_sum / n,
            100.0 * lvl_sum / n,
            pw_sum / n,
            mapped
        );
    }
    println!(
        "\nreading: disabling island relaxation raises level/power; disabling \
         cycle-first placement costs II on recurrence-heavy kernels; the label \
         ladder protects II when aggressive labels fail."
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
