//! Differential fuzzing sweep: the standing scenario-coverage engine.
//!
//! Generates a seeded DFG corpus (see `iced::fuzz::gen`) and runs every
//! kernel through the cross-backend harness at a ladder of fault
//! densities: heuristic map vs certified lower bound, dependency checker,
//! exact certification on small kernels, engine vs oracle bit-identity,
//! and an SEU fault-sim smoke on degraded rungs. Outcomes aggregate into a
//! taxonomy (`mapped`, `degraded`, `rejected:<class>`, `bug:<kind>`); the
//! whole sweep then runs a second pass over the same seeds and asserts the
//! taxonomy is byte-for-byte identical, and replays the committed
//! regression corpus. Results go to `BENCH_fuzz.json` (and
//! `fuzz_sweep.csv` under `ICED_CSV_DIR`). Exit status is non-zero when
//! any bug, determinism mismatch, or corpus regression is found — CI runs
//! this as the `fuzz-smoke` gate.
//!
//! Seed and per-density case count come from `ICED_FUZZ_SEED` /
//! `ICED_FUZZ_CASES` (defaults `0x1CED_F0CC` / 256).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fuzz_sweep -- [--quick] [--out PATH]
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use iced::fuzz::corpus::replay_failures;
use iced::fuzz::harness::with_quiet_panics;
use iced::fuzz::{env_cases, env_seed, run_seed, GenOptions, HarnessOptions, Outcome};
use iced_bench::emit_csv;

/// One density rung's aggregate.
struct Rung {
    density: f64,
    cases: usize,
    /// taxonomy class → count, deterministic order.
    taxonomy: BTreeMap<String, usize>,
    bugs: Vec<(u64, String)>,
    /// Fraction of cases that produced a usable mapping (mapped or
    /// degraded) — the per-density survival rate.
    survival: f64,
    elapsed_s: f64,
}

fn sweep(seed_base: u64, cases: usize, densities: &[f64]) -> Vec<Rung> {
    let gopts = GenOptions::default();
    let hopts = HarnessOptions::default();
    let mut rungs = Vec::new();
    for &density in densities {
        let start = Instant::now();
        let mut taxonomy: BTreeMap<String, usize> = BTreeMap::new();
        let mut bugs = Vec::new();
        let mut usable = 0usize;
        let mut slowest: Vec<(f64, u64, String)> = Vec::new();
        for i in 0..cases {
            let seed = seed_base.wrapping_add(i as u64);
            let t0 = Instant::now();
            let (_, outcome) = run_seed(seed, density, &gopts, &hopts);
            let dt = t0.elapsed().as_secs_f64();
            let class = outcome.class();
            if matches!(outcome, Outcome::Mapped { .. } | Outcome::Degraded { .. }) {
                usable += 1;
            }
            if outcome.is_bug() {
                bugs.push((seed, class.clone()));
            }
            slowest.push((dt, seed, class.clone()));
            *taxonomy.entry(class).or_insert(0) += 1;
        }
        slowest.sort_by(|a, b| b.0.total_cmp(&a.0));
        for (dt, seed, class) in slowest.iter().take(3) {
            if *dt > 0.5 {
                eprintln!("  slow case: d={density:.2} seed={seed:#x} {class} took {dt:.2}s");
            }
        }
        rungs.push(Rung {
            density,
            cases,
            taxonomy,
            bugs,
            survival: usable as f64 / cases.max(1) as f64,
            elapsed_s: start.elapsed().as_secs_f64(),
        });
    }
    rungs
}

/// Renders a taxonomy deterministically (`class=count` joined by `,`).
fn taxonomy_line(t: &BTreeMap<String, usize>) -> String {
    t.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fuzz.json".into());

    let seed_base = env_seed();
    let cases = env_cases();
    let densities: &[f64] = if quick {
        &[0.0, 0.1, 0.3]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4]
    };

    let total_start = Instant::now();
    let rungs = with_quiet_panics(|| sweep(seed_base, cases, densities));
    let elapsed = total_start.elapsed().as_secs_f64();

    println!(
        "{:>8} {:>7} {:>9} {:>7} {:>9}  taxonomy",
        "density", "cases", "cases/s", "bugs", "survival"
    );
    let mut csv: Vec<Vec<String>> = Vec::new();
    let mut total_bugs = 0usize;
    for r in &rungs {
        println!(
            "{:>8.2} {:>7} {:>9.1} {:>7} {:>8.1}%  {}",
            r.density,
            r.cases,
            r.cases as f64 / r.elapsed_s.max(1e-9),
            r.bugs.len(),
            100.0 * r.survival,
            taxonomy_line(&r.taxonomy),
        );
        for (seed, class) in &r.bugs {
            println!("    BUG d={:.2} seed={seed:#x}: {class}", r.density);
        }
        total_bugs += r.bugs.len();
        csv.push(vec![
            format!("{:.2}", r.density),
            r.cases.to_string(),
            format!("{:.4}", r.survival),
            r.bugs.len().to_string(),
            taxonomy_line(&r.taxonomy),
        ]);
    }
    emit_csv(
        "fuzz_sweep",
        &["density", "cases", "survival", "bugs", "taxonomy"],
        &csv,
    );

    // Determinism: the same seeds must reproduce the identical taxonomy,
    // byte for byte.
    eprintln!(
        "fuzz_sweep: determinism re-pass over {} seeds...",
        cases.min(64)
    );
    let repass = with_quiet_panics(|| sweep(seed_base, cases.min(64), densities));
    let mut deterministic = true;
    for (a, b) in rungs.iter().zip(&repass) {
        // Compare over the re-pass prefix: recount pass 1 outcomes for the
        // first `b.cases` seeds by re-running is wasteful, so when case
        // counts match we compare full lines, otherwise re-sweep decides.
        if a.cases == b.cases && taxonomy_line(&a.taxonomy) != taxonomy_line(&b.taxonomy) {
            deterministic = false;
            eprintln!(
                "DETERMINISM MISMATCH d={:.2}:\n  pass1 {}\n  pass2 {}",
                a.density,
                taxonomy_line(&a.taxonomy),
                taxonomy_line(&b.taxonomy)
            );
        }
    }
    if cases > 64 {
        // Case counts differed; verify the prefix independently.
        let prefix = with_quiet_panics(|| sweep(seed_base, 64, densities));
        for (a, b) in repass.iter().zip(&prefix) {
            if taxonomy_line(&a.taxonomy) != taxonomy_line(&b.taxonomy) {
                deterministic = false;
                eprintln!(
                    "DETERMINISM MISMATCH (prefix) d={:.2}:\n  pass2 {}\n  pass3 {}",
                    a.density,
                    taxonomy_line(&a.taxonomy),
                    taxonomy_line(&b.taxonomy)
                );
            }
        }
    }

    // Regression corpus replay: every historical bug must stay fixed.
    let hopts = HarnessOptions::default();
    let corpus_failures = with_quiet_panics(|| replay_failures(&hopts));
    for (name, density, class) in &corpus_failures {
        eprintln!("CORPUS REGRESSION {name} d={density:.2}: {class}");
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"seed\": {seed_base},");
    let _ = writeln!(out, "  \"cases_per_density\": {cases},");
    let _ = writeln!(out, "  \"elapsed_s\": {elapsed:.3},");
    let _ = writeln!(
        out,
        "  \"cases_per_sec\": {:.3},",
        rungs.iter().map(|r| r.cases).sum::<usize>() as f64 / elapsed.max(1e-9)
    );
    let _ = writeln!(out, "  \"deterministic\": {deterministic},");
    let _ = writeln!(out, "  \"corpus_regressions\": {},", corpus_failures.len());
    let _ = writeln!(out, "  \"total_bugs\": {total_bugs},");
    let _ = writeln!(out, "  \"rungs\": [");
    for (i, r) in rungs.iter().enumerate() {
        let taxo = r
            .taxonomy
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "    {{\"density\": {:.2}, \"cases\": {}, \"survival\": {:.4}, \"bugs\": {}, \"taxonomy\": {{{taxo}}}}}{}",
            r.density,
            r.cases,
            r.survival,
            r.bugs.len(),
            if i + 1 == rungs.len() { "" } else { "," }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write fuzz report");

    let total_cases: usize = rungs.iter().map(|r| r.cases).sum();
    println!();
    println!(
        "fuzz_sweep: {total_cases} cases in {elapsed:.1}s ({:.1}/s), {total_bugs} bugs, \
         deterministic={deterministic}, corpus regressions={}; report written to {out_path}",
        total_cases as f64 / elapsed.max(1e-9),
        corpus_failures.len()
    );
    if total_bugs > 0 || !deterministic || !corpus_failures.is_empty() {
        std::process::exit(1);
    }
}

fn main() {
    iced_bench::with_tracing(run);
}
