//! Regenerates **Figure 10**: average DVFS level across tiles (normal
//! 100 %, relax 50 %, rest 25 %, power-gated 0 %) for the per-tile DVFS
//! comparator and ICED (paper: 35 % vs 26 % at UF1, 53 % vs 37 % at UF2).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig10
//! ```

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};
use iced_bench::{emit_csv, pct};

fn run() {
    let tc = Toolchain::prototype();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for uf in UnrollFactor::ALL {
        println!("--- unrolling factor {} ---", uf.factor());
        println!("{:<12} {:>10} {:>10}", "kernel", "per-tile", "iced");
        let mut sums = [0.0f64; 2];
        for k in Kernel::STANDALONE {
            let dfg = k.dfg(uf);
            let pt = tc
                .compile(&dfg, Strategy::PerTileDvfs)
                .expect("per-tile maps")
                .average_dvfs_level();
            let ic = tc
                .compile(&dfg, Strategy::IcedIslands)
                .expect("iced maps")
                .average_dvfs_level();
            sums[0] += pt;
            sums[1] += ic;
            csv.push(vec![
                k.name().to_string(),
                uf.factor().to_string(),
                pct(pt),
                pct(ic),
            ]);
            println!("{:<12} {:>10} {:>10}", k.name(), pct(pt), pct(ic));
        }
        let n = Kernel::STANDALONE.len() as f64;
        println!(
            "{:<12} {:>10} {:>10}",
            "average",
            pct(sums[0] / n),
            pct(sums[1] / n)
        );
        println!();
    }
    emit_csv(
        "fig10_dvfs_levels",
        &["kernel", "unroll", "per_tile_pct", "iced_pct"],
        &csv,
    );
    println!("paper anchors: iced 35% vs per-tile 26% (UF1); 53% vs 37% (UF2)");
}

fn main() {
    iced_bench::with_tracing(run);
}
