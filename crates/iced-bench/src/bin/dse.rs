//! Design-space exploration: fabric size × island geometry × FU layout.
//!
//! The paper notes that "DVFS island size is a design parameter that can
//! be optimized specifically" and that the ICED compiler "can take in any
//! island size for compilation and DVFS co-design". This harness sweeps
//! the space and reports, per design point, the suite-average II
//! (performance), average DVFS level, power, and the area cost — the
//! Pareto inputs a hardware generator would consume. Design points are
//! independent, so the sweep fans out across worker threads
//! (`ICED_BENCH_THREADS` to pin the count); rows print in sweep order
//! regardless.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin dse
//! ```

use iced::arch::{CgraConfig, FuLayout};
use iced::kernels::{Kernel, UnrollFactor};
use iced::power::AreaModel;
use iced::{Strategy, Toolchain};

fn run() {
    let kernels = [
        Kernel::Fir,
        Kernel::Spmv,
        Kernel::Conv,
        Kernel::Histogram,
        Kernel::Gemm,
    ];
    let sizes = [4usize, 6, 8];
    let islands: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 4)];
    let layouts = [FuLayout::Homogeneous, FuLayout::CheckerboardMul];

    // Enumerate the buildable design points up front; each is then an
    // independent unit of sweep work.
    let mut points: Vec<(usize, usize, usize, FuLayout, CgraConfig)> = Vec::new();
    for &n in &sizes {
        for &(ir, ic) in &islands {
            if ir > n {
                continue;
            }
            for &layout in &layouts {
                if let Ok(cfg) = CgraConfig::builder(n, n)
                    .island(ir, ic)
                    .fu_layout(layout)
                    .build()
                {
                    points.push((n, ir, ic, layout, cfg));
                }
            }
        }
    }

    println!(
        "{:<6} {:<8} {:<14} {:>8} {:>10} {:>10} {:>10} {:>8}",
        "size", "island", "fu layout", "avg II", "avg lvl %", "power mW", "area mm2", "mapped"
    );
    let area = AreaModel::asap7();
    let rows = iced_bench::par_sweep(&points, |(n, ir, ic, layout, cfg)| {
        let tc = Toolchain::new(cfg.clone());
        let mut ii_sum = 0.0;
        let mut lvl_sum = 0.0;
        let mut pw_sum = 0.0;
        let mut mapped = 0usize;
        for k in kernels {
            let dfg = k.dfg(UnrollFactor::X1);
            let Ok(c) = tc.compile(&dfg, Strategy::IcedIslands) else {
                continue;
            };
            ii_sum += c.mapping().ii() as f64;
            lvl_sum += c.average_dvfs_level();
            pw_sum += c.power_mw(4096);
            mapped += 1;
        }
        let b = area.breakdown(cfg);
        let m = mapped.max(1) as f64;
        format!(
            "{:<6} {:<8} {:<14} {:>8.2} {:>10.1} {:>10.1} {:>10.2} {:>7}/{}",
            format!("{n}x{n}"),
            format!("{ir}x{ic}"),
            format!("{layout:?}"),
            ii_sum / m,
            100.0 * lvl_sum / m,
            pw_sum / m,
            b.total_mm2(),
            mapped,
            kernels.len(),
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!(
        "\nreading: 2x2 islands on 6x6 (the paper's point) balance II, power, \
         and the DVFS-unit area; per-tile (1x1) pays ~4x the controller area \
         for little level benefit once island relaxation runs."
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
