//! Regenerates **Figure 4**: normalized performance (II of the per-tile
//! DVFS mapping ÷ II of the island mapping) on an 8×8 CGRA for island
//! sizes 1×1 (per-tile), 2×2, 3×3 (irregular), 4×4, and 8×8.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig04
//! ```

use iced::arch::CgraConfig;
use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};

fn run() {
    let geometries: [(usize, usize); 5] = [(1, 1), (2, 2), (3, 3), (4, 4), (8, 8)];
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "1x1", "2x2", "3x3", "4x4", "8x8"
    );
    let mut geo_sum = [0.0f64; 5];
    for k in Kernel::STANDALONE {
        let dfg = k.dfg(UnrollFactor::X1);
        let mut iis = Vec::new();
        for &(ir, ic) in &geometries {
            let cfg = CgraConfig::builder(8, 8)
                .island(ir, ic)
                .build()
                .expect("valid");
            let tc = Toolchain::new(cfg);
            let strategy = if (ir, ic) == (1, 1) {
                Strategy::PerTileDvfs
            } else {
                Strategy::IcedIslands
            };
            let ii = tc
                .compile(&dfg, strategy)
                .unwrap_or_else(|e| panic!("{} {ir}x{ic}: {e}", k.name()))
                .mapping()
                .ii();
            iis.push(ii as f64);
        }
        let cells: Vec<f64> = iis.iter().map(|ii| iis[0] / ii).collect();
        for (s, &c) in geo_sum.iter_mut().zip(&cells) {
            *s += c;
        }
        println!(
            "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            k.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    let n = Kernel::STANDALONE.len() as f64;
    println!(
        "{:<12} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
        "average",
        geo_sum[0] / n,
        geo_sum[1] / n,
        geo_sum[2] / n,
        geo_sum[3] / n,
        geo_sum[4] / n
    );
    println!(
        "\nshape check: 2x2 stays at ~1.0 (no degradation vs per-tile); larger \
         islands fall below 1.0 (paper Fig. 4)"
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
