//! Fault-tolerance sweep: how gracefully does the mapper degrade as the
//! fabric breaks?
//!
//! For every standalone kernel and a ladder of fault densities, seeded
//! [`FaultPlan`]s are generated and remapped with `map_with_faults`; the
//! sweep reports remap success rate, mean II penalty over the fault-free
//! baseline, and how much of the fabric each density knocks out. A second
//! stage sweeps SEU rate scaling through the fault-aware cycle engine and
//! reports the rollback-recovery overhead. Results go to
//! `BENCH_fault.json` (and `fault_sweep.csv` under `ICED_CSV_DIR`).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fault_sweep -- [--quick] [--out PATH]
//! ```

use std::fmt::Write as _;

use iced::arch::CgraConfig;
use iced::fault::{FaultPlan, SeuRates};
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::{map_with, map_with_faults, MapperOptions};
use iced::sim::run_with_faults;
use iced_bench::{emit_csv, par_sweep};

/// One (kernel, density) sample point, aggregated over several seeds.
struct Point {
    kernel: Kernel,
    density: f64,
    attempts: usize,
    remapped: usize,
    clean_ii: u32,
    mean_faulted_ii: f64,
    mean_penalty: f64,
    mean_dead_tiles: f64,
}

fn sweep_mapper(quick: bool) -> Vec<Point> {
    let cfg = CgraConfig::iced_prototype();
    let densities: &[f64] = if quick {
        &[0.0, 0.1, 0.2]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4]
    };
    let seeds: u64 = if quick { 2 } else { 4 };
    let mut points: Vec<(Kernel, f64)> = Vec::new();
    for &k in &Kernel::STANDALONE {
        for &d in densities {
            points.push((k, d));
        }
    }
    par_sweep(&points, |&(kernel, density)| {
        let dfg = kernel.dfg(UnrollFactor::X1);
        let opts = MapperOptions::default();
        let clean = map_with(&dfg, &cfg, &opts).expect("fault-free baseline maps");
        let (mut remapped, mut ii_sum, mut pen_sum, mut dead_sum) = (0usize, 0u64, 0u64, 0usize);
        for seed in 0..seeds {
            // Salt the plan seed per kernel so the sweep samples distinct
            // fabrics instead of reusing one fault draw across all rows.
            let plan =
                FaultPlan::generate(&cfg, (0xFA11 ^ dfg.canonical_hash()) + seed * 7919, density);
            let dead = plan.excluded(&cfg);
            dead_sum += dead.tiles.len() + dead.fus.len();
            if let Ok(d) = map_with_faults(&dfg, &cfg, &opts, &plan) {
                remapped += 1;
                ii_sum += u64::from(d.mapping.ii());
                pen_sum += u64::from(d.ii_penalty);
            }
        }
        let n = remapped.max(1) as f64;
        Point {
            kernel,
            density,
            attempts: seeds as usize,
            remapped,
            clean_ii: clean.ii(),
            mean_faulted_ii: ii_sum as f64 / n,
            mean_penalty: pen_sum as f64 / n,
            mean_dead_tiles: dead_sum as f64 / seeds as f64,
        }
    })
}

/// SEU scale → mean recovery overhead of the rollback model.
struct SeuPoint {
    scale: u32,
    upsets: u64,
    rollbacks: u64,
    overhead: f64,
}

fn sweep_seu(quick: bool) -> Vec<SeuPoint> {
    let cfg = CgraConfig::iced_prototype();
    let dfg = Kernel::Fir.dfg(UnrollFactor::X1);
    let mapping = map_with(&dfg, &cfg, &MapperOptions::default()).expect("fir maps");
    let iterations = if quick { 256 } else { 1024 };
    let scales: &[u32] = if quick { &[0, 8] } else { &[0, 2, 8, 32] };
    par_sweep(scales, |&scale| {
        let plan = FaultPlan {
            seed: 0x5E0 + u64::from(scale),
            permanent: Vec::new(),
            seu: SeuRates {
                normal_per_million: 500 * scale,
                relax_per_million: 2000 * scale,
                rest_per_million: 4000 * scale,
            },
            midrun: Vec::new(),
        };
        let r = run_with_faults(&dfg, &mapping, iterations, 0xBEE5, &plan)
            .expect("fault-aware run completes");
        SeuPoint {
            scale,
            upsets: r.upsets_injected,
            rollbacks: r.rollbacks,
            overhead: r.recovery_overhead(),
        }
    })
}

fn run() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fault.json".into());

    let points = sweep_mapper(quick);
    println!(
        "{:>10} {:>8} {:>8} {:>9} {:>11} {:>9} {:>11}",
        "kernel", "density", "remaps", "clean ii", "faulted ii", "penalty", "dead tiles"
    );
    let mut csv: Vec<Vec<String>> = Vec::new();
    for p in &points {
        println!(
            "{:>10} {:>8.2} {:>5}/{:<2} {:>9} {:>11.1} {:>9.1} {:>11.1}",
            p.kernel.name(),
            p.density,
            p.remapped,
            p.attempts,
            p.clean_ii,
            p.mean_faulted_ii,
            p.mean_penalty,
            p.mean_dead_tiles,
        );
        csv.push(vec![
            p.kernel.name().to_string(),
            format!("{:.2}", p.density),
            p.remapped.to_string(),
            p.attempts.to_string(),
            p.clean_ii.to_string(),
            format!("{:.2}", p.mean_faulted_ii),
            format!("{:.2}", p.mean_penalty),
            format!("{:.1}", p.mean_dead_tiles),
        ]);
    }
    emit_csv(
        "fault_sweep",
        &[
            "kernel",
            "density",
            "remapped",
            "attempts",
            "clean_ii",
            "mean_faulted_ii",
            "mean_ii_penalty",
            "mean_dead_tiles",
        ],
        &csv,
    );

    let seu = sweep_seu(quick);
    println!();
    println!(
        "{:>8} {:>9} {:>10} {:>10}",
        "seu x", "upsets", "rollbacks", "overhead"
    );
    for s in &seu {
        println!(
            "{:>8} {:>9} {:>10} {:>9.1}%",
            s.scale,
            s.upsets,
            s.rollbacks,
            100.0 * s.overhead
        );
    }

    // Aggregate: remap survival by density (every kernel pooled).
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"mapper\": [");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"density\": {:.2}, \"remapped\": {}, \
             \"attempts\": {}, \"clean_ii\": {}, \"mean_faulted_ii\": {:.2}, \
             \"mean_ii_penalty\": {:.2}, \"mean_dead_tiles\": {:.1}}}{}",
            p.kernel.name(),
            p.density,
            p.remapped,
            p.attempts,
            p.clean_ii,
            p.mean_faulted_ii,
            p.mean_penalty,
            p.mean_dead_tiles,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"seu\": [");
    for (i, s) in seu.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scale\": {}, \"upsets\": {}, \"rollbacks\": {}, \
             \"recovery_overhead\": {:.4}}}{}",
            s.scale,
            s.upsets,
            s.rollbacks,
            s.overhead,
            if i + 1 < seu.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    std::fs::write(&out_path, &out).expect("write fault report");

    let total_attempts: usize = points.iter().map(|p| p.attempts).sum();
    let total_remaps: usize = points.iter().map(|p| p.remapped).sum();
    println!();
    println!(
        "fault_sweep: {total_remaps}/{total_attempts} remaps succeeded; report written to {out_path}"
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
