//! Load generator for the `iced-service` daemon: closed-loop cold/warm
//! phases (content-addressed cache effectiveness) followed by an
//! open-loop burst (backpressure behaviour under saturation), emitting
//! `BENCH_service.json`.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin svc_load -- \
//!     [--quick|--tiny] [--addr HOST:PORT] [--out PATH] [--clients N] [--shutdown]
//! ```
//!
//! The report includes true client-side per-request latency percentiles
//! (p50/p95/p99, cold/warm split) plus the server's own `metrics`,
//! `stats` (windowed quantiles), and Prometheus expositions.
//!
//! Without `--addr` an in-process server is started on an ephemeral port
//! (self-contained mode, used by local runs). With `--addr` the generator
//! drives an externally started `iced-serviced` (the CI smoke job),
//! retrying the connection for a few seconds while the daemon boots;
//! `--shutdown` sends the `shutdown` verb when done so the daemon drains
//! and exits.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use iced_service::{Client, Server, ServiceConfig};

/// Connects via the shared resilient client, exiting with a diagnostic
/// when the daemon never comes up.
fn connect_or_die(addr: &str, budget: Duration) -> Client {
    match Client::connect_retry(addr, budget) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("svc_load: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// One closed-loop request with the client's retry discipline; transient
/// failures (queue_full, chaos-injected drops and panics) are absorbed by
/// the backoff loop, so what comes back is the server's real answer.
fn round_trip(c: &mut Client, line: &str) -> (String, u128) {
    let t0 = Instant::now();
    let resp = c.request(line).unwrap_or_else(|e| {
        panic!("request exhausted retries: {e}");
    });
    (resp, t0.elapsed().as_micros())
}

/// Latency series summarised for the report.
#[derive(Default)]
struct Series {
    us: Vec<u128>,
}

impl Series {
    fn push(&mut self, v: u128) {
        self.us.push(v);
    }

    fn mean(&self) -> f64 {
        if self.us.is_empty() {
            return 0.0;
        }
        self.us.iter().sum::<u128>() as f64 / self.us.len() as f64
    }

    fn percentile(&self, p: f64) -> u128 {
        if self.us.is_empty() {
            return 0;
        }
        let mut sorted = self.us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    fn render(&self, label: &str) -> String {
        format!(
            "{{\"phase\": \"{label}\", \"requests\": {}, \"mean_us\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.us.len(),
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.95),
            self.percentile(0.99),
            self.us.iter().max().copied().unwrap_or(0)
        )
    }
}

/// Canonicalises an envelope for the warm-replay byte-identity check:
/// the `cached` flag and the per-request `req` token are the only fields
/// allowed to differ between a cold response and its warm replay.
fn canonicalize(envelope: &str) -> String {
    let s = envelope.replace("\"cached\":false", "\"cached\":true");
    match (s.find(",\"req\":\""), s.find("\",\"ok\"")) {
        (Some(a), Some(b)) if a < b => format!("{}{}", &s[..a], &s[b + 1..]),
        _ => s,
    }
}

fn compile_requests(quick: bool, tiny: bool) -> Vec<String> {
    let kernels: &[&str] = if tiny {
        &["fir", "latnrm"]
    } else if quick {
        &["fir", "latnrm", "fft", "dtw", "spmv", "conv"]
    } else {
        &[
            "fir",
            "latnrm",
            "fft",
            "dtw",
            "spmv",
            "conv",
            "relu",
            "histogram",
            "mvt",
            "gemm",
        ]
    };
    let strategies: &[&str] = if quick || tiny {
        &["iced"]
    } else {
        &["baseline", "iced"]
    };
    let mut reqs = Vec::new();
    let mut id = 1000;
    for s in strategies {
        for k in kernels {
            reqs.push(format!(
                "{{\"id\":{id},\"verb\":\"compile\",\"kernel\":\"{k}\",\"strategy\":\"{s}\"}}"
            ));
            id += 1;
        }
    }
    reqs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // --tiny is the smallest honest run (2 kernels, 2 clients): used by
    // the e2e observability test, where debug-build wall clock matters.
    let tiny = args.iter().any(|a| a == "--tiny");
    let want_shutdown = args.iter().any(|a| a == "--shutdown");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".into());
    let clients: usize = flag("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny {
            2
        } else if quick {
            4
        } else {
            8
        });

    // Self-contained mode starts an in-process server on an ephemeral
    // port; --addr drives an external daemon instead.
    let external = flag("--addr");
    let (server, addr) = match &external {
        Some(a) => (None, a.clone()),
        None => {
            let cfg = ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: clients.clamp(1, 8),
                // Honor ICED_SVC_CHAOS in self-contained mode too, so a
                // local `ICED_SVC_CHAOS=1 svc_load --quick` is a one-line
                // chaos smoke test.
                chaos: iced_service::ChaosInjector::seed_from_env(),
                ..ServiceConfig::default()
            };
            let s = Server::start(cfg).expect("start in-process server");
            let a = s.local_addr().to_string();
            (Some(s), a)
        }
    };

    let mut c = connect_or_die(&addr, Duration::from_secs(10));
    let (health, _) = round_trip(&mut c, "{\"id\":1,\"verb\":\"healthz\"}");
    assert!(health.contains("\"ok\":true"), "daemon unhealthy: {health}");

    // Phase 1+2: closed loop, same request set twice. Responses are
    // classified by the server's own `cached` marker, so an already-warm
    // external daemon still produces honest numbers.
    let reqs = compile_requests(quick, tiny);
    let mut cold = Series::default();
    let mut warm = Series::default();
    let mut mismatched = 0usize;
    let mut first_pass: Vec<String> = Vec::new();
    for pass in 0..2 {
        for (i, req) in reqs.iter().enumerate() {
            let (resp, us) = round_trip(&mut c, req);
            assert!(resp.contains("\"ok\":true"), "compile failed: {resp}");
            if resp.contains("\"cached\":true") {
                warm.push(us);
            } else {
                cold.push(us);
            }
            if pass == 0 {
                first_pass.push(resp);
            } else {
                // Byte-identity check: warm payloads replay cold bytes.
                let cold_resp = &first_pass[i];
                if canonicalize(cold_resp) != canonicalize(&resp) {
                    mismatched += 1;
                }
            }
        }
    }

    // Phase 3: open loop — every client fires its whole batch without
    // waiting, then collects. Saturation is expected; queue_full replies
    // are part of the contract, not failures.
    let burst = if tiny {
        4
    } else if quick {
        12
    } else {
        40
    };
    let t_open = Instant::now();
    let addr2 = addr.clone();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let addr = addr2.clone();
            std::thread::spawn(move || {
                let mut c = connect_or_die(&addr, Duration::from_secs(10)).with_salt(ci as u64 + 1);
                // Pipelined fire-then-collect. A connection a chaos-mode
                // daemon tears down takes its in-flight responses with it;
                // those count as `dropped`, not as protocol failures.
                let (mut ok, mut full, mut other, mut dropped) = (0usize, 0usize, 0usize, 0usize);
                let mut pending = 0usize;
                for r in 0..burst {
                    let seed = ci * 1000 + r;
                    let line = format!(
                        "{{\"id\":{seed},\"verb\":\"simulate\",\"kernel\":\"fir\",\
                         \"iterations\":2000,\"seed\":{seed}}}"
                    );
                    if c.send(&line).is_ok() {
                        pending += 1;
                    } else {
                        // The dead connection's unanswered requests are
                        // gone too; the next send reconnects.
                        dropped += pending + 1;
                        pending = 0;
                    }
                }
                for _ in 0..pending {
                    match c.recv() {
                        Ok(resp) if resp.contains("\"ok\":true") => ok += 1,
                        Ok(resp) if resp.contains("queue_full") => full += 1,
                        Ok(_) => other += 1,
                        Err(_) => {
                            dropped += pending - (ok + full + other);
                            break;
                        }
                    }
                }
                (ok, full, other, dropped)
            })
        })
        .collect();
    let (mut ok, mut full, mut other, mut dropped) = (0usize, 0usize, 0usize, 0usize);
    for h in handles {
        let (o, f, x, d) = h.join().expect("open-loop client");
        ok += o;
        full += f;
        other += x;
        dropped += d;
    }
    let open_wall_us = t_open.elapsed().as_micros();

    let result_of = |resp: &str| {
        resp.find("\"result\":")
            .map(|i| resp[i + 9..resp.len() - 1].to_string())
            .unwrap_or_else(|| "{}".into())
    };
    let (metrics, _) = round_trip(&mut c, "{\"id\":2,\"verb\":\"metrics\"}");
    let metrics_result = result_of(&metrics);
    // Windowed quantile view plus the Prometheus text exposition, so the
    // report carries every metric family the daemon can render.
    let (stats, _) = round_trip(&mut c, "{\"id\":4,\"verb\":\"stats\"}");
    let stats_result = result_of(&stats);
    let (prom, _) = round_trip(
        &mut c,
        "{\"id\":5,\"verb\":\"stats\",\"format\":\"prometheus\"}",
    );
    let prom_result = result_of(&prom);

    if want_shutdown || external.is_none() {
        // Under chaos the shutdown *response* can be torn even though the
        // drain began; a retry may then find the listener already gone.
        // Either way the daemon is draining, which is what we asked for.
        match c.request("{\"id\":3,\"verb\":\"shutdown\"}") {
            Ok(bye) => assert!(
                bye.contains("\"ok\":true") || bye.contains("shutting_down"),
                "shutdown failed: {bye}"
            ),
            Err(e) => eprintln!("svc_load: shutdown response lost ({e}); daemon draining"),
        }
    }
    if let Some(s) = server {
        s.wait();
    }

    let speedup = if warm.us.is_empty() {
        0.0
    } else {
        cold.mean() / warm.mean().max(1.0)
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if external.is_some() {
            "external"
        } else {
            "in-process"
        }
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(out, "  \"closed_loop\": [");
    let _ = writeln!(out, "    {},", cold.render("cold"));
    let _ = writeln!(out, "    {}", warm.render("warm"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"warm_speedup\": {speedup:.1},");
    let _ = writeln!(out, "  \"warm_payload_mismatches\": {mismatched},");
    let _ = writeln!(
        out,
        "  \"open_loop\": {{\"requests\": {}, \"ok\": {ok}, \"queue_full\": {full}, \
         \"other\": {other}, \"dropped\": {dropped}, \"wall_us\": {open_wall_us}, \
         \"answered_per_sec\": {:.0}}},",
        clients * burst,
        (ok + full + other) as f64 / (open_wall_us.max(1) as f64 / 1e6)
    );
    let _ = writeln!(out, "  \"server_metrics\": {metrics_result},");
    let _ = writeln!(out, "  \"server_stats\": {stats_result},");
    let _ = writeln!(out, "  \"server_prometheus\": {prom_result}");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write report");
    println!(
        "svc_load: cold mean {:.0} µs over {} requests",
        cold.mean(),
        cold.us.len()
    );
    println!(
        "svc_load: warm mean {:.0} µs over {} requests",
        warm.mean(),
        warm.us.len()
    );
    println!("svc_load: warm speedup {speedup:.1}x, payload mismatches {mismatched}");
    println!(
        "svc_load: open loop {} ok / {} queue_full / {} other / {} dropped in {:.1} ms",
        ok,
        full,
        other,
        dropped,
        open_wall_us as f64 / 1000.0
    );
    println!("svc_load: report written to {out_path}");
    assert_eq!(mismatched, 0, "warm responses must replay cold bytes");
}
