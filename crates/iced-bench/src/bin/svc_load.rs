//! Load generator for the `iced-service` daemon: closed-loop cold/warm
//! phases (content-addressed cache effectiveness), an open-loop burst
//! (backpressure behaviour under saturation), a batch-dedup phase, and —
//! with `--conns N` — a high-connection-count sweep that drives N
//! concurrent sockets from one thread over the same `poll(2)` shim the
//! server's reactor uses, emitting `BENCH_service.json`.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin svc_load -- \
//!     [--quick|--tiny] [--addr HOST:PORT] [--out PATH] [--clients N] \
//!     [--conns N] [--shutdown]
//! ```
//!
//! The report includes true client-side per-request latency percentiles
//! (p50/p95/p99, cold/warm split, and per-connection-sweep), the batch
//! dedup ratio, plus the server's own `metrics`, `stats` (windowed
//! quantiles), and Prometheus expositions.
//!
//! The `--conns` sweep asserts routing end to end: every response must
//! echo its request's unique `id` on the socket that sent it, and the
//! per-connection `req` tokens must keep one connection ordinal with a
//! strictly sequential `seq` — zero misrouted and (chaos unarmed) zero
//! dropped. CI runs `--conns 1000`; a local
//! `ulimit -n 20000 && svc_load --conns 10000` exercises the 10k target.
//!
//! Without `--addr` an in-process server is started on an ephemeral port
//! (self-contained mode, used by local runs). With `--addr` the generator
//! drives an externally started `iced-serviced` (the CI smoke job),
//! retrying the connection for a few seconds while the daemon boots;
//! `--shutdown` sends the `shutdown` verb when done so the daemon drains
//! and exits.

use std::fmt::Write as _;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

use iced_service::poll::{poll, PollFd, POLLIN, POLLOUT};
use iced_service::{Client, Router, RouterConfig, Server, ServiceConfig};

/// Connects via the shared resilient client, exiting with a diagnostic
/// when the daemon never comes up.
fn connect_or_die(addr: &str, budget: Duration) -> Client {
    match Client::connect_retry(addr, budget) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("svc_load: cannot reach {addr}: {e}");
            std::process::exit(1);
        }
    }
}

/// One closed-loop request with the client's retry discipline; transient
/// failures (queue_full, chaos-injected drops and panics) are absorbed by
/// the backoff loop, so what comes back is the server's real answer.
fn round_trip(c: &mut Client, line: &str) -> (String, u128) {
    let t0 = Instant::now();
    let resp = c.request(line).unwrap_or_else(|e| {
        panic!("request exhausted retries: {e}");
    });
    (resp, t0.elapsed().as_micros())
}

/// Latency series summarised for the report.
#[derive(Default)]
struct Series {
    us: Vec<u128>,
}

impl Series {
    fn push(&mut self, v: u128) {
        self.us.push(v);
    }

    fn mean(&self) -> f64 {
        if self.us.is_empty() {
            return 0.0;
        }
        self.us.iter().sum::<u128>() as f64 / self.us.len() as f64
    }

    fn percentile(&self, p: f64) -> u128 {
        if self.us.is_empty() {
            return 0;
        }
        let mut sorted = self.us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    fn render(&self, label: &str) -> String {
        format!(
            "{{\"phase\": \"{label}\", \"requests\": {}, \"mean_us\": {:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            self.us.len(),
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.95),
            self.percentile(0.99),
            self.us.iter().max().copied().unwrap_or(0)
        )
    }
}

/// Canonicalises an envelope for the warm-replay byte-identity check:
/// the `cached` flag and the per-request `req` token are the only fields
/// allowed to differ between a cold response and its warm replay.
fn canonicalize(envelope: &str) -> String {
    let s = envelope.replace("\"cached\":false", "\"cached\":true");
    match (s.find(",\"req\":\""), s.find("\",\"ok\"")) {
        (Some(a), Some(b)) if a < b => format!("{}{}", &s[..a], &s[b + 1..]),
        _ => s,
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn compile_requests(quick: bool, tiny: bool, strategy: &str) -> Vec<String> {
    let kernels: &[&str] = if tiny {
        &["fir", "latnrm"]
    } else if quick {
        &["fir", "latnrm", "fft", "dtw", "spmv", "conv"]
    } else {
        &[
            "fir",
            "latnrm",
            "fft",
            "dtw",
            "spmv",
            "conv",
            "relu",
            "histogram",
            "mvt",
            "gemm",
        ]
    };
    let strategies: Vec<&str> = if !strategy.is_empty() {
        vec![strategy]
    } else if quick || tiny {
        vec!["iced"]
    } else {
        vec!["baseline", "iced"]
    };
    let mut reqs = Vec::new();
    let mut id = 1000;
    for s in strategies {
        for k in kernels {
            reqs.push(format!(
                "{{\"id\":{id},\"verb\":\"compile\",\"kernel\":\"{k}\",\"strategy\":\"{s}\"}}"
            ));
            id += 1;
        }
    }
    reqs
}

/// Outcome of the `--conns` sweep.
#[derive(Default)]
struct ConnsStats {
    connections: usize,
    rounds: usize,
    ok: usize,
    backpressure: usize,
    dropped: usize,
    misrouted: usize,
    wall_us: u128,
}

/// One socket in the connection sweep: closed loop, one request in
/// flight, strict response-order and routing checks.
struct SweepConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Rounds answered OK so far.
    round: usize,
    /// Server-assigned connection ordinal, learned from the first `req`.
    token: Option<u64>,
    /// Last `seq` seen; every answered line must advance it by one.
    seq_seen: u64,
    inflight_id: u64,
    sent_at: Instant,
    done: bool,
    dead: bool,
}

impl SweepConn {
    fn queue_request(&mut self, idx: usize, rounds: usize) {
        if self.round >= rounds {
            self.done = true;
            return;
        }
        // Unique per (connection, round): the routing check.
        self.inflight_id = (idx as u64 + 1) * 1_000_000 + self.round as u64;
        let line = if self.round.is_multiple_of(2) {
            // The same spec on every connection: one cold compile, then
            // cache hits — the sweep measures multiplexing, not mapping.
            format!(
                "{{\"id\":{},\"verb\":\"compile\",\"kernel\":\"fir\",\"strategy\":\"iced\"}}\n",
                self.inflight_id
            )
        } else {
            format!("{{\"id\":{},\"verb\":\"healthz\"}}\n", self.inflight_id)
        };
        self.wbuf.extend_from_slice(line.as_bytes());
        self.sent_at = Instant::now();
    }

    fn flush(&mut self) {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
    }
}

/// Parses `"req":"c<conn>-<seq>"` out of a response line.
fn parse_req_token(resp: &str) -> Option<(u64, u64)> {
    let i = resp.find("\"req\":\"c")? + 8;
    let rest = &resp[i..];
    let end = rest.find('"')?;
    let (conn, seq) = rest[..end].split_once('-')?;
    Some((conn.parse().ok()?, seq.parse().ok()?))
}

/// Drives `n` concurrent connections from this one thread, each running
/// `rounds` closed-loop requests (alternating cached compiles and
/// healthz). Returns per-request latencies plus routing/ordering stats.
fn conns_sweep(addr: &str, n: usize, rounds: usize) -> (Series, ConnsStats) {
    let mut stats = ConnsStats {
        connections: n,
        rounds,
        ..ConnsStats::default()
    };
    let mut lat = Series::default();
    let t0 = Instant::now();
    let mut conns: Vec<SweepConn> = Vec::with_capacity(n);
    for i in 0..n {
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(e) => panic!("conns sweep: connect {} of {n} failed: {e}", i + 1),
        };
        stream.set_nonblocking(true).expect("nonblocking");
        let _ = stream.set_nodelay(true);
        let mut c = SweepConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            round: 0,
            token: None,
            seq_seen: 0,
            inflight_id: 0,
            sent_at: Instant::now(),
            done: false,
            dead: false,
        };
        c.queue_request(i, rounds);
        conns.push(c);
    }

    let budget = Duration::from_secs(300);
    let mut fds: Vec<PollFd> = Vec::with_capacity(n);
    let mut fd_idx: Vec<usize> = Vec::with_capacity(n);
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        fds.clear();
        fd_idx.clear();
        for (i, c) in conns.iter().enumerate() {
            if c.done || c.dead {
                continue;
            }
            let mut interest = POLLIN;
            if c.wpos < c.wbuf.len() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
            fd_idx.push(i);
        }
        if fds.is_empty() {
            break;
        }
        assert!(
            t0.elapsed() < budget,
            "conns sweep stalled: {} connections unfinished after {budget:?}",
            fds.len()
        );
        let _ = poll(&mut fds, 500).expect("poll");
        for (k, pfd) in fds.iter().enumerate() {
            let i = fd_idx[k];
            let c = &mut conns[i];
            if pfd.writable() {
                c.flush();
            }
            if !pfd.readable() || c.dead {
                continue;
            }
            match c.stream.read(&mut scratch) {
                Ok(0) => c.dead = true,
                Ok(read) => {
                    c.rbuf.extend_from_slice(&scratch[..read]);
                    while let Some(pos) = c.rbuf.iter().position(|&b| b == b'\n') {
                        let line: Vec<u8> = c.rbuf.drain(..=pos).collect();
                        let resp = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                        // Ordering: one connection ordinal, sequential seq.
                        if let Some((tok, seq)) = parse_req_token(&resp) {
                            match c.token {
                                None => c.token = Some(tok),
                                Some(t) if t != tok => stats.misrouted += 1,
                                Some(_) => {}
                            }
                            if seq != c.seq_seen + 1 {
                                stats.misrouted += 1;
                            }
                            c.seq_seen = seq;
                        } else {
                            stats.misrouted += 1;
                        }
                        if resp.contains("\"ok\":true") {
                            // Routing: the echoed id must be ours.
                            if !resp.contains(&format!("\"id\":{},", c.inflight_id)) {
                                stats.misrouted += 1;
                            }
                            stats.ok += 1;
                            lat.push(c.sent_at.elapsed().as_micros());
                            c.round += 1;
                            c.queue_request(i, rounds);
                        } else if resp.contains("queue_full") || resp.contains("too_many_requests")
                        {
                            // Backpressure: replay the same round.
                            stats.backpressure += 1;
                            c.queue_request(i, rounds);
                        } else {
                            // A permanent error in this workload means a
                            // misdelivered or corrupted response.
                            stats.misrouted += 1;
                            c.round += 1;
                            c.queue_request(i, rounds);
                        }
                    }
                    c.flush();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => c.dead = true,
            }
        }
        for c in conns.iter_mut() {
            if c.dead && !c.done {
                stats.dropped += rounds - c.round;
                c.done = true;
            }
        }
    }
    stats.wall_us = t0.elapsed().as_micros();
    (lat, stats)
}

/// Reads this process's soft open-file limit from `/proc/self/limits`
/// (None off Linux or if the file is unreadable).
fn fd_soft_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    // "Max open files   1024   524288   files" — token 3 is the soft limit.
    line.split_whitespace().nth(3)?.parse().ok()
}

/// Fails fast — before any socket is opened — when the planned sweep
/// would exhaust the fd budget. In-process mode holds BOTH ends of every
/// connection (client socket + the server's accepted socket), so each
/// connection costs ~2 fds; external mode costs 1. A margin covers the
/// server's listener, wake pipes, spill files, and stdio.
fn ensure_fd_budget(conns: usize, in_process: bool) {
    const MARGIN: u64 = 128;
    let per_conn: u64 = if in_process { 2 } else { 1 };
    let needed = conns as u64 * per_conn + MARGIN;
    if let Some(soft) = fd_soft_limit() {
        if needed > soft {
            eprintln!(
                "svc_load: --conns {conns} needs ~{needed} file descriptors \
                 ({per_conn} per connection in {} mode + {MARGIN} margin) but the \
                 soft limit is {soft}; raise it (`ulimit -n {needed}`) or lower --conns",
                if in_process { "in-process" } else { "external" }
            );
            std::process::exit(1);
        }
    }
}

/// Extracts the first `"name":<u64>` field from a JSON text.
fn field_u64(resp: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    resp.find(&pat)
        .map(|i| {
            resp[i + pat.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .and_then(|d| d.parse().ok())
        .unwrap_or(0)
}

/// One shard-count step of the `--cluster` sweep.
struct ClusterStep {
    shards: usize,
    cold_ms: f64,
    warm_rps: f64,
    warm_ok: usize,
    warm_hits: usize,
    mismatched: usize,
    misrouted: usize,
}

/// Simulate-request bodies (everything after `"id":N,`): one cheap
/// kernel, distinct seeds. Every body is a distinct cache key whose
/// rendered result has near-identical size, so the working set's byte
/// volume is `n × entry_bytes` and LRU capacity eviction can be driven
/// precisely against a fixed per-shard budget.
fn cluster_bodies(n: usize) -> Vec<String> {
    (0..n)
        .map(|s| {
            format!("\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":200,\"seed\":{s}")
        })
        .collect()
}

/// Measures the rendered result size of one sweep cache entry by running
/// a few samples against a throwaway shard with a roomy cache, so the
/// working set stays correctly sized as result renderings evolve.
fn calibrate_entry_bytes() -> usize {
    let shard = Server::start(ServiceConfig::default()).expect("calibration shard");
    let mut c = connect_or_die(&shard.local_addr().to_string(), Duration::from_secs(10));
    let (mut total, mut count) = (0usize, 0usize);
    for (i, body) in cluster_bodies(6).iter().enumerate() {
        let (resp, _) = round_trip(&mut c, &format!("{{\"id\":{},{body}}}", 100 + i));
        assert!(resp.contains("\"ok\":true"), "calibration: {resp}");
        let start = resp.find(",\"result\":").expect("result object") + ",\"result\":".len();
        total += resp.trim_end().len() - start - 1; // drop the envelope's closing brace
        count += 1;
    }
    shard.shutdown();
    shard.wait();
    (total / count).max(1)
}

/// Boots `n` in-process shards plus a router fronting them, all sized so
/// the sweep measures cache capacity rather than pipeline caps.
fn boot_cluster(
    n: usize,
    replicate_hot: usize,
    cache_bytes: Option<u64>,
) -> (Vec<Option<Server>>, Vec<String>, Router) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let cfg = ServiceConfig {
            pipeline: 2048,
            queue_cap: 4096,
            cache_bytes,
            ..ServiceConfig::default()
        };
        let s = Server::start(cfg).expect("start shard");
        addrs.push(s.local_addr().to_string());
        servers.push(Some(s));
    }
    let router = Router::start(RouterConfig {
        shards: addrs.clone(),
        replicate_hot,
        pipeline: 2048,
        shard_pipeline: 2048,
        ..RouterConfig::default()
    })
    .expect("start router");
    (servers, addrs, router)
}

/// Drives `threads` connections through the router, each pipelining the
/// whole request set `rounds` times. Returns (requests/s, ok, warm hits,
/// misrouted).
fn warm_drive(
    addr: &str,
    threads: usize,
    rounds: usize,
    bodies: &[String],
) -> (f64, usize, usize, usize) {
    let t0 = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let addr = addr.to_string();
            let bodies = bodies.to_vec();
            std::thread::spawn(move || {
                let stream = std::net::TcpStream::connect(&addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(300)))
                    .unwrap();
                stream.set_nodelay(true).unwrap();
                let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let (mut ok, mut hits, mut misrouted) = (0usize, 0usize, 0usize);
                for r in 0..rounds {
                    // Pipeline the full set in ONE write, then collect:
                    // responses must come back in send order with the
                    // ids we chose.
                    let mut batch = String::new();
                    for (i, body) in bodies.iter().enumerate() {
                        let id = ((t + 1) * 10_000_000 + r * 100_000 + i) as u64;
                        let _ = writeln!(batch, "{{\"id\":{id},{body}}}");
                    }
                    writer.write_all(batch.as_bytes()).expect("send");
                    for i in 0..bodies.len() {
                        let id = ((t + 1) * 10_000_000 + r * 100_000 + i) as u64;
                        let mut resp = String::new();
                        use std::io::BufRead as _;
                        reader.read_line(&mut resp).expect("recv");
                        if !resp.starts_with(&format!("{{\"id\":{id},")) {
                            misrouted += 1;
                        } else if resp.contains("\"ok\":true") {
                            ok += 1;
                            if resp.contains("\"cached\":true") {
                                hits += 1;
                            }
                        }
                    }
                }
                (ok, hits, misrouted)
            })
        })
        .collect();
    let (mut ok, mut hits, mut misrouted) = (0usize, 0usize, 0usize);
    for h in handles {
        let (o, hi, m) = h.join().expect("warm driver");
        ok += o;
        hits += hi;
        misrouted += m;
    }
    let wall = t0.elapsed().as_secs_f64();
    (ok as f64 / wall.max(1e-9), ok, hits, misrouted)
}

/// The kill-one-shard phase: a hot entry replicated to its successor must
/// still answer warm after its home shard dies mid-run. The kill point
/// comes from an iced-fault schedule so the scenario is deterministic.
fn cluster_failover() -> (bool, bool) {
    const REPLICATE_AFTER: usize = 2;
    let (mut servers, addrs, router) = boot_cluster(3, REPLICATE_AFTER, None);
    let raddr = router.local_addr().to_string();

    let body = "\"verb\":\"compile\",\"kernel\":\"fft\",\"unroll\":2,\"strategy\":\"iced\"";
    let req_line = format!("{{\"id\":1,{body}}}");
    let req = iced_service::proto::parse_request(&req_line).expect("valid request");
    let cfg = iced::arch::CgraConfig::iced_prototype().canonical_hash();
    let key = iced_service::request_key(cfg, &req).expect("compile has a key");
    let ids: Vec<u64> = addrs.iter().map(|a| iced_hash::shard_id(a)).collect();
    let home = iced_hash::rendezvous_rank(key.0, key.1, &ids)[0];
    let plan = iced::fault::FaultPlan::empty()
        .with_island_failure(iced::arch::IslandId(home as u16), REPLICATE_AFTER + 1);
    let kill_after = plan.midrun[0].after_inputs;

    let mut c = connect_or_die(&raddr, Duration::from_secs(10));
    let (cold, _) = round_trip(&mut c, &req_line);
    assert!(cold.contains("\"ok\":true"), "failover cold: {cold}");
    for _ in 1..kill_after {
        let (warm, _) = round_trip(&mut c, &req_line);
        assert!(warm.contains("\"ok\":true"), "failover warm: {warm}");
    }
    let (stats, _) = round_trip(&mut c, "{\"id\":90,\"verb\":\"metrics\"}");
    assert!(
        field_u64(&stats, "replicated") >= 1,
        "hot replication never triggered: {stats}"
    );

    let victim = servers[home].take().expect("home shard alive");
    victim.shutdown();
    victim.wait();

    let (after, _) = round_trip(&mut c, &req_line);
    let survived = after.contains("\"cached\":true");
    let bytes_match = canonicalize(&cold) == canonicalize(&after);

    router.shutdown();
    router.wait();
    for s in servers.into_iter().flatten() {
        s.wait();
    }
    (survived, bytes_match)
}

/// The `--cluster` mode: sweeps shard counts through an in-process
/// router, checking byte-identity against the 1-shard baseline and
/// measuring warm-hit throughput scaling, then runs the failover phase.
/// Writes `BENCH_cluster.json`.
///
/// The scaling axis is deliberately **aggregate cache capacity**, not
/// core count: every shard gets the same small LRU budget, and the
/// working set is sized to ~1.7× one shard's budget. A single shard
/// cycles through more keys than it can hold, so the LRU evicts each
/// entry before its replay arrives and nearly every request recomputes
/// cold; four shards partition the same keys into quarters that fit
/// comfortably, so the drive runs at the warm-hit rate. That is exactly
/// what adding shards buys a content-addressed service in production,
/// and — unlike raw request-pumping — it measures the same thing on a
/// 1-core CI container as on a 64-core box.
fn run_cluster(quick: bool, tiny: bool, out_path: &str) {
    let shard_counts: &[usize] = if tiny {
        &[1, 2]
    } else if quick {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    let threads = 2;
    let rounds = if tiny {
        2
    } else if quick {
        3
    } else {
        5
    };
    let budget: u64 = if tiny { 16 << 10 } else { 48 << 10 };
    let entry_bytes = calibrate_entry_bytes();
    let keys = ((budget as f64 * 1.7 / entry_bytes as f64).ceil() as usize).clamp(64, 20_000);
    let bodies = cluster_bodies(keys);
    // ~2 fds per in-process connection: driver conns + S router links.
    ensure_fd_budget(threads + shard_counts.last().unwrap() + 8, true);
    println!(
        "svc_load: cluster sweep: {keys} distinct keys × ~{entry_bytes} B \
         vs {} KiB per-shard cache",
        budget >> 10
    );

    let mut baseline: Vec<String> = Vec::new();
    let mut steps: Vec<ClusterStep> = Vec::new();
    for &n in shard_counts {
        let (servers, _addrs, router) = boot_cluster(n, 0, Some(budget));
        let raddr = router.local_addr().to_string();
        let mut c = connect_or_die(&raddr, Duration::from_secs(10));

        // Cold pass: populate every home shard, and byte-compare each
        // response against the 1-shard baseline.
        let mut mismatched = 0usize;
        let t_cold = Instant::now();
        for (i, body) in bodies.iter().enumerate() {
            let (resp, _) = round_trip(&mut c, &format!("{{\"id\":{},{body}}}", 30_000_000 + i));
            assert!(resp.contains("\"ok\":true"), "cluster cold: {resp}");
            let canon = canonicalize(&resp);
            if n == shard_counts[0] {
                baseline.push(canon);
            } else if canon != baseline[i] {
                mismatched += 1;
            }
        }
        let cold_ms = t_cold.elapsed().as_secs_f64() * 1000.0;

        let (warm_rps, warm_ok, warm_hits, misrouted) =
            warm_drive(&raddr, threads, rounds, &bodies);
        println!(
            "svc_load: cluster {n} shard(s): cold {cold_ms:.1} ms, \
             warm {warm_rps:.0} req/s ({warm_ok} ok, {:.0}% hits, {misrouted} misrouted, \
             {mismatched} mismatched)",
            100.0 * warm_hits as f64 / warm_ok.max(1) as f64
        );
        steps.push(ClusterStep {
            shards: n,
            cold_ms,
            warm_rps,
            warm_ok,
            warm_hits,
            mismatched,
            misrouted,
        });

        router.shutdown();
        router.wait();
        for s in servers.into_iter().flatten() {
            s.wait();
        }
    }

    let (survived, bytes_match) = cluster_failover();
    println!(
        "svc_load: failover: replicated warm hit {} (bytes {})",
        if survived { "survived" } else { "LOST" },
        if bytes_match { "identical" } else { "DIVERGED" }
    );

    let rps_at = |n: usize| {
        steps
            .iter()
            .find(|s| s.shards == n)
            .map(|s| s.warm_rps)
            .unwrap_or(0.0)
    };
    let scaling_4x = if rps_at(1) > 0.0 && rps_at(4) > 0.0 {
        rps_at(4) / rps_at(1)
    } else {
        0.0
    };

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"mode\": \"cluster\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"driver_threads\": {threads},");
    let _ = writeln!(out, "  \"distinct_keys\": {},", bodies.len());
    let _ = writeln!(out, "  \"entry_bytes\": {entry_bytes},");
    let _ = writeln!(out, "  \"cache_bytes_per_shard\": {budget},");
    let _ = writeln!(
        out,
        "  \"working_set_bytes\": {},",
        bodies.len() * entry_bytes
    );
    let _ = writeln!(out, "  \"sweep\": [");
    for (i, s) in steps.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"shards\": {}, \"cold_ms\": {:.1}, \"warm_rps\": {:.0}, \
             \"warm_ok\": {}, \"hit_rate\": {:.3}, \"mismatched\": {}, \"misrouted\": {}}}{}",
            s.shards,
            s.cold_ms,
            s.warm_rps,
            s.warm_ok,
            s.warm_hits as f64 / s.warm_ok.max(1) as f64,
            s.mismatched,
            s.misrouted,
            if i + 1 < steps.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"warm_scaling_4_vs_1\": {scaling_4x:.2},");
    let _ = writeln!(
        out,
        "  \"failover\": {{\"survived_warm\": {survived}, \"bytes_identical\": {bytes_match}}}"
    );
    out.push_str("}\n");
    std::fs::write(out_path, &out).expect("write cluster report");
    println!("svc_load: cluster report written to {out_path}");
    if steps.iter().any(|s| s.shards == 4) {
        println!("svc_load: warm scaling at 4 shards: {scaling_4x:.2}x vs 1");
    }

    let mismatched: usize = steps.iter().map(|s| s.mismatched).sum();
    let misrouted: usize = steps.iter().map(|s| s.misrouted).sum();
    assert_eq!(mismatched, 0, "router responses diverged from baseline");
    assert_eq!(misrouted, 0, "responses landed out of order");
    if steps.iter().any(|s| s.shards == 4) {
        assert!(
            scaling_4x >= 3.0,
            "aggregate-capacity scaling regressed: {scaling_4x:.2}x at 4 shards vs 1"
        );
    }
    assert!(survived, "replicated warm hit lost after shard kill");
    assert!(bytes_match, "failover response bytes diverged");
}

const USAGE: &str = "usage: svc_load [--quick|--tiny] [--addr HOST:PORT] [--out PATH] \
[--clients N] [--conns N] [--fuzz N] [--cluster] [--strategy NAME] [--shutdown]\n\
  --quick / --tiny   smaller request grids (CI / e2e-test sized)\n\
  --strategy NAME    compile every closed-loop request under this strategy\n\
                     (baseline, baseline+pg, per-tile, iced, heuristic,\n\
                     exact, auto) instead of the default grid\n\
  --addr HOST:PORT   drive an external daemon (default: in-process server)\n\
  --out PATH         report path (default BENCH_service.json, or\n\
                     BENCH_cluster.json with --cluster)\n\
  --clients N        open-loop client threads\n\
  --conns N          high-connection-count sweep; needs ~2 file descriptors\n\
                     per connection in in-process mode (1 external) — the\n\
                     fd budget is preflighted against the soft ulimit and\n\
                     the run aborts early if it cannot fit\n\
  --fuzz N           compile N seeded fuzzer kernels (ICED_FUZZ_SEED base) as\n\
                     inline-DFG requests, twice; every answer must be ok or a\n\
                     structured typed error, byte-stable across passes\n\
  --cluster          shard-count sweep (1..8 in-process shards behind a\n\
                     router) + kill-one-shard failover; writes BENCH_cluster.json\n\
  --shutdown         send the shutdown verb to the external daemon when done";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("{USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    // --tiny is the smallest honest run (2 kernels, 2 clients): used by
    // the e2e observability test, where debug-build wall clock matters.
    let tiny = args.iter().any(|a| a == "--tiny");
    let want_shutdown = args.iter().any(|a| a == "--shutdown");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if args.iter().any(|a| a == "--cluster") {
        let out = flag("--out").unwrap_or_else(|| "BENCH_cluster.json".into());
        run_cluster(quick, tiny, &out);
        return;
    }
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".into());
    let strategy = flag("--strategy").unwrap_or_default();
    const STRATEGIES: &[&str] = &[
        "baseline",
        "baseline+pg",
        "per-tile",
        "iced",
        "heuristic",
        "exact",
        "auto",
    ];
    if !strategy.is_empty() && !STRATEGIES.contains(&strategy.as_str()) {
        eprintln!("svc_load: unknown --strategy {strategy} (expected one of {STRATEGIES:?})");
        std::process::exit(1);
    }
    let conns_n: usize = flag("--conns").and_then(|v| v.parse().ok()).unwrap_or(0);
    let clients: usize = flag("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if tiny {
            2
        } else if quick {
            4
        } else {
            8
        });

    // Self-contained mode starts an in-process server on an ephemeral
    // port; --addr drives an external daemon instead.
    let external = flag("--addr");
    if conns_n > 0 {
        // Fail before any socket opens, not mid-sweep with EMFILE.
        ensure_fd_budget(conns_n, external.is_none());
    }
    let (server, addr) = match &external {
        Some(a) => (None, a.clone()),
        None => {
            let cfg = ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: clients.clamp(1, 8),
                // A conns sweep keeps up to one work request per
                // connection in flight; size the queue and the connection
                // ceiling so the sweep measures multiplexing, not limits.
                queue_cap: (conns_n + 64).max(64),
                max_conns: (conns_n + 64).max(4096),
                // Honor ICED_SVC_CHAOS in self-contained mode too, so a
                // local `ICED_SVC_CHAOS=1 svc_load --quick` is a one-line
                // chaos smoke test.
                chaos: iced_service::ChaosInjector::seed_from_env(),
                ..ServiceConfig::default()
            };
            let s = Server::start(cfg).expect("start in-process server");
            let a = s.local_addr().to_string();
            (Some(s), a)
        }
    };

    let mut c = connect_or_die(&addr, Duration::from_secs(10));
    let (health, _) = round_trip(&mut c, "{\"id\":1,\"verb\":\"healthz\"}");
    assert!(health.contains("\"ok\":true"), "daemon unhealthy: {health}");

    // Phase 1+2: closed loop, same request set twice. Responses are
    // classified by the server's own `cached` marker, so an already-warm
    // external daemon still produces honest numbers.
    let reqs = compile_requests(quick, tiny, &strategy);
    let mut cold = Series::default();
    let mut warm = Series::default();
    let mut mismatched = 0usize;
    let mut first_pass: Vec<String> = Vec::new();
    for pass in 0..2 {
        for (i, req) in reqs.iter().enumerate() {
            let (resp, us) = round_trip(&mut c, req);
            assert!(resp.contains("\"ok\":true"), "compile failed: {resp}");
            if resp.contains("\"cached\":true") {
                warm.push(us);
            } else {
                cold.push(us);
            }
            if pass == 0 {
                first_pass.push(resp);
            } else {
                // Byte-identity check: warm payloads replay cold bytes.
                let cold_resp = &first_pass[i];
                if canonicalize(cold_resp) != canonicalize(&resp) {
                    mismatched += 1;
                }
            }
        }
    }

    // Phase 2b: strategy cache keying — the same kernel under the exact
    // and heuristic backends must resolve to distinct cache entries. The
    // unroll=2 spec is off the phase-1 grid, so in self-contained mode
    // the exact request is provably the first sight of its key.
    let heur_req = r#"{"id":8000,"verb":"compile","kernel":"fir","unroll":2,"strategy":"iced"}"#;
    let exact_req = r#"{"id":8001,"verb":"compile","kernel":"fir","unroll":2,"strategy":"exact"}"#;
    let (h_first, _) = round_trip(&mut c, heur_req);
    assert!(h_first.contains("\"ok\":true"), "{h_first}");
    let (x_first, _) = round_trip(&mut c, exact_req);
    assert!(x_first.contains("\"ok\":true"), "{x_first}");
    if external.is_none() {
        assert!(
            x_first.contains("\"cached\":false"),
            "exact request warm-hit a heuristic cache entry: {x_first}"
        );
    }
    // Key separation also holds against an already-warm daemon: each
    // backend's payload names its own strategy and only the exact one
    // carries a certificate, so a shared key would replay the wrong one.
    assert!(
        h_first.contains("\"strategy\":\"iced\"") && !h_first.contains("\"proof\":"),
        "heuristic payload shape: {h_first}"
    );
    assert!(
        x_first.contains("\"strategy\":\"exact\"") && x_first.contains("\"proof\":"),
        "exact payload must carry its certificate: {x_first}"
    );
    let (x_warm, _) = round_trip(&mut c, exact_req);
    assert!(x_warm.contains("\"cached\":true"), "{x_warm}");
    assert_eq!(
        canonicalize(&x_first),
        canonicalize(&x_warm),
        "exact responses must be byte-stable"
    );
    println!("svc_load: strategy keying: exact and heuristic entries isolated");

    // Phase 3: open loop — every client fires its whole batch without
    // waiting, then collects. Saturation is expected; queue_full replies
    // are part of the contract, not failures.
    let burst = if tiny {
        4
    } else if quick {
        12
    } else {
        40
    };
    let t_open = Instant::now();
    let addr2 = addr.clone();
    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let addr = addr2.clone();
            std::thread::spawn(move || {
                let mut c = connect_or_die(&addr, Duration::from_secs(10)).with_salt(ci as u64 + 1);
                // Pipelined fire-then-collect. A connection a chaos-mode
                // daemon tears down takes its in-flight responses with it;
                // those count as `dropped`, not as protocol failures.
                let (mut ok, mut full, mut other, mut dropped) = (0usize, 0usize, 0usize, 0usize);
                let mut pending = 0usize;
                for r in 0..burst {
                    let seed = ci * 1000 + r;
                    let line = format!(
                        "{{\"id\":{seed},\"verb\":\"simulate\",\"kernel\":\"fir\",\
                         \"iterations\":2000,\"seed\":{seed}}}"
                    );
                    if c.send(&line).is_ok() {
                        pending += 1;
                    } else {
                        // The dead connection's unanswered requests are
                        // gone too; the next send reconnects.
                        dropped += pending + 1;
                        pending = 0;
                    }
                }
                for _ in 0..pending {
                    match c.recv() {
                        Ok(resp) if resp.contains("\"ok\":true") => ok += 1,
                        // Both backpressure answers — a saturated worker
                        // queue and the per-connection pipeline cap — are
                        // the contract under an open-loop burst.
                        Ok(resp)
                            if resp.contains("queue_full")
                                || resp.contains("too_many_requests") =>
                        {
                            full += 1;
                        }
                        Ok(_) => other += 1,
                        Err(_) => {
                            dropped += pending - (ok + full + other);
                            break;
                        }
                    }
                }
                (ok, full, other, dropped)
            })
        })
        .collect();
    let (mut ok, mut full, mut other, mut dropped) = (0usize, 0usize, 0usize, 0usize);
    for h in handles {
        let (o, f, x, d) = h.join().expect("open-loop client");
        ok += o;
        full += f;
        other += x;
        dropped += d;
    }
    let open_wall_us = t_open.elapsed().as_micros();

    let result_of = |resp: &str| {
        resp.find("\"result\":")
            .map(|i| resp[i + 9..resp.len() - 1].to_string())
            .unwrap_or_else(|| "{}".into())
    };

    // Phase 4: batch — intra-batch dedup and byte identity with the
    // standalone verb. Three identical compiles plus two identical others
    // plus one bad slot: 6 slots, 2 unique computations.
    let item_a = r#"{"verb":"compile","kernel":"fir","strategy":"iced"}"#;
    let item_b = r#"{"verb":"compile","kernel":"latnrm","strategy":"iced"}"#;
    let item_bad = r#"{"verb":"compile","kernel":"nosuch"}"#;
    let (single, _) = round_trip(
        &mut c,
        "{\"id\":9000,\"verb\":\"compile\",\"kernel\":\"fir\",\"strategy\":\"iced\"}",
    );
    assert!(single.contains("\"ok\":true"), "compile failed: {single}");
    let single_result = result_of(&single);
    let batch_line = format!(
        "{{\"id\":9001,\"verb\":\"batch\",\"items\":[{item_a},{item_a},{item_a},{item_b},{item_b},{item_bad}]}}"
    );
    let (batch_resp, batch_us) = round_trip(&mut c, &batch_line);
    assert!(
        batch_resp.contains("\"ok\":true"),
        "batch failed: {batch_resp}"
    );
    let batch_slots = field_u64(&batch_resp, "count");
    let batch_unique = field_u64(&batch_resp, "unique");
    let batch_deduped = field_u64(&batch_resp, "deduped");
    assert_eq!(batch_slots, 6, "slot count: {batch_resp}");
    assert_eq!(batch_unique, 2, "identical specs must dedup: {batch_resp}");
    assert_eq!(batch_deduped, 4, "deduped = count - unique: {batch_resp}");
    assert!(
        batch_resp.contains("\"ok\":false"),
        "the bad slot must carry a structured error: {batch_resp}"
    );
    // Helper path: split slots, byte-compare against the standalone verb.
    let spec_a = r#"{"kernel":"fir","strategy":"iced"}"#;
    let spec_b = r#"{"kernel":"latnrm","strategy":"iced"}"#;
    let slots = c
        .compile_batch(9002, &[spec_a, spec_a, spec_a, spec_b])
        .expect("compile_batch");
    assert_eq!(slots.len(), 4, "one response slot per request slot");
    for s in &slots {
        assert!(s.ok, "batch slot failed: {}", s.raw);
    }
    assert_eq!(
        result_of(&slots[0].raw),
        single_result,
        "a batch slot's result must be byte-identical to the standalone verb's"
    );
    assert_eq!(result_of(&slots[1].raw), result_of(&slots[0].raw));
    let sim_spec = r#"{"kernel":"fir","iterations":2000,"seed":1}"#;
    let sims = c
        .simulate_batch(9003, &[sim_spec, sim_spec])
        .expect("simulate_batch");
    assert_eq!(sims.len(), 2);
    assert!(sims.iter().all(|s| s.ok), "simulate batch slots failed");
    assert_eq!(result_of(&sims[0].raw), result_of(&sims[1].raw));
    let (empty, _) = round_trip(&mut c, "{\"id\":9004,\"verb\":\"batch\",\"items\":[]}");
    assert!(
        empty.contains("\"count\":0") && empty.contains("\"ok\":true"),
        "empty batch must succeed with zero slots: {empty}"
    );
    println!(
        "svc_load: batch {batch_slots} slots -> {batch_unique} unique \
         (dedup ratio {:.2}) in {:.1} ms",
        batch_deduped as f64 / batch_slots.max(1) as f64,
        batch_us as f64 / 1000.0
    );

    // Phase 4c (--fuzz): corpus-driven compiles — seeded fuzzer kernels
    // shipped as inline-DFG requests. Every answer must be a success or a
    // structured typed error, and a second pass must replay byte-identical
    // cached responses.
    let fuzz_reqs: usize = if args.iter().any(|a| a == "--fuzz") {
        flag("--fuzz").and_then(|v| v.parse().ok()).unwrap_or(32)
    } else {
        0
    };
    let fuzz_stats = if fuzz_reqs > 0 {
        use iced::fuzz::gen::{generate, GenOptions};
        let gopts = GenOptions::default();
        let seed_base = iced::fuzz::env_seed();
        let (mut ok, mut structured, mut mismatched) = (0usize, 0usize, 0usize);
        let mut first: Vec<String> = Vec::new();
        let t_fuzz = Instant::now();
        for pass in 0..2 {
            let mut slot = 0usize;
            for i in 0..fuzz_reqs {
                let seed = seed_base.wrapping_add(i as u64);
                let Ok(dfg) = generate(seed, &gopts) else {
                    // Generator rejections are typed and counted, not sent.
                    continue;
                };
                // Same id across passes: the id is echoed back, and the
                // second pass must replay byte-identical responses.
                let line = format!(
                    "{{\"id\":{},\"verb\":\"compile\",\"dfg\":\"{}\"}}",
                    20_000 + i,
                    json_escape(&iced::dfg::text::to_text(&dfg))
                );
                let (resp, _) = round_trip(&mut c, &line);
                if resp.contains("\"ok\":true") {
                    ok += 1;
                } else {
                    assert!(
                        resp.contains("\"code\":\"") && resp.contains("\"message\":\""),
                        "fuzzed compile must fail structurally: {resp}"
                    );
                    structured += 1;
                }
                if pass == 0 {
                    first.push(canonicalize(&resp));
                } else {
                    // Both passes skip the same generator-rejected seeds,
                    // so slot order lines up across passes.
                    if canonicalize(&resp) != first[slot] {
                        mismatched += 1;
                    }
                    slot += 1;
                }
            }
        }
        assert_eq!(
            mismatched, 0,
            "fuzzed compile responses must be byte-stable across passes"
        );
        println!(
            "svc_load: fuzz phase: {fuzz_reqs} kernels x 2 passes -> {ok} ok, \
             {structured} structured rejections in {:.1} ms",
            t_fuzz.elapsed().as_micros() as f64 / 1000.0
        );
        Some((ok, structured))
    } else {
        None
    };

    // Phase 5 (--conns N): the high-connection-count sweep.
    let chaos_armed = std::env::var("ICED_SVC_CHAOS").is_ok_and(|v| !v.is_empty());
    let sweep = if conns_n > 0 {
        const SWEEP_ROUNDS: usize = 4;
        println!("svc_load: sweeping {conns_n} connections x {SWEEP_ROUNDS} rounds");
        let (lat, stats) = conns_sweep(&addr, conns_n, SWEEP_ROUNDS);
        println!(
            "svc_load: conns sweep {} ok / {} backpressure / {} dropped / {} misrouted \
             over {} connections in {:.1} ms",
            stats.ok,
            stats.backpressure,
            stats.dropped,
            stats.misrouted,
            stats.connections,
            stats.wall_us as f64 / 1000.0
        );
        assert_eq!(stats.misrouted, 0, "responses landed on the wrong socket");
        if !chaos_armed {
            assert_eq!(stats.dropped, 0, "connections lost without chaos armed");
            assert_eq!(
                stats.ok,
                conns_n * SWEEP_ROUNDS,
                "every round must complete"
            );
        }
        Some((lat, stats))
    } else {
        None
    };

    let (metrics, _) = round_trip(&mut c, "{\"id\":2,\"verb\":\"metrics\"}");
    let metrics_result = result_of(&metrics);
    // Windowed quantile view plus the Prometheus text exposition, so the
    // report carries every metric family the daemon can render.
    let (stats, _) = round_trip(&mut c, "{\"id\":4,\"verb\":\"stats\"}");
    let stats_result = result_of(&stats);
    let (prom, _) = round_trip(
        &mut c,
        "{\"id\":5,\"verb\":\"stats\",\"format\":\"prometheus\"}",
    );
    let prom_result = result_of(&prom);

    if want_shutdown || external.is_none() {
        // Under chaos the shutdown *response* can be torn even though the
        // drain began; a retry may then find the listener already gone.
        // Either way the daemon is draining, which is what we asked for.
        match c.request("{\"id\":3,\"verb\":\"shutdown\"}") {
            Ok(bye) => assert!(
                bye.contains("\"ok\":true") || bye.contains("shutting_down"),
                "shutdown failed: {bye}"
            ),
            Err(e) => eprintln!("svc_load: shutdown response lost ({e}); daemon draining"),
        }
    }
    if let Some(s) = server {
        s.wait();
    }

    let speedup = if warm.us.is_empty() {
        0.0
    } else {
        cold.mean() / warm.mean().max(1.0)
    };
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"mode\": \"{}\",",
        if external.is_some() {
            "external"
        } else {
            "in-process"
        }
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"clients\": {clients},");
    let _ = writeln!(
        out,
        "  \"strategy\": \"{}\",",
        if strategy.is_empty() {
            "default-grid"
        } else {
            &strategy
        }
    );
    // The phase-2b assertions panicked already if keying ever crossed.
    let _ = writeln!(out, "  \"strategy_keying\": \"isolated\",");
    let _ = writeln!(out, "  \"closed_loop\": [");
    let _ = writeln!(out, "    {},", cold.render("cold"));
    let _ = writeln!(out, "    {}", warm.render("warm"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"warm_speedup\": {speedup:.1},");
    let _ = writeln!(out, "  \"warm_payload_mismatches\": {mismatched},");
    let _ = writeln!(
        out,
        "  \"open_loop\": {{\"requests\": {}, \"ok\": {ok}, \"queue_full\": {full}, \
         \"other\": {other}, \"dropped\": {dropped}, \"wall_us\": {open_wall_us}, \
         \"answered_per_sec\": {:.0}}},",
        clients * burst,
        (ok + full + other) as f64 / (open_wall_us.max(1) as f64 / 1e6)
    );
    let _ = writeln!(
        out,
        "  \"batch\": {{\"slots\": {batch_slots}, \"unique\": {batch_unique}, \
         \"deduped\": {batch_deduped}, \"dedup_ratio\": {:.2}, \"latency_us\": {batch_us}}},",
        batch_deduped as f64 / batch_slots.max(1) as f64
    );
    if let Some((fuzz_ok, fuzz_structured)) = fuzz_stats {
        let _ = writeln!(
            out,
            "  \"fuzz\": {{\"kernels\": {fuzz_reqs}, \"passes\": 2, \"ok\": {fuzz_ok}, \
             \"structured_rejections\": {fuzz_structured}}},"
        );
    }
    if let Some((lat, stats)) = &sweep {
        let _ = writeln!(
            out,
            "  \"conns\": {{\"connections\": {}, \"rounds\": {}, \"ok\": {}, \
             \"backpressure\": {}, \"dropped\": {}, \"misrouted\": {}, \
             \"wall_us\": {}, \"latency\": {}}},",
            stats.connections,
            stats.rounds,
            stats.ok,
            stats.backpressure,
            stats.dropped,
            stats.misrouted,
            stats.wall_us,
            lat.render("conns")
        );
    }
    let _ = writeln!(out, "  \"server_metrics\": {metrics_result},");
    let _ = writeln!(out, "  \"server_stats\": {stats_result},");
    let _ = writeln!(out, "  \"server_prometheus\": {prom_result}");
    out.push_str("}\n");

    std::fs::write(&out_path, &out).expect("write report");
    println!(
        "svc_load: cold mean {:.0} µs over {} requests",
        cold.mean(),
        cold.us.len()
    );
    println!(
        "svc_load: warm mean {:.0} µs over {} requests",
        warm.mean(),
        warm.us.len()
    );
    println!("svc_load: warm speedup {speedup:.1}x, payload mismatches {mismatched}");
    println!(
        "svc_load: open loop {} ok / {} queue_full / {} other / {} dropped in {:.1} ms",
        ok,
        full,
        other,
        dropped,
        open_wall_us as f64 / 1000.0
    );
    println!("svc_load: report written to {out_path}");
    assert_eq!(mismatched, 0, "warm responses must replay cold bytes");
}
