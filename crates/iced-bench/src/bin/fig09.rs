//! Regenerates **Figure 9**: average tile utilization per kernel for the
//! baseline, per-tile DVFS + power-gating, and ICED, at unroll factors 1
//! and 2 (paper: suite average rises 33 % → 76 % ≈ 2.3× at UF1). The
//! (unroll × kernel) grid is swept in parallel (`ICED_BENCH_THREADS` to
//! pin the worker count); tables print in figure order regardless.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig09
//! ```

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};
use iced_bench::{emit_csv, par_sweep, pct};

fn run() {
    let tc = Toolchain::prototype();
    let cells: Vec<(UnrollFactor, Kernel)> = UnrollFactor::ALL
        .into_iter()
        .flat_map(|uf| Kernel::STANDALONE.into_iter().map(move |k| (uf, k)))
        .collect();
    // Three compiles per cell — the unit of sweep work.
    let measured = par_sweep(&cells, |&(uf, k)| {
        let dfg = k.dfg(uf);
        let base = tc
            .compile(&dfg, Strategy::Baseline)
            .expect("baseline maps")
            .average_utilization_all_tiles();
        let pt = tc
            .compile(&dfg, Strategy::PerTileDvfs)
            .expect("per-tile maps")
            .average_utilization();
        let ic = tc
            .compile(&dfg, Strategy::IcedIslands)
            .expect("iced maps")
            .average_utilization();
        [base, pt, ic]
    });

    let mut csv: Vec<Vec<String>> = Vec::new();
    for uf in UnrollFactor::ALL {
        println!("--- unrolling factor {} ---", uf.factor());
        println!(
            "{:<12} {:>10} {:>10} {:>10}",
            "kernel", "baseline", "per-tile", "iced"
        );
        let mut sums = [0.0f64; 3];
        for ((cuf, k), &[base, pt, ic]) in cells.iter().zip(&measured) {
            if *cuf != uf {
                continue;
            }
            sums[0] += base;
            sums[1] += pt;
            sums[2] += ic;
            csv.push(vec![
                k.name().to_string(),
                uf.factor().to_string(),
                pct(base),
                pct(pt),
                pct(ic),
            ]);
            println!(
                "{:<12} {:>10} {:>10} {:>10}",
                k.name(),
                pct(base),
                pct(pt),
                pct(ic)
            );
        }
        let n = Kernel::STANDALONE.len() as f64;
        println!(
            "{:<12} {:>10} {:>10} {:>10}   (iced/baseline = {:.2}x)",
            "average",
            pct(sums[0] / n),
            pct(sums[1] / n),
            pct(sums[2] / n),
            sums[2] / sums[0],
        );
        println!();
    }
    emit_csv(
        "fig09_utilization",
        &[
            "kernel",
            "unroll",
            "baseline_pct",
            "per_tile_pct",
            "iced_pct",
        ],
        &csv,
    );
    println!("paper anchors: 33% -> 76% (2.3x) at UF1; 44% -> 71% (1.6x) at UF2");
}

fn main() {
    iced_bench::with_tracing(run);
}
