//! Regenerates **Figure 14**: power vs performance of FFT across
//! architectures. The non-ICED points are literature constants (the paper
//! also derives them from the HyCUBE A-SSCC'19 and RipTide MICRO'22
//! publications); the ICED point is computed from this repository's model.
//!
//! The paper itself cautions that a fair cross-platform comparison is
//! impossible (different technologies, tile counts, memory hierarchies) —
//! the figure is a context plot, and so is this one.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig14
//! ```

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};

/// Published FFT datapoints (architecture, power in mW, MOPS).
/// Derived from HyCUBE (A-SSCC'19) and RipTide (MICRO'22) as in the paper.
const LITERATURE: [(&str, f64, f64); 4] = [
    ("HyCUBE @0.9V", 15.6, 412.0),
    ("HyCUBE @0.6V", 3.6, 139.0),
    ("RipTide", 0.32, 43.0),
    ("SNAFU", 0.27, 28.0),
];

fn run() {
    println!(
        "{:<16} {:>10} {:>10} {:>12}",
        "architecture", "power mW", "MOPS", "MOPS/mW"
    );
    for (name, p, mops) in LITERATURE {
        println!("{:<16} {:>10.2} {:>10.0} {:>12.1}", name, p, mops, mops / p);
    }

    // ICED point: fft on the 6×6 prototype with island DVFS.
    let tc = Toolchain::prototype();
    let dfg = Kernel::Fft.dfg(UnrollFactor::X1);
    let c = tc.compile(&dfg, Strategy::IcedIslands).expect("fft maps");
    let e = c.energy(1_000_000);
    // Operations per second: DFG ops per iteration / iteration period.
    let ops_per_iter = dfg.node_count() as f64;
    let iter_period_us = c.mapping().ii() as f64 / iced::power::VfPoint::nominal().freq_mhz();
    let mops = ops_per_iter / iter_period_us; // ops/us = Mops/s
    let p = e.total_power_mw();
    println!(
        "{:<16} {:>10.2} {:>10.0} {:>12.1}   (this work, II={} on 6x6)",
        "ICED (model)",
        p,
        mops,
        mops / p,
        c.mapping().ii(),
    );
    println!(
        "\nnote: absolute cross-architecture numbers are not comparable (7 nm \
         model vs silicon at other nodes); the plot situates ICED's \
         power/performance point as the paper's Fig. 14 does"
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
