//! Regenerates **Figure 2**: average tile utilization of the conventional
//! (no-DVFS) mapping across CGRA sizes, with and without unrolling —
//! the under-utilization that motivates ICED.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig02
//! ```

use iced::arch::CgraConfig;
use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};
use iced_bench::pct;

fn run() {
    let sizes = [4usize, 6, 8];
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "kernel", "4x4 uf1", "6x6 uf1", "8x8 uf1", "4x4 uf2", "6x6 uf2", "8x8 uf2"
    );
    let mut sums = [0.0f64; 6];
    for k in Kernel::STANDALONE {
        let mut cells = Vec::new();
        for uf in UnrollFactor::ALL {
            for &n in &sizes {
                let tc = Toolchain::new(CgraConfig::square(n).expect("valid size"));
                let c = tc
                    .compile(&k.dfg(uf), Strategy::Baseline)
                    .unwrap_or_else(|e| panic!("{} {n} {uf:?}: {e}", k.name()));
                cells.push(c.average_utilization_all_tiles());
            }
        }
        for (s, &c) in sums.iter_mut().zip(&cells) {
            *s += c;
        }
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            k.name(),
            pct(cells[0]),
            pct(cells[1]),
            pct(cells[2]),
            pct(cells[3]),
            pct(cells[4]),
            pct(cells[5]),
        );
    }
    let n = Kernel::STANDALONE.len() as f64;
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "average",
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        pct(sums[5] / n),
    );
    println!("\nshape check: utilization decreases as the fabric grows (paper Fig. 2)");
}

fn main() {
    iced_bench::with_tracing(run);
}
