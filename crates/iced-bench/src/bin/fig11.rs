//! Regenerates **Figure 11**: average power per kernel for the four
//! evaluated configurations (paper, UF2 averages: baseline 160.4 mW,
//! baseline+PG 143.8 mW, per-tile 193.9 mW, ICED 121.3 mW → ICED 1.32×
//! over baseline and 1.6× over per-tile in energy efficiency).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig11
//! ```

use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};
use iced_bench::{emit_csv, POWER_ITERATIONS};

fn run() {
    let tc = Toolchain::prototype();
    let mut csv: Vec<Vec<String>> = Vec::new();
    for uf in UnrollFactor::ALL {
        println!("--- unrolling factor {} (mW) ---", uf.factor());
        println!(
            "{:<12} {:>10} {:>12} {:>10} {:>10}",
            "kernel", "baseline", "baseline+pg", "per-tile", "iced"
        );
        let mut sums = [0.0f64; 4];
        for k in Kernel::STANDALONE {
            let dfg = k.dfg(uf);
            let mut row = [0.0f64; 4];
            for (i, s) in Strategy::ALL.iter().enumerate() {
                row[i] = tc
                    .compile(&dfg, *s)
                    .unwrap_or_else(|e| panic!("{} {}: {e}", k.name(), s.name()))
                    .power_mw(POWER_ITERATIONS);
                sums[i] += row[i];
            }
            csv.push(vec![
                k.name().to_string(),
                uf.factor().to_string(),
                format!("{:.2}", row[0]),
                format!("{:.2}", row[1]),
                format!("{:.2}", row[2]),
                format!("{:.2}", row[3]),
            ]);
            println!(
                "{:<12} {:>10.1} {:>12.1} {:>10.1} {:>10.1}",
                k.name(),
                row[0],
                row[1],
                row[2],
                row[3]
            );
        }
        let n = Kernel::STANDALONE.len() as f64;
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>10.1} {:>10.1}",
            "average",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n
        );
        println!(
            "ratios: iced/baseline = {:.2}x efficiency, pg/baseline = {:.2}x, \
             per-tile/iced = {:.2}x",
            sums[0] / sums[3],
            sums[0] / sums[1],
            sums[2] / sums[3],
        );
        println!();
    }
    emit_csv(
        "fig11_power",
        &[
            "kernel",
            "unroll",
            "baseline_mw",
            "baseline_pg_mw",
            "per_tile_mw",
            "iced_mw",
        ],
        &csv,
    );
    println!("paper anchors (UF2): 160.4 / 143.8 / 193.9 / 121.3 mW -> 1.32x and 1.6x");
}

fn main() {
    iced_bench::with_tracing(run);
}
