//! Regenerates **Figure 12**: scalability — average DVFS level of per-tile
//! DVFS vs 2×2-island ICED on CGRAs of 2×2, 4×4, 6×6, and 8×8 tiles
//! (paper: ICED stays close to per-tile, e.g. 35 % vs 26 % on 6×6).
//!
//! ```sh
//! cargo run --release -p iced-bench --bin fig12
//! ```

use iced::arch::CgraConfig;
use iced::kernels::{Kernel, UnrollFactor};
use iced::{Strategy, Toolchain};
use iced_bench::pct;

fn run() {
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "fabric", "per-tile", "iced", "gap (pts)"
    );
    for n in [2usize, 4, 6, 8] {
        let tc = Toolchain::new(CgraConfig::square(n).expect("valid size"));
        let mut pt_sum = 0.0;
        let mut ic_sum = 0.0;
        let mut count = 0.0;
        for k in Kernel::STANDALONE {
            let dfg = k.dfg(UnrollFactor::X1);
            // Small fabrics cannot hold the big kernels; skip unmappable
            // pairs symmetrically (the paper evaluates what fits).
            let (Ok(pt), Ok(ic)) = (
                tc.compile(&dfg, Strategy::PerTileDvfs),
                tc.compile(&dfg, Strategy::IcedIslands),
            ) else {
                continue;
            };
            pt_sum += pt.average_dvfs_level();
            ic_sum += ic.average_dvfs_level();
            count += 1.0;
        }
        let (pt, ic) = (pt_sum / count, ic_sum / count);
        println!(
            "{:<8} {:>12} {:>12} {:>12.1}   ({} kernels mapped)",
            format!("{n}x{n}"),
            pct(pt),
            pct(ic),
            100.0 * (ic - pt),
            count as usize,
        );
    }
    println!(
        "\nshape check: the iced-vs-per-tile gap shrinks on larger fabrics, where \
         whole islands power-gate (paper Fig. 12)"
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
