//! Exact-mapper benchmark: certifies the minimum II of every Table I
//! kernel against the heuristic portfolio and emits `BENCH_exact.json` —
//! per-kernel certified II, admissible lower bound, optimality gap
//! (heuristic II − certified II), proof kind, and nodes explored — so
//! both mapping quality and search effort are tracked across PRs.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin map_exact -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` certifies under a smaller node budget (the CI exact-smoke
//! configuration); the default budget digs deeper before settling for
//! `best_under_budget`.
//!
//! The binary asserts its own invariants before writing the report and
//! exits non-zero on violation:
//!
//! * lower bound ≤ certified II ≤ every heuristic II (baseline and iced);
//! * every certified mapping passes `check_dependencies`;
//! * a second certification of a sample of kernels is bit-identical
//!   (certificate and mapping) — the search has no hidden seed.

use std::fmt::Write as _;
use std::time::Instant;

use iced::arch::CgraConfig;
use iced::exact::{certify, lower_bound, ExactOptions};
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::{check_dependencies, map_with, MapperOptions};

struct Row {
    kernel: &'static str,
    nodes: usize,
    lower_bound: u32,
    certified_ii: u32,
    heuristic_ii: u32,
    gap: u32,
    proof: &'static str,
    nodes_explored: u64,
    wall_us: u128,
}

fn opts(quick: bool) -> ExactOptions {
    ExactOptions {
        node_budget: if quick { 20_000 } else { 200_000 },
        ..ExactOptions::default()
    }
}

fn emit_json(rows: &[Row], quick: bool) -> String {
    let total_nodes: u64 = rows.iter().map(|r| r.nodes_explored).sum();
    let optimal = rows.iter().filter(|r| r.proof == "optimal").count();
    let total_gap: u32 = rows.iter().map(|r| r.gap).sum();
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"table1-x1\",\n");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"node_budget\": {},", opts(quick).node_budget);
    let _ = writeln!(out, "  \"kernels_total\": {},", rows.len());
    let _ = writeln!(out, "  \"kernels_optimal\": {optimal},");
    let _ = writeln!(out, "  \"total_gap\": {total_gap},");
    let _ = writeln!(out, "  \"total_nodes_explored\": {total_nodes},");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"kernel\": \"{}\", \"nodes\": {}, \"lower_bound\": {}, \
             \"certified_ii\": {}, \"heuristic_ii\": {}, \"gap\": {}, \
             \"proof\": \"{}\", \"nodes_explored\": {}, \"wall_us\": {}}}{}",
            r.kernel,
            r.nodes,
            r.lower_bound,
            r.certified_ii,
            r.heuristic_ii,
            r.gap,
            r.proof,
            r.nodes_explored,
            r.wall_us,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| "BENCH_exact.json".to_string(), String::clone);

    let cfg = CgraConfig::iced_prototype();
    let xopts = opts(quick);
    let heur = MapperOptions::baseline();
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        let dfg = kernel.dfg(UnrollFactor::X1);
        let lb = lower_bound(&dfg, &cfg);
        let start = Instant::now();
        let c = certify(&dfg, &cfg, &heur, &xopts)
            .unwrap_or_else(|e| panic!("{}: certification failed: {e}", kernel.name()));
        let wall_us = start.elapsed().as_micros();
        assert!(
            check_dependencies(&dfg, &c.mapping),
            "{}: certified mapping violates dependencies",
            kernel.name()
        );
        assert_eq!(c.mapping.ii(), c.certificate.ii, "{}", kernel.name());
        // The optimality-gap column: the best heuristic II over both
        // strategy families, never below the certified minimum.
        let heuristic_ii = [MapperOptions::baseline(), MapperOptions::default()]
            .iter()
            .filter_map(|o| map_with(&dfg, &cfg, o).ok().map(|m| m.ii()))
            .min()
            .unwrap_or_else(|| panic!("{}: no heuristic mapping", kernel.name()));
        assert!(
            heuristic_ii >= c.certificate.ii,
            "{}: heuristic II {} below certified minimum {}",
            kernel.name(),
            heuristic_ii,
            c.certificate.ii
        );
        assert!(
            c.certificate.lower_bound <= c.certificate.ii,
            "{}: lower bound {} above certified II {}",
            kernel.name(),
            c.certificate.lower_bound,
            c.certificate.ii
        );
        rows.push(Row {
            kernel: kernel.name(),
            nodes: dfg.node_count(),
            lower_bound: lb,
            certified_ii: c.certificate.ii,
            heuristic_ii,
            gap: heuristic_ii - c.certificate.ii,
            proof: c.certificate.proof.name(),
            nodes_explored: c.certificate.nodes_explored,
            wall_us,
        });
    }

    // Determinism spot check: re-certifying must reproduce the exact
    // certificate (including nodes_explored) and the same mapping bytes.
    for kernel in [Kernel::Fir, Kernel::Latnrm, Kernel::Mvt] {
        let dfg = kernel.dfg(UnrollFactor::X1);
        let a = certify(&dfg, &cfg, &heur, &xopts).expect("recertify");
        let b = certify(&dfg, &cfg, &heur, &xopts).expect("recertify");
        assert_eq!(a.certificate, b.certificate, "{}", kernel.name());
        assert!(
            a.mapping.result_eq(&b.mapping),
            "{}: certification is not run-invariant",
            kernel.name()
        );
    }

    for r in &rows {
        println!(
            "{:>10}  lb={:>2}  certified={:>2}  heuristic={:>2}  gap={}  {}  nodes={}",
            r.kernel,
            r.lower_bound,
            r.certified_ii,
            r.heuristic_ii,
            r.gap,
            r.proof,
            r.nodes_explored
        );
    }
    let optimal = rows.iter().filter(|r| r.proof == "optimal").count();
    println!(
        "certified {} of {} kernels optimal, determinism ok",
        optimal,
        rows.len()
    );

    let json = emit_json(&rows, quick);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("map_exact: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");
}
