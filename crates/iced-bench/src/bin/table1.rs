//! Regenerates **Table I**: per-kernel DFG statistics (nodes, edges,
//! RecMII) at unroll factors 1 and 2, plus domain and island allocation.
//!
//! ```sh
//! cargo run --release -p iced-bench --bin table1
//! ```

use iced::kernels::{Kernel, UnrollFactor};

fn run() {
    println!(
        "{:<12} {:<10} | {:>5} {:>5} {:>6} | {:>5} {:>5} {:>6} | islands",
        "kernel", "domain", "n@1", "e@1", "rec@1", "n@2", "e@2", "rec@2"
    );
    println!("{}", "-".repeat(88));
    for k in Kernel::ALL {
        let d1 = k.dfg(UnrollFactor::X1);
        let d2 = k.dfg(UnrollFactor::X2);
        let islands = k
            .islands()
            .map(|i| format!("{i} (2x2)"))
            .unwrap_or_else(|| "n x n (2x2)".to_string());
        println!(
            "{:<12} {:<10} | {:>5} {:>5} {:>6} | {:>5} {:>5} {:>6} | {}",
            k.name(),
            format!("{:?}", k.domain()).to_lowercase(),
            d1.node_count(),
            d1.edge_count(),
            d1.rec_mii(),
            d2.node_count(),
            d2.edge_count(),
            d2.rec_mii(),
            islands,
        );
    }
    println!(
        "\nall rows regenerated from the kernel specs; `kernels::tests::table1_exact` \
         asserts equality with the published table"
    );
}

fn main() {
    iced_bench::with_tracing(run);
}
