//! Exporters: Chrome `trace_event` JSON and line-delimited JSONL.
//!
//! The Chrome format is the ["Trace Event Format"] consumed by
//! `chrome://tracing` and Perfetto: a JSON object with a `traceEvents`
//! array of `B`/`E` (span begin/end), `i` (instant), `X` (complete), and
//! `C` (counter) events. Wall-clock records land on per-phase threads
//! (`tid` = phase lane) of `pid` 0; virtual-time complete events land on
//! `pid` 1 with one thread per track (e.g. one lane per tile), so a
//! simulated kernel renders as a per-tile timeline.
//!
//! ["Trace Event Format"]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! No serde is available in this build environment, so JSON is written by
//! hand; [`escape_json`] covers the string subset we emit.

use std::collections::HashMap;
use std::io::{self, Write};

use crate::collector::{ArgValue, Phase, Record};

/// Escapes `s` as the body of a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn arg_json(v: &ArgValue) -> String {
    match v {
        ArgValue::U64(u) => u.to_string(),
        ArgValue::I64(i) => i.to_string(),
        ArgValue::F64(f) if f.is_finite() => {
            // Bare {} prints integers without a dot; keep JSON number form.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        ArgValue::F64(_) => "null".to_string(),
        ArgValue::Str(s) => format!("\"{}\"", escape_json(s)),
    }
}

fn args_json(args: &[(String, ArgValue)]) -> String {
    let fields: Vec<String> = args
        .iter()
        .map(|(k, v)| format!("\"{}\":{}", escape_json(k), arg_json(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Writes `records` as a Chrome `trace_event` JSON document.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace(records: &[Record], w: &mut impl Write) -> io::Result<()> {
    // Virtual-time tracks get stable tids on pid 1, in first-seen order.
    let mut track_tids: HashMap<&str, u32> = HashMap::new();
    let mut events: Vec<String> = Vec::with_capacity(records.len() + Phase::ALL.len() + 4);

    // Process/thread names so the viewer labels the lanes.
    events.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"iced (wall clock)\"}}".to_string(),
    );
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"iced (virtual cycles)\"}}".to_string(),
    );
    for p in Phase::ALL {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            p.tid(),
            p.as_str()
        ));
    }

    for r in records {
        match r {
            Record::SpanBegin { phase, name, t_us, args, .. } => events.push(format!(
                "{{\"ph\":\"B\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                phase.tid(),
                t_us,
                escape_json(name),
                args_json(args)
            )),
            Record::SpanEnd { phase, t_us, .. } => events.push(format!(
                "{{\"ph\":\"E\",\"pid\":0,\"tid\":{},\"ts\":{}}}",
                phase.tid(),
                t_us
            )),
            Record::Instant { phase, name, t_us, args } => events.push(format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                phase.tid(),
                t_us,
                escape_json(name),
                args_json(args)
            )),
            Record::Complete { track, name, start, dur, args, .. } => {
                let next = track_tids.len() as u32 + 1;
                let tid = *track_tids.entry(track.as_str()).or_insert(next);
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{}}}",
                    tid,
                    start,
                    (*dur).max(1),
                    escape_json(name),
                    args_json(args)
                ));
            }
            Record::Counter { phase, name, t_us, total } => events.push(format!(
                "{{\"ph\":\"C\",\"pid\":0,\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{{\"{}\":{}}}}}",
                phase.tid(),
                t_us,
                escape_json(name),
                escape_json(name),
                total
            )),
        }
    }

    // Virtual-track thread names, mapped after the walk fixed the tids.
    let mut tracks: Vec<(&str, u32)> = track_tids.into_iter().collect();
    tracks.sort_by_key(|&(_, tid)| tid);
    for (track, tid) in tracks {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            escape_json(track)
        ));
    }

    writeln!(w, "{{\"traceEvents\":[")?;
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        writeln!(w, "{e}{sep}")?;
    }
    writeln!(w, "],\"displayTimeUnit\":\"ms\"}}")
}

/// Writes `records` as JSONL: one JSON object per line, each with a
/// `"kind"` discriminant.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl(records: &[Record], w: &mut impl Write) -> io::Result<()> {
    for r in records {
        match r {
            Record::SpanBegin { id, phase, name, t_us, args } => writeln!(
                w,
                "{{\"kind\":\"span_begin\",\"id\":{id},\"phase\":\"{}\",\"name\":\"{}\",\"t_us\":{t_us},\"args\":{}}}",
                phase.as_str(),
                escape_json(name),
                args_json(args)
            )?,
            Record::SpanEnd { id, phase, t_us } => writeln!(
                w,
                "{{\"kind\":\"span_end\",\"id\":{id},\"phase\":\"{}\",\"t_us\":{t_us}}}",
                phase.as_str()
            )?,
            Record::Instant { phase, name, t_us, args } => writeln!(
                w,
                "{{\"kind\":\"instant\",\"phase\":\"{}\",\"name\":\"{}\",\"t_us\":{t_us},\"args\":{}}}",
                phase.as_str(),
                escape_json(name),
                args_json(args)
            )?,
            Record::Complete { phase, track, name, start, dur, args } => writeln!(
                w,
                "{{\"kind\":\"complete\",\"phase\":\"{}\",\"track\":\"{}\",\"name\":\"{}\",\"start\":{start},\"dur\":{dur},\"args\":{}}}",
                phase.as_str(),
                escape_json(track),
                escape_json(name),
                args_json(args)
            )?,
            Record::Counter { phase, name, t_us, total } => writeln!(
                w,
                "{{\"kind\":\"counter\",\"phase\":\"{}\",\"name\":\"{}\",\"t_us\":{t_us},\"total\":{total}}}",
                phase.as_str(),
                escape_json(name)
            )?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, RecordingCollector};

    /// Minimal recursive-descent JSON validity checker (values only, no
    /// number edge cases beyond what we emit). Returns remaining input.
    fn json_value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        let Some(c) = s.chars().next() else {
            return Err("empty".into());
        };
        match c {
            '{' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix('}') {
                    return Ok(rest);
                }
                loop {
                    s = json_string(s)?.trim_start();
                    s = s
                        .strip_prefix(':')
                        .ok_or_else(|| "expected :".to_string())?;
                    s = json_value(s)?.trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest.trim_start();
                        continue;
                    }
                    return s
                        .strip_prefix('}')
                        .ok_or_else(|| format!("expected }} at {s:.20}"));
                }
            }
            '[' => {
                let mut s = s[1..].trim_start();
                if let Some(rest) = s.strip_prefix(']') {
                    return Ok(rest);
                }
                loop {
                    s = json_value(s)?.trim_start();
                    if let Some(rest) = s.strip_prefix(',') {
                        s = rest;
                        continue;
                    }
                    return s
                        .strip_prefix(']')
                        .ok_or_else(|| format!("expected ] at {s:.20}"));
                }
            }
            '"' => json_string(s),
            't' => s
                .strip_prefix("true")
                .ok_or_else(|| "bad literal".to_string()),
            'f' => s
                .strip_prefix("false")
                .ok_or_else(|| "bad literal".to_string()),
            'n' => s
                .strip_prefix("null")
                .ok_or_else(|| "bad literal".to_string()),
            '-' | '0'..='9' => {
                let end = s
                    .find(|c: char| !matches!(c, '-' | '+' | '.' | 'e' | 'E' | '0'..='9'))
                    .unwrap_or(s.len());
                s[..end].parse::<f64>().map_err(|e| e.to_string())?;
                Ok(&s[end..])
            }
            other => Err(format!("unexpected {other}")),
        }
    }

    fn json_string(s: &str) -> Result<&str, String> {
        let mut chars = s
            .strip_prefix('"')
            .ok_or_else(|| "expected string".to_string())?
            .char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => return Ok(&s[1 + i + 1..]),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn assert_valid_json(doc: &str) {
        let rest = json_value(doc).unwrap_or_else(|e| panic!("invalid JSON ({e}):\n{doc}"));
        assert!(rest.trim().is_empty(), "trailing garbage: {rest:.40}");
    }

    fn sample_recording() -> RecordingCollector {
        let c = RecordingCollector::new();
        let outer = c.span_begin(Phase::Mapper, "map \"fir\"", &[("ii", 2u64.into())]);
        let inner = c.span_begin(Phase::Router, "route", &[("level", (-1i64).into())]);
        c.counter(Phase::Router, "expansions", 42);
        c.span_end(inner);
        c.instant(
            Phase::Controller,
            "decision",
            &[("avg", 1.5f64.into()), ("who", "k0\n".into())],
        );
        c.complete(Phase::Sim, "t3", "fir.add", 8, 4, &[("iter", 0u64.into())]);
        c.complete(Phase::Sim, "t3", "fir.add", 12, 4, &[("iter", 1u64.into())]);
        c.span_end(outer);
        c
    }

    #[test]
    fn chrome_export_is_valid_json() {
        let mut buf = Vec::new();
        write_chrome_trace(&sample_recording().records(), &mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        assert_valid_json(&doc);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"B\""));
        assert!(doc.contains("\"ph\":\"E\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"C\""));
        // Escaped quote from the span name survived escaping.
        assert!(doc.contains("map \\\"fir\\\""));
    }

    #[test]
    fn chrome_span_events_nest_and_are_monotonic() {
        let records = sample_recording().records();
        let mut buf = Vec::new();
        write_chrome_trace(&records, &mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        // Per-tid B/E events must pair like parentheses with non-decreasing ts.
        let mut depth: std::collections::HashMap<u64, i64> = Default::default();
        let mut last_ts: std::collections::HashMap<u64, u64> = Default::default();
        for line in doc
            .lines()
            .filter(|l| l.contains("\"ph\":\"B\"") || l.contains("\"ph\":\"E\""))
        {
            let tid = field_u64(line, "\"tid\":");
            let ts = field_u64(line, "\"ts\":");
            let last = last_ts.entry(tid).or_insert(0);
            assert!(ts >= *last, "ts regressed on tid {tid}: {line}");
            *last = ts;
            let d = depth.entry(tid).or_insert(0);
            *d += if line.contains("\"ph\":\"B\"") { 1 } else { -1 };
            assert!(*d >= 0, "E without B on tid {tid}");
        }
        assert!(depth.values().all(|&d| d == 0), "unclosed spans: {depth:?}");
    }

    fn field_u64(line: &str, key: &str) -> u64 {
        let at = line
            .find(key)
            .unwrap_or_else(|| panic!("{key} missing in {line}"))
            + key.len();
        line[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn jsonl_lines_are_individually_valid() {
        let mut buf = Vec::new();
        write_jsonl(&sample_recording().records(), &mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 8, "one line per record");
        for line in &lines {
            assert_valid_json(line);
            assert!(line.contains("\"kind\":\""));
        }
        // Span begin/end pairing survives the export.
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"span_begin\""))
                .count(),
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"span_end\""))
                .count(),
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let c = RecordingCollector::new();
        c.instant(
            Phase::Bench,
            "bad",
            &[("x", f64::NAN.into()), ("y", f64::INFINITY.into())],
        );
        let mut buf = Vec::new();
        write_jsonl(&c.records(), &mut buf).unwrap();
        let doc = String::from_utf8(buf).unwrap();
        assert_valid_json(doc.trim());
        assert!(doc.contains("\"x\":null"));
    }
}
