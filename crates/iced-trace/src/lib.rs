//! Structured tracing, counters, and trace export for the ICED toolchain.
//!
//! Every interesting decision in the toolchain — Algorithm 2's II
//! escalation and routing retries in `iced-mapper`, per-tile activity in
//! `iced-sim`'s cycle-stepped engine, window-boundary level changes in
//! `iced-streaming`'s runtime DVFS controller — can emit into a
//! process-wide [`Collector`]:
//!
//! * [`NullCollector`] — the default; every emit site is behind a single
//!   relaxed atomic load, so instrumentation is free when tracing is off.
//! * [`RecordingCollector`] — in-memory recording with wall-clock span
//!   timestamps, virtual-time (cycle-stamped) complete events, and
//!   monotonic running counters.
//!
//! Recordings export to two formats (see [`export`]):
//!
//! * **Chrome `trace_event` JSON** — open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) to see mapper II attempts and
//!   simulator tile timelines as a flame/track view.
//! * **JSONL** — one record per line, for ad-hoc `jq`/script analysis.
//!
//! [`TraceSummary`] condenses a recording into per-phase top-k counters
//! and span totals for terminal output.
//!
//! # Wiring
//!
//! The bench binaries install a collector when `ICED_TRACE=path` is set
//! (see `iced-bench`). Library code emits through the free functions:
//!
//! ```
//! use iced_trace::{Phase, span, counter};
//!
//! {
//!     let _s = span(Phase::Mapper, "ii_attempt", &[("ii", 4u64.into())]);
//!     counter(Phase::Mapper, "placement_candidates", 12);
//! } // span closed on drop
//! ```
//!
//! # Request scopes and thread overlays
//!
//! The global collector installs once per process, which is the right
//! model for a bench binary but not for a server answering many requests
//! on a worker pool. Two thread-scoped mechanisms layer on top:
//!
//! * [`request_scope`] tags the current thread with a request id; while
//!   the returned guard lives, every span/instant/complete emitted from
//!   this thread carries an extra `("req", id)` argument, so one
//!   request's compile→map→simulate phases are attributable in a shared
//!   recording. Scopes nest; the previous id is restored on drop.
//! * [`overlay`] installs an *additional* per-thread collector; records
//!   emitted from this thread are delivered to it as well as to the
//!   global collector (if one is installed and enabled). An overlay
//!   activates the emit sites even when no global collector exists, which
//!   is what lets a server capture a single request's trace without the
//!   install-once limitation.
//!
//! Both are thread-local: work handed to other threads (e.g. the mapper
//! portfolio's internal workers) is not captured by an overlay, though
//! the top-level spans opened on the scoped thread are.
//!
//! The fully-disabled fast path is two relaxed atomic loads (global
//! enabled flag + process-wide overlay count) per emit site.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
pub mod export;
mod summary;

pub use collector::{
    ArgValue, Collector, NullCollector, Phase, Record, RecordingCollector, SpanId,
};
pub use summary::{PhaseSummary, TraceSummary};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Arc<dyn Collector>> = OnceLock::new();

/// Process-wide count of live thread overlays. Zero means no thread has
/// an overlay, so emit sites can skip the thread-local lookup entirely.
static OVERLAYS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of live request scopes; same skip-the-TLS trick.
static REQ_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SCOPE: RefCell<ThreadScope> = RefCell::new(ThreadScope::default());
}

#[derive(Default)]
struct ThreadScope {
    overlay: Option<Arc<dyn Collector>>,
    request: u64, // 0 = no request scope active
}

/// Installs the process-wide collector. Returns `Err` with the rejected
/// collector if one was already installed (first install wins).
pub fn install(c: Arc<dyn Collector>) -> Result<(), Arc<dyn Collector>> {
    let enabled = c.enabled();
    match COLLECTOR.set(c) {
        Ok(()) => {
            ENABLED.store(enabled, Ordering::Release);
            Ok(())
        }
        Err(rejected) => Err(rejected),
    }
}

/// The installed collector, if any.
pub fn collector() -> Option<&'static Arc<dyn Collector>> {
    COLLECTOR.get()
}

/// Whether an enabled collector is installed. Emit sites gate on this —
/// a single relaxed atomic load — so the disabled path stays free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether any sink — the global collector or a thread overlay somewhere
/// in the process — might receive records.
#[inline]
fn active() -> bool {
    ENABLED.load(Ordering::Relaxed) || OVERLAYS.load(Ordering::Relaxed) != 0
}

/// Whether per-event detail records (e.g. one record per FU firing in the
/// simulator) should be emitted. Off by default even when tracing is on,
/// because firing records scale with cycles simulated.
#[inline]
pub fn detail_enabled() -> bool {
    enabled() && DETAIL.load(Ordering::Relaxed)
}

/// Turns per-event detail records on or off (see [`detail_enabled`]).
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Release);
}

/// Installs `c` as this thread's overlay collector; records emitted from
/// this thread reach it (in addition to the global collector) until the
/// returned guard drops. Overlays nest: the previous overlay, if any, is
/// shadowed and restored on drop.
pub fn overlay(c: Arc<dyn Collector>) -> OverlayGuard {
    OVERLAYS.fetch_add(1, Ordering::SeqCst);
    let prev = SCOPE.with(|s| s.borrow_mut().overlay.replace(c));
    OverlayGuard { prev: Some(prev) }
}

/// RAII guard for a thread overlay installed with [`overlay`].
pub struct OverlayGuard {
    prev: Option<Option<Arc<dyn Collector>>>,
}

impl Drop for OverlayGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            SCOPE.with(|s| s.borrow_mut().overlay = prev);
            OVERLAYS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for OverlayGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayGuard").finish_non_exhaustive()
    }
}

/// Tags the current thread with a request id until the returned guard
/// drops; spans, instants, and complete events emitted from this thread
/// gain a `("req", id)` argument. Scopes nest (previous id restored).
pub fn request_scope(id: u64) -> RequestScope {
    REQ_SCOPES.fetch_add(1, Ordering::SeqCst);
    let prev = SCOPE.with(|s| std::mem::replace(&mut s.borrow_mut().request, id));
    RequestScope { prev: Some(prev) }
}

/// The request id set by the innermost live [`request_scope`] on this
/// thread, if any.
pub fn current_request() -> Option<u64> {
    if REQ_SCOPES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPE.with(|s| {
        let id = s.borrow().request;
        (id != 0).then_some(id)
    })
}

/// RAII guard for a request scope opened with [`request_scope`].
pub struct RequestScope {
    prev: Option<u64>,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            SCOPE.with(|s| s.borrow_mut().request = prev);
            REQ_SCOPES.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl std::fmt::Debug for RequestScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestScope").finish_non_exhaustive()
    }
}

/// This thread's overlay collector, cloned out of the TLS cell so the
/// borrow never spans the collector call.
fn thread_overlay() -> Option<Arc<dyn Collector>> {
    if OVERLAYS.load(Ordering::Relaxed) == 0 {
        return None;
    }
    SCOPE.with(|s| s.borrow().overlay.clone())
}

/// Extends `args` with the active request scope's `("req", id)`, when one
/// is set. `None` means no extension is needed — use `args` as-is.
fn req_args<'a>(args: &[(&'a str, ArgValue)]) -> Option<Vec<(&'a str, ArgValue)>> {
    let id = current_request()?;
    let mut v = Vec::with_capacity(args.len() + 1);
    v.extend(args.iter().map(|(k, a)| (*k, a.clone())));
    v.push(("req", ArgValue::U64(id)));
    Some(v)
}

/// Adds `delta` to a named monotonic counter. No-op when disabled.
#[inline]
pub fn counter(phase: Phase, name: &str, delta: u64) {
    if !active() {
        return;
    }
    if enabled() {
        if let Some(c) = collector() {
            c.counter(phase, name, delta);
        }
    }
    if let Some(o) = thread_overlay() {
        o.counter(phase, name, delta);
    }
}

/// Emits an instantaneous event. No-op when disabled.
#[inline]
pub fn instant(phase: Phase, name: &str, args: &[(&str, ArgValue)]) {
    if !active() {
        return;
    }
    let extended = req_args(args);
    let args = extended.as_deref().unwrap_or(args);
    if enabled() {
        if let Some(c) = collector() {
            c.instant(phase, name, args);
        }
    }
    if let Some(o) = thread_overlay() {
        o.instant(phase, name, args);
    }
}

/// Emits a virtual-time complete event (`start`/`dur` in whatever unit the
/// caller's timeline uses — the simulator uses base cycles). `track` names
/// the horizontal lane (e.g. a tile). No-op when disabled.
#[inline]
pub fn complete(
    phase: Phase,
    track: &str,
    name: &str,
    start: u64,
    dur: u64,
    args: &[(&str, ArgValue)],
) {
    if !active() {
        return;
    }
    let extended = req_args(args);
    let args = extended.as_deref().unwrap_or(args);
    if enabled() {
        if let Some(c) = collector() {
            c.complete(phase, track, name, start, dur, args);
        }
    }
    if let Some(o) = thread_overlay() {
        o.complete(phase, track, name, start, dur, args);
    }
}

/// Opens a wall-clock span closed when the returned guard drops.
/// No-op (and allocation-free) when disabled.
#[inline]
pub fn span(phase: Phase, name: &str, args: &[(&str, ArgValue)]) -> SpanGuard {
    if !active() {
        return SpanGuard { open: Vec::new() };
    }
    let extended = req_args(args);
    let args = extended.as_deref().unwrap_or(args);
    let mut open = Vec::new();
    if enabled() {
        if let Some(c) = collector() {
            open.push((Arc::clone(c), c.span_begin(phase, name, args)));
        }
    }
    if let Some(o) = thread_overlay() {
        let id = o.span_begin(phase, name, args);
        open.push((o, id));
    }
    SpanGuard { open }
}

/// RAII guard for a span opened with [`span`]; ends the span (in every
/// collector it was begun in) on drop.
pub struct SpanGuard {
    open: Vec<(Arc<dyn Collector>, SpanId)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        for (c, id) in self.open.drain(..) {
            c.span_end(id);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &!self.open.is_empty())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global is process-wide and tests share one process, so the
    // global-install path is covered by a single test; everything else
    // drives collectors directly or through thread overlays.
    #[test]
    fn install_enables_and_second_install_is_rejected() {
        counter(Phase::Mapper, "noop", 1); // no collector: must not panic
        let rec = Arc::new(RecordingCollector::new());
        assert!(install(rec.clone()).is_ok(), "first install");
        assert!(enabled());
        counter(Phase::Mapper, "c", 2);
        {
            let _s = span(Phase::Sim, "s", &[("k", "v".into())]);
            instant(Phase::Controller, "i", &[]);
        }
        complete(Phase::Sim, "t0", "fire", 3, 2, &[]);
        let records = rec.records();
        assert!(records.len() >= 4);
        assert!(install(Arc::new(NullCollector)).is_err());
        // Collector reference survives; counter totals visible.
        assert_eq!(rec.counter_total(Phase::Mapper, "c"), 2);
    }

    #[test]
    fn overlay_captures_on_its_thread_even_without_a_global_install() {
        // A spawned thread keeps this test's TLS state away from the
        // other tests' emissions (and vice versa).
        std::thread::spawn(|| {
            let rec = Arc::new(RecordingCollector::new());
            {
                let _ov = overlay(rec.clone());
                counter(Phase::Bench, "ov_hits", 3);
                let _s = span(Phase::Bench, "ov_span", &[]);
            }
            // Overlay removed: later emissions don't reach it.
            counter(Phase::Bench, "ov_hits", 5);
            assert_eq!(rec.counter_total(Phase::Bench, "ov_hits"), 3);
            let spans = rec
                .records()
                .iter()
                .filter(|r| matches!(r, Record::SpanBegin { .. }))
                .count();
            assert_eq!(spans, 1);
        })
        .join()
        .expect("overlay thread");
    }

    #[test]
    fn overlays_nest_and_restore_the_previous_collector() {
        std::thread::spawn(|| {
            let outer = Arc::new(RecordingCollector::new());
            let inner = Arc::new(RecordingCollector::new());
            let _a = overlay(outer.clone());
            counter(Phase::Bench, "ov_nest", 1);
            {
                let _b = overlay(inner.clone());
                counter(Phase::Bench, "ov_nest", 10);
            }
            counter(Phase::Bench, "ov_nest", 100);
            // Inner shadowed outer while live; outer resumed afterwards.
            assert_eq!(inner.counter_total(Phase::Bench, "ov_nest"), 10);
            assert_eq!(outer.counter_total(Phase::Bench, "ov_nest"), 101);
        })
        .join()
        .expect("nest thread");
    }

    #[test]
    fn request_scope_tags_spans_and_instants_with_the_request_id() {
        std::thread::spawn(|| {
            let rec = Arc::new(RecordingCollector::new());
            let _ov = overlay(rec.clone());
            {
                let _req = request_scope(42);
                assert_eq!(current_request(), Some(42));
                let _s = span(Phase::Bench, "ov_tagged", &[("k", 7u64.into())]);
                instant(Phase::Bench, "ov_instant", &[]);
                {
                    let _nested = request_scope(43);
                    assert_eq!(current_request(), Some(43));
                }
                assert_eq!(current_request(), Some(42), "nesting restores");
            }
            assert_eq!(current_request(), None);
            let records = rec.records();
            let tagged = |args: &Vec<(String, ArgValue)>| {
                args.iter()
                    .any(|(k, v)| k == "req" && *v == ArgValue::U64(42))
            };
            let span_ok = records.iter().any(
                |r| matches!(r, Record::SpanBegin { name, args, .. } if name == "ov_tagged" && tagged(args)),
            );
            let instant_ok = records.iter().any(
                |r| matches!(r, Record::Instant { name, args, .. } if name == "ov_instant" && tagged(args)),
            );
            assert!(span_ok, "span missing req arg: {records:?}");
            assert!(instant_ok, "instant missing req arg: {records:?}");
        })
        .join()
        .expect("request-scope thread");
    }
}
