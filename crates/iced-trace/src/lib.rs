//! Structured tracing, counters, and trace export for the ICED toolchain.
//!
//! Every interesting decision in the toolchain — Algorithm 2's II
//! escalation and routing retries in `iced-mapper`, per-tile activity in
//! `iced-sim`'s cycle-stepped engine, window-boundary level changes in
//! `iced-streaming`'s runtime DVFS controller — can emit into a
//! process-wide [`Collector`]:
//!
//! * [`NullCollector`] — the default; every emit site is behind a single
//!   relaxed atomic load, so instrumentation is free when tracing is off.
//! * [`RecordingCollector`] — in-memory recording with wall-clock span
//!   timestamps, virtual-time (cycle-stamped) complete events, and
//!   monotonic running counters.
//!
//! Recordings export to two formats (see [`export`]):
//!
//! * **Chrome `trace_event` JSON** — open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev) to see mapper II attempts and
//!   simulator tile timelines as a flame/track view.
//! * **JSONL** — one record per line, for ad-hoc `jq`/script analysis.
//!
//! [`TraceSummary`] condenses a recording into per-phase top-k counters
//! and span totals for terminal output.
//!
//! # Wiring
//!
//! The bench binaries install a collector when `ICED_TRACE=path` is set
//! (see `iced-bench`). Library code emits through the free functions:
//!
//! ```
//! use iced_trace::{Phase, span, counter};
//!
//! {
//!     let _s = span(Phase::Mapper, "ii_attempt", &[("ii", 4u64.into())]);
//!     counter(Phase::Mapper, "placement_candidates", 12);
//! } // span closed on drop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
pub mod export;
mod summary;

pub use collector::{
    ArgValue, Collector, NullCollector, Phase, Record, RecordingCollector, SpanId,
};
pub use summary::{PhaseSummary, TraceSummary};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DETAIL: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Arc<dyn Collector>> = OnceLock::new();

/// Installs the process-wide collector. Returns `Err` with the rejected
/// collector if one was already installed (first install wins).
pub fn install(c: Arc<dyn Collector>) -> Result<(), Arc<dyn Collector>> {
    let enabled = c.enabled();
    match COLLECTOR.set(c) {
        Ok(()) => {
            ENABLED.store(enabled, Ordering::Release);
            Ok(())
        }
        Err(rejected) => Err(rejected),
    }
}

/// The installed collector, if any.
pub fn collector() -> Option<&'static Arc<dyn Collector>> {
    COLLECTOR.get()
}

/// Whether an enabled collector is installed. Emit sites gate on this —
/// a single relaxed atomic load — so the disabled path stays free.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether per-event detail records (e.g. one record per FU firing in the
/// simulator) should be emitted. Off by default even when tracing is on,
/// because firing records scale with cycles simulated.
#[inline]
pub fn detail_enabled() -> bool {
    enabled() && DETAIL.load(Ordering::Relaxed)
}

/// Turns per-event detail records on or off (see [`detail_enabled`]).
pub fn set_detail(on: bool) {
    DETAIL.store(on, Ordering::Release);
}

/// Adds `delta` to a named monotonic counter. No-op when disabled.
#[inline]
pub fn counter(phase: Phase, name: &str, delta: u64) {
    if enabled() {
        if let Some(c) = collector() {
            c.counter(phase, name, delta);
        }
    }
}

/// Emits an instantaneous event. No-op when disabled.
#[inline]
pub fn instant(phase: Phase, name: &str, args: &[(&str, ArgValue)]) {
    if enabled() {
        if let Some(c) = collector() {
            c.instant(phase, name, args);
        }
    }
}

/// Emits a virtual-time complete event (`start`/`dur` in whatever unit the
/// caller's timeline uses — the simulator uses base cycles). `track` names
/// the horizontal lane (e.g. a tile). No-op when disabled.
#[inline]
pub fn complete(
    phase: Phase,
    track: &str,
    name: &str,
    start: u64,
    dur: u64,
    args: &[(&str, ArgValue)],
) {
    if enabled() {
        if let Some(c) = collector() {
            c.complete(phase, track, name, start, dur, args);
        }
    }
}

/// Opens a wall-clock span closed when the returned guard drops.
/// No-op (and allocation-free) when disabled.
#[inline]
pub fn span(phase: Phase, name: &str, args: &[(&str, ArgValue)]) -> SpanGuard {
    if enabled() {
        if let Some(c) = collector() {
            return SpanGuard {
                open: Some((c.as_ref(), c.span_begin(phase, name, args))),
            };
        }
    }
    SpanGuard { open: None }
}

/// RAII guard for a span opened with [`span`]; ends the span on drop.
pub struct SpanGuard {
    open: Option<(&'static dyn Collector, SpanId)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((c, id)) = self.open.take() {
            c.span_end(id);
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanGuard")
            .field("active", &self.open.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global is process-wide and tests share one process, so the
    // global-install path is covered by a single test; everything else
    // drives collectors directly.
    #[test]
    fn install_enables_and_second_install_is_rejected() {
        assert!(!enabled());
        counter(Phase::Mapper, "noop", 1); // no collector: must not panic
        let rec = Arc::new(RecordingCollector::new());
        assert!(install(rec.clone()).is_ok(), "first install");
        assert!(enabled());
        counter(Phase::Mapper, "c", 2);
        {
            let _s = span(Phase::Sim, "s", &[("k", "v".into())]);
            instant(Phase::Controller, "i", &[]);
        }
        complete(Phase::Sim, "t0", "fire", 3, 2, &[]);
        let records = rec.records();
        assert!(records.len() >= 4);
        assert!(install(Arc::new(NullCollector)).is_err());
        // Collector reference survives; counter totals visible.
        assert_eq!(rec.counter_total(Phase::Mapper, "c"), 2);
    }
}
