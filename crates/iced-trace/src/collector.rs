//! The collector trait, record model, and the two built-in collectors.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Which layer of the toolchain a record came from. Exporters map phases
/// to Chrome-trace threads so each layer gets its own lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// `iced-mapper`: Algorithm 1/2, placement, II escalation.
    Mapper,
    /// The mapper's Dijkstra router (split out because its counters dwarf
    /// the rest of the mapper's).
    Router,
    /// `iced-sim`: cycle-stepped engine and analytic metrics.
    Sim,
    /// `iced-streaming`: runtime DVFS controller and pipeline simulation.
    Controller,
    /// Harness-level spans (figure binaries, suite sweeps).
    Bench,
    /// `iced-service`: request handling, cache, queue, worker pool.
    Service,
}

impl Phase {
    /// All phases, in display order.
    pub const ALL: [Phase; 6] = [
        Phase::Mapper,
        Phase::Router,
        Phase::Sim,
        Phase::Controller,
        Phase::Bench,
        Phase::Service,
    ];

    /// Stable lowercase name used in exports and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Mapper => "mapper",
            Phase::Router => "router",
            Phase::Sim => "sim",
            Phase::Controller => "controller",
            Phase::Bench => "bench",
            Phase::Service => "service",
        }
    }

    /// Chrome-trace thread id for this phase's lane.
    pub fn tid(self) -> u32 {
        match self {
            Phase::Mapper => 1,
            Phase::Router => 2,
            Phase::Sim => 3,
            Phase::Controller => 4,
            Phase::Bench => 5,
            Phase::Service => 6,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed argument value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

macro_rules! arg_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for ArgValue {
            fn from(v: $t) -> ArgValue {
                ArgValue::$variant(v as $conv)
            }
        }
    )*};
}

arg_from!(
    u64 => U64 as u64,
    u32 => U64 as u64,
    u16 => U64 as u64,
    usize => U64 as u64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    f64 => F64 as f64
);

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

impl From<bool> for ArgValue {
    fn from(v: bool) -> ArgValue {
        ArgValue::Str(if v { "true" } else { "false" }.to_string())
    }
}

/// Handle for an open span. `SpanId(0)` is the null span (emitted by
/// disabled collectors); ending it is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span.
    pub const NULL: SpanId = SpanId(0);
}

/// Sink for trace records. Implementations must be cheap to call — the
/// toolchain's hot paths emit through this trait — and thread-safe, since
/// the collector is installed process-wide.
pub trait Collector: Send + Sync {
    /// Whether this collector records anything. The global emit helpers
    /// cache this at install time; a `false` here makes every emit site a
    /// single atomic load.
    fn enabled(&self) -> bool;

    /// Opens a wall-clock span. Returns a handle for [`Collector::span_end`].
    fn span_begin(&self, phase: Phase, name: &str, args: &[(&str, ArgValue)]) -> SpanId;

    /// Closes a span opened by [`Collector::span_begin`].
    fn span_end(&self, id: SpanId);

    /// Records an instantaneous event.
    fn instant(&self, phase: Phase, name: &str, args: &[(&str, ArgValue)]);

    /// Records a virtual-time complete event on a named track (`start` and
    /// `dur` in the caller's timeline unit, e.g. simulator base cycles).
    fn complete(
        &self,
        phase: Phase,
        track: &str,
        name: &str,
        start: u64,
        dur: u64,
        args: &[(&str, ArgValue)],
    );

    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, phase: Phase, name: &str, delta: u64);
}

/// Collector that records nothing. Installing it keeps tracing disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn enabled(&self) -> bool {
        false
    }
    fn span_begin(&self, _: Phase, _: &str, _: &[(&str, ArgValue)]) -> SpanId {
        SpanId::NULL
    }
    fn span_end(&self, _: SpanId) {}
    fn instant(&self, _: Phase, _: &str, _: &[(&str, ArgValue)]) {}
    fn complete(&self, _: Phase, _: &str, _: &str, _: u64, _: u64, _: &[(&str, ArgValue)]) {}
    fn counter(&self, _: Phase, _: &str, _: u64) {}
}

/// One recorded trace entry. Wall-clock timestamps (`t_us`) are
/// microseconds since the collector was created, so they are monotonic
/// within a recording.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A span opened.
    SpanBegin {
        /// Span handle (matches the corresponding [`Record::SpanEnd`]).
        id: u64,
        /// Originating phase.
        phase: Phase,
        /// Span name.
        name: String,
        /// Microseconds since recording start.
        t_us: u64,
        /// Attached arguments.
        args: Vec<(String, ArgValue)>,
    },
    /// A span closed.
    SpanEnd {
        /// Span handle.
        id: u64,
        /// Phase of the matching begin.
        phase: Phase,
        /// Microseconds since recording start.
        t_us: u64,
    },
    /// An instantaneous event.
    Instant {
        /// Originating phase.
        phase: Phase,
        /// Event name.
        name: String,
        /// Microseconds since recording start.
        t_us: u64,
        /// Attached arguments.
        args: Vec<(String, ArgValue)>,
    },
    /// A virtual-time complete event (timeline unit chosen by the emitter).
    Complete {
        /// Originating phase.
        phase: Phase,
        /// Track (lane) name, e.g. `"t12"` for tile 12.
        track: String,
        /// Event name.
        name: String,
        /// Start on the virtual timeline.
        start: u64,
        /// Duration on the virtual timeline.
        dur: u64,
        /// Attached arguments.
        args: Vec<(String, ArgValue)>,
    },
    /// A counter update carrying the new running total.
    Counter {
        /// Originating phase.
        phase: Phase,
        /// Counter name.
        name: String,
        /// Microseconds since recording start.
        t_us: u64,
        /// Running total after this update.
        total: u64,
    },
}

#[derive(Debug, Default)]
struct Recording {
    records: Vec<Record>,
    counters: HashMap<(Phase, String), u64>,
    open_spans: HashMap<u64, Phase>,
    next_span: u64,
}

/// In-memory recording collector. Cheap enough for development runs; for
/// release-quality numbers run with tracing off (the emit sites cost one
/// atomic load each).
#[derive(Debug)]
pub struct RecordingCollector {
    start: Instant,
    inner: Mutex<Recording>,
}

impl Default for RecordingCollector {
    fn default() -> Self {
        RecordingCollector::new()
    }
}

impl RecordingCollector {
    /// A fresh, empty recording starting now.
    pub fn new() -> Self {
        RecordingCollector {
            start: Instant::now(),
            inner: Mutex::new(Recording {
                next_span: 1, // 0 is the null span
                ..Recording::default()
            }),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn own_args(args: &[(&str, ArgValue)]) -> Vec<(String, ArgValue)> {
        args.iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    /// Snapshot of everything recorded so far, in emission order.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().expect("trace lock").records.clone()
    }

    /// Current total of one counter (0 if never touched).
    pub fn counter_total(&self, phase: Phase, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("trace lock")
            .counters
            .get(&(phase, name.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// All counter totals, sorted by phase then descending total.
    pub fn counter_totals(&self) -> Vec<(Phase, String, u64)> {
        let inner = self.inner.lock().expect("trace lock");
        let mut v: Vec<_> = inner
            .counters
            .iter()
            .map(|((p, n), t)| (*p, n.clone(), *t))
            .collect();
        v.sort_by(|a, b| {
            (a.0, std::cmp::Reverse(a.2), &a.1).cmp(&(b.0, std::cmp::Reverse(b.2), &b.1))
        });
        v
    }

    /// Condenses the recording into a per-phase summary.
    pub fn summary(&self) -> crate::TraceSummary {
        crate::TraceSummary::from_records(&self.records())
    }
}

impl Collector for RecordingCollector {
    fn enabled(&self) -> bool {
        true
    }

    fn span_begin(&self, phase: Phase, name: &str, args: &[(&str, ArgValue)]) -> SpanId {
        let t_us = self.now_us();
        let mut inner = self.inner.lock().expect("trace lock");
        let id = inner.next_span;
        inner.next_span += 1;
        inner.open_spans.insert(id, phase);
        inner.records.push(Record::SpanBegin {
            id,
            phase,
            name: name.to_string(),
            t_us,
            args: Self::own_args(args),
        });
        SpanId(id)
    }

    fn span_end(&self, id: SpanId) {
        if id == SpanId::NULL {
            return;
        }
        let t_us = self.now_us();
        let mut inner = self.inner.lock().expect("trace lock");
        let Some(phase) = inner.open_spans.remove(&id.0) else {
            return; // double-end or foreign id: drop silently
        };
        inner.records.push(Record::SpanEnd {
            id: id.0,
            phase,
            t_us,
        });
    }

    fn instant(&self, phase: Phase, name: &str, args: &[(&str, ArgValue)]) {
        let t_us = self.now_us();
        let mut inner = self.inner.lock().expect("trace lock");
        inner.records.push(Record::Instant {
            phase,
            name: name.to_string(),
            t_us,
            args: Self::own_args(args),
        });
    }

    fn complete(
        &self,
        phase: Phase,
        track: &str,
        name: &str,
        start: u64,
        dur: u64,
        args: &[(&str, ArgValue)],
    ) {
        let mut inner = self.inner.lock().expect("trace lock");
        inner.records.push(Record::Complete {
            phase,
            track: track.to_string(),
            name: name.to_string(),
            start,
            dur,
            args: Self::own_args(args),
        });
    }

    fn counter(&self, phase: Phase, name: &str, delta: u64) {
        let t_us = self.now_us();
        let mut inner = self.inner.lock().expect("trace lock");
        let total = {
            let slot = inner.counters.entry((phase, name.to_string())).or_insert(0);
            *slot += delta;
            *slot
        };
        inner.records.push(Record::Counter {
            phase,
            name: name.to_string(),
            t_us,
            total,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_pair_and_nest() {
        let c = RecordingCollector::new();
        let outer = c.span_begin(Phase::Mapper, "outer", &[("ii", 4u64.into())]);
        let inner = c.span_begin(Phase::Mapper, "inner", &[]);
        c.span_end(inner);
        c.span_end(outer);
        let r = c.records();
        assert_eq!(r.len(), 4);
        match (&r[0], &r[1], &r[2], &r[3]) {
            (
                Record::SpanBegin {
                    id: b0, name: n0, ..
                },
                Record::SpanBegin { id: b1, .. },
                Record::SpanEnd { id: e0, .. },
                Record::SpanEnd { id: e1, .. },
            ) => {
                assert_eq!(n0, "outer");
                assert_eq!(e0, b1, "inner closes first");
                assert_eq!(e1, b0, "outer closes last");
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn timestamps_are_monotonic() {
        let c = RecordingCollector::new();
        for i in 0..50 {
            c.instant(Phase::Sim, "tick", &[("i", (i as u64).into())]);
        }
        let mut last = 0;
        for r in c.records() {
            if let Record::Instant { t_us, .. } = r {
                assert!(t_us >= last);
                last = t_us;
            }
        }
    }

    #[test]
    fn counters_accumulate_per_phase() {
        let c = RecordingCollector::new();
        c.counter(Phase::Router, "expansions", 10);
        c.counter(Phase::Router, "expansions", 5);
        c.counter(Phase::Mapper, "expansions", 1);
        assert_eq!(c.counter_total(Phase::Router, "expansions"), 15);
        assert_eq!(c.counter_total(Phase::Mapper, "expansions"), 1);
        assert_eq!(c.counter_total(Phase::Sim, "expansions"), 0);
        let totals = c.counter_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].0, Phase::Mapper); // phase order first
    }

    #[test]
    fn double_end_is_ignored() {
        let c = RecordingCollector::new();
        let s = c.span_begin(Phase::Bench, "s", &[]);
        c.span_end(s);
        c.span_end(s);
        c.span_end(SpanId::NULL);
        assert_eq!(c.records().len(), 2);
    }

    #[test]
    fn null_collector_records_nothing() {
        let c = NullCollector;
        assert!(!c.enabled());
        let s = c.span_begin(Phase::Mapper, "x", &[]);
        assert_eq!(s, SpanId::NULL);
        c.span_end(s);
        c.counter(Phase::Mapper, "c", 1);
    }
}
