//! Terminal-friendly profiling summary of a recording.

use std::collections::HashMap;
use std::fmt;

use crate::collector::{Phase, Record};

/// Aggregated view of one phase: span totals and counter totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// The phase summarised.
    pub phase: Phase,
    /// Per span name: (count, total inclusive wall time in µs). Sorted by
    /// total time, descending.
    pub spans: Vec<(String, u64, u64)>,
    /// Per counter name: final total. Sorted descending by total.
    pub counters: Vec<(String, u64)>,
    /// Instant events recorded in this phase.
    pub instants: u64,
    /// Virtual-time complete events recorded in this phase.
    pub completes: u64,
}

/// Per-phase aggregation of a recording, printable with `{}`.
///
/// The `Display` form lists, for every phase that recorded anything, the
/// top-k counters and span time totals — the "where did the work go"
/// report the bench binaries print when `ICED_TRACE` is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    phases: Vec<PhaseSummary>,
    /// How many entries per list `Display` prints.
    top_k: usize,
}

impl TraceSummary {
    /// Builds a summary from raw records.
    pub fn from_records(records: &[Record]) -> TraceSummary {
        let mut span_stats: HashMap<(Phase, String), (u64, u64)> = HashMap::new();
        let mut open: HashMap<u64, (Phase, String, u64)> = HashMap::new();
        let mut counters: HashMap<(Phase, String), u64> = HashMap::new();
        let mut instants: HashMap<Phase, u64> = HashMap::new();
        let mut completes: HashMap<Phase, u64> = HashMap::new();

        for r in records {
            match r {
                Record::SpanBegin {
                    id,
                    phase,
                    name,
                    t_us,
                    ..
                } => {
                    open.insert(*id, (*phase, name.clone(), *t_us));
                }
                Record::SpanEnd { id, t_us, .. } => {
                    if let Some((phase, name, begin)) = open.remove(id) {
                        let slot = span_stats.entry((phase, name)).or_insert((0, 0));
                        slot.0 += 1;
                        slot.1 += t_us.saturating_sub(begin);
                    }
                }
                Record::Instant { phase, .. } => *instants.entry(*phase).or_insert(0) += 1,
                Record::Complete { phase, .. } => *completes.entry(*phase).or_insert(0) += 1,
                Record::Counter {
                    phase, name, total, ..
                } => {
                    // Records carry running totals; the last one wins.
                    counters.insert((*phase, name.clone()), *total);
                }
            }
        }
        // Spans still open when the recording was snapshotted count with
        // zero duration, so their existence is visible.
        for (phase, name, _) in open.into_values() {
            span_stats.entry((phase, name)).or_insert((0, 0)).0 += 1;
        }

        let phases = Phase::ALL
            .into_iter()
            .filter_map(|phase| {
                let mut spans: Vec<(String, u64, u64)> = span_stats
                    .iter()
                    .filter(|((p, _), _)| *p == phase)
                    .map(|((_, n), (count, us))| (n.clone(), *count, *us))
                    .collect();
                spans.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
                let mut cs: Vec<(String, u64)> = counters
                    .iter()
                    .filter(|((p, _), _)| *p == phase)
                    .map(|((_, n), t)| (n.clone(), *t))
                    .collect();
                cs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let summary = PhaseSummary {
                    phase,
                    spans,
                    counters: cs,
                    instants: instants.get(&phase).copied().unwrap_or(0),
                    completes: completes.get(&phase).copied().unwrap_or(0),
                };
                let empty = summary.spans.is_empty()
                    && summary.counters.is_empty()
                    && summary.instants == 0
                    && summary.completes == 0;
                (!empty).then_some(summary)
            })
            .collect();
        TraceSummary { phases, top_k: 8 }
    }

    /// Limits how many counters/spans `Display` prints per phase.
    pub fn with_top_k(mut self, k: usize) -> TraceSummary {
        self.top_k = k.max(1);
        self
    }

    /// The per-phase aggregates (phases that recorded nothing are omitted).
    pub fn phases(&self) -> &[PhaseSummary] {
        &self.phases
    }

    /// Aggregate for one phase, if it recorded anything.
    pub fn phase(&self, phase: Phase) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

fn fmt_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} us")
    } else if us < 1_000_000 {
        format!("{:.2} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.phases.is_empty() {
            return writeln!(f, "trace summary: no records");
        }
        writeln!(f, "trace summary (top {} per phase):", self.top_k)?;
        for p in &self.phases {
            writeln!(
                f,
                "  [{}] {} span kind(s), {} instant(s), {} firing record(s)",
                p.phase,
                p.spans.len(),
                p.instants,
                p.completes
            )?;
            for (name, count, us) in p.spans.iter().take(self.top_k) {
                writeln!(f, "    span    {name:<28} x{count:<6} {}", fmt_us(*us))?;
            }
            for (name, total) in p.counters.iter().take(self.top_k) {
                writeln!(f, "    counter {name:<28} {total}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, RecordingCollector};

    #[test]
    fn summary_aggregates_spans_and_counters() {
        let c = RecordingCollector::new();
        for ii in 2..5u64 {
            let s = c.span_begin(Phase::Mapper, "ii_attempt", &[("ii", ii.into())]);
            c.counter(Phase::Mapper, "placement_candidates", 10 * ii);
            c.span_end(s);
        }
        c.counter(Phase::Router, "expansions", 99);
        c.instant(Phase::Controller, "decision", &[]);
        c.complete(Phase::Sim, "t0", "fire", 0, 1, &[]);

        let s = c.summary();
        let mapper = s.phase(Phase::Mapper).expect("mapper recorded");
        assert_eq!(mapper.spans.len(), 1);
        assert_eq!(mapper.spans[0].0, "ii_attempt");
        assert_eq!(mapper.spans[0].1, 3);
        assert_eq!(
            mapper.counters,
            vec![("placement_candidates".to_string(), 90)]
        );
        assert_eq!(s.phase(Phase::Router).unwrap().counters[0].1, 99);
        assert_eq!(s.phase(Phase::Controller).unwrap().instants, 1);
        assert_eq!(s.phase(Phase::Sim).unwrap().completes, 1);
        assert!(s.phase(Phase::Bench).is_none());

        let text = s.to_string();
        assert!(text.contains("[mapper]"));
        assert!(text.contains("placement_candidates"));
        assert!(text.contains("x3"));
    }

    #[test]
    fn empty_summary_prints_placeholder() {
        let s = TraceSummary::from_records(&[]);
        assert!(s.phases().is_empty());
        assert!(s.to_string().contains("no records"));
    }

    #[test]
    fn top_k_truncates_display() {
        let c = RecordingCollector::new();
        for i in 0..20 {
            c.counter(Phase::Bench, &format!("c{i}"), i + 1);
        }
        let text = c.summary().with_top_k(3).to_string();
        assert_eq!(text.matches("counter c").count(), 3);
        // Highest totals win.
        assert!(text.contains("c19"));
    }
}
