//! Property tests for the fault model's determinism guarantee: a
//! `FaultPlan` is a pure function of `(config, seed, density)` and its
//! upset schedule is a pure function of `(seed, tile, cycle)`.

use iced_arch::{CgraConfig, Dir, DvfsLevel, TileId};
use iced_fault::{FaultPlan, PermanentFault};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn same_seed_same_plan(seed in any::<u64>(), density in 0.0f64..=1.0) {
        let cfg = CgraConfig::iced_prototype();
        let a = FaultPlan::generate(&cfg, seed, density);
        let b = FaultPlan::generate(&cfg, seed, density);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.canonical_hash(), b.canonical_hash());
        // Masks and exclusion reports derive deterministically too.
        prop_assert_eq!(a.mask(&cfg), b.mask(&cfg));
        prop_assert_eq!(a.excluded(&cfg), b.excluded(&cfg));
    }

    #[test]
    fn upset_schedule_replays(seed in any::<u64>(), tile in 0u16..36, cycle in 0u64..100_000) {
        let plan = FaultPlan {
            seed,
            permanent: Vec::new(),
            seu: iced_fault::SeuRates {
                normal_per_million: 5_000,
                relax_per_million: 20_000,
                rest_per_million: 80_000,
            },
            midrun: Vec::new(),
        };
        for level in [DvfsLevel::Normal, DvfsLevel::Relax, DvfsLevel::Rest] {
            let first = plan.upset(TileId(tile), level, cycle);
            prop_assert_eq!(first, plan.upset(TileId(tile), level, cycle));
            if let Some(bit) = first {
                prop_assert!(bit < 64);
            }
        }
        prop_assert_eq!(plan.upset(TileId(tile), DvfsLevel::PowerGated, cycle), None);
    }

    #[test]
    fn mask_agrees_with_plan_faults(seed in any::<u64>(), density in 0.0f64..=1.0) {
        let cfg = CgraConfig::iced_prototype();
        let plan = FaultPlan::generate(&cfg, seed, density);
        let mask = plan.mask(&cfg);
        prop_assert_eq!(mask.is_empty(), plan.permanent.is_empty());
        for f in &plan.permanent {
            match *f {
                PermanentFault::DeadTile(t) => prop_assert!(!mask.tile_usable(t)),
                PermanentFault::DeadFu(t) => prop_assert!(!mask.fu_usable(t)),
                PermanentFault::BrokenLink(t, d) | PermanentFault::StuckPort(t, d) => {
                    prop_assert!(!mask.link_usable(t, d));
                }
                PermanentFault::DeadIsland(i) => {
                    for t in cfg.island_tiles(i) {
                        prop_assert!(!mask.tile_usable(t));
                    }
                }
            }
        }
        // The memory column always survives generation.
        for t in cfg.tiles().filter(|&t| cfg.is_memory_tile(t)) {
            prop_assert!(mask.fu_usable(t));
        }
        // A usable link never points into a dead tile.
        for t in cfg.tiles() {
            for d in Dir::ALL {
                if let Some(n) = cfg.neighbor(t, d) {
                    if !mask.tile_usable(n) {
                        prop_assert!(!mask.link_usable(t, d));
                    }
                }
            }
        }
    }
}
