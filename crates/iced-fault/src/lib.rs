//! Deterministic fault model for the ICED CGRA.
//!
//! ICED's value proposition is running tiles at aggressive low-voltage
//! levels (rest = 0.42 V, relax = 0.5 V) — exactly the regime where timing
//! faults, single-event upsets, and island-level failures appear in real
//! silicon. This crate defines the fault vocabulary shared by the mapper,
//! the cycle engine, the streaming controller, and the service:
//!
//! * [`PermanentFault`] — manufacturing/wear-out defects the *mapper* must
//!   route around: dead tiles, dead functional units, broken mesh links,
//!   stuck crossbar ports, and whole failed DVFS islands.
//! * [`SeuRates`] — transient single-event-upset rates per DVFS level.
//!   Rates rise as voltage drops, tying resilience directly to the paper's
//!   V/F levels: a rest tile (0.42 V) upsets more often than a relax tile
//!   (0.5 V), which upsets more often than a normal tile (0.7 V).
//! * [`MidRunFailure`] — an island dying mid-run, which the *streaming*
//!   layer answers by repartitioning the pipeline onto survivors.
//! * [`FaultPlan`] — a seeded bundle of all three. Everything is derived
//!   from the seed with [`StableHasher`], so the same seed reproduces a
//!   byte-identical fault schedule on every run, thread count, and host.
//! * [`FaultMask`] — the dense occupancy view of the permanent faults that
//!   MRRG construction consumes.
//!
//! Nothing here consults wall-clock time or ambient randomness: a
//! `FaultPlan` is a pure function of `(config, seed, density)` and the
//! upset schedule is a pure function of `(seed, tile, cycle)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use iced_arch::{CgraConfig, Dir, DvfsLevel, IslandId, TileId};
use iced_hash::StableHasher;

/// Domain-separation salts for the seeded rolls, so the per-class fault
/// streams are independent even under one seed.
const SALT_DEAD_TILE: u64 = 0x1ced_fa01;
const SALT_DEAD_FU: u64 = 0x1ced_fa02;
const SALT_BROKEN_LINK: u64 = 0x1ced_fa03;
const SALT_STUCK_PORT: u64 = 0x1ced_fa04;
const SALT_DEAD_ISLAND: u64 = 0x1ced_fa05;
const SALT_SEU: u64 = 0x1ced_fa06;

/// One seeded roll in `[0, 1_000_000)`: parts-per-million comparisons keep
/// the thresholds integral and platform-independent.
fn roll_ppm(seed: u64, salt: u64, a: u64, b: u64) -> u64 {
    let mut h = StableHasher::with_seed(seed);
    h.write_u64(salt);
    h.write_u64(a);
    h.write_u64(b);
    h.finish() % 1_000_000
}

/// A permanent (hard) fault in the fabric, present from power-on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PermanentFault {
    /// The whole tile is dead: no FU, no crossbar, no registers.
    DeadTile(TileId),
    /// Only the functional unit is dead; the crossbar still routes.
    DeadFu(TileId),
    /// The outgoing mesh link of `tile` towards `dir` is broken.
    BrokenLink(TileId, Dir),
    /// The crossbar output port of `tile` towards `dir` is stuck; the
    /// effect on mapping is the same as a broken link, but it is reported
    /// separately because the repair strategy differs in hardware.
    StuckPort(TileId, Dir),
    /// The island's LDO/ADPLL failed: every tile in it is dead.
    DeadIsland(IslandId),
}

impl PermanentFault {
    fn hash_into(&self, h: &mut StableHasher) {
        match *self {
            PermanentFault::DeadTile(t) => {
                h.write_u8(1);
                h.write_u64(t.index() as u64);
            }
            PermanentFault::DeadFu(t) => {
                h.write_u8(2);
                h.write_u64(t.index() as u64);
            }
            PermanentFault::BrokenLink(t, d) => {
                h.write_u8(3);
                h.write_u64(t.index() as u64);
                h.write_u8(d.index() as u8);
            }
            PermanentFault::StuckPort(t, d) => {
                h.write_u8(4);
                h.write_u64(t.index() as u64);
                h.write_u8(d.index() as u8);
            }
            PermanentFault::DeadIsland(i) => {
                h.write_u8(5);
                h.write_u64(i.index() as u64);
            }
        }
    }
}

/// Transient single-event-upset rates, in upsets per million FU firings,
/// keyed by the DVFS level the firing tile runs at. Lower voltage → higher
/// rate, so the paper's rest/relax tiles pay a resilience tax for their
/// energy savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SeuRates {
    /// Upsets per million firings on a normal-level (0.7 V) tile.
    pub normal_per_million: u32,
    /// Upsets per million firings on a relax-level (0.5 V) tile.
    pub relax_per_million: u32,
    /// Upsets per million firings on a rest-level (0.42 V) tile.
    pub rest_per_million: u32,
}

impl SeuRates {
    /// No transient faults at any level.
    pub fn zero() -> SeuRates {
        SeuRates::default()
    }

    /// The rate for `level`. Power-gated tiles cannot fire, so their rate
    /// is zero by construction.
    pub fn rate(&self, level: DvfsLevel) -> u32 {
        match level {
            DvfsLevel::PowerGated => 0,
            DvfsLevel::Rest => self.rest_per_million,
            DvfsLevel::Relax => self.relax_per_million,
            DvfsLevel::Normal => self.normal_per_million,
        }
    }

    /// Whether every level's rate is zero.
    pub fn is_zero(&self) -> bool {
        self.normal_per_million == 0 && self.relax_per_million == 0 && self.rest_per_million == 0
    }
}

/// A DVFS island dying while a streaming pipeline is running: after
/// `after_inputs` inputs have been dispatched, `island` is gone and the
/// pipeline must repartition onto the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MidRunFailure {
    /// The island that fails.
    pub island: IslandId,
    /// Number of inputs processed before the failure strikes.
    pub after_inputs: usize,
}

/// A complete seeded fault schedule: permanent fabric defects, transient
/// upset rates, and mid-run island failures. Two plans built from the same
/// `(config, seed, density)` are identical, and [`FaultPlan::upset`] is a
/// pure function of the plan — the whole model is replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every derived decision (upset schedule included) flows from.
    pub seed: u64,
    /// Permanent fabric faults, in deterministic generation order.
    pub permanent: Vec<PermanentFault>,
    /// Transient upset rates per DVFS level.
    pub seu: SeuRates,
    /// Mid-run island failures, for the streaming layer.
    pub midrun: Vec<MidRunFailure>,
}

impl FaultPlan {
    /// The fault-free plan. Mapper and engine treat it as a strict no-op:
    /// output under the empty plan is bit-identical to the fault-free path.
    pub fn empty() -> FaultPlan {
        FaultPlan {
            seed: 0,
            permanent: Vec::new(),
            seu: SeuRates::zero(),
            midrun: Vec::new(),
        }
    }

    /// Whether this plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.permanent.is_empty() && self.seu.is_zero() && self.midrun.is_empty()
    }

    /// Generates a plan for `config` from `seed` at the given fault
    /// `density` in `[0, 1]`. Density scales every per-resource fault
    /// probability and the SEU rates; `0.0` yields the empty plan.
    ///
    /// The SPM column (memory tiles, column 0) and the islands containing
    /// it are assumed hardened and never drawn as dead — killing the only
    /// memory interface would make *every* kernel unmappable, which is a
    /// configuration error rather than an interesting fault scenario.
    /// Explicitly constructed plans may still fault them.
    pub fn generate(config: &CgraConfig, seed: u64, density: f64) -> FaultPlan {
        let density = density.clamp(0.0, 1.0);
        if density == 0.0 {
            return FaultPlan {
                seed,
                ..FaultPlan::empty()
            };
        }
        // Parts-per-million thresholds at density 1.0; the f64→u64 cast is
        // exact for these magnitudes, so the thresholds are portable.
        let thr = |per_million_at_one: f64| (density * per_million_at_one) as u64;
        let dead_tile_thr = thr(60_000.0);
        let dead_fu_thr = thr(60_000.0);
        let broken_link_thr = thr(40_000.0);
        let stuck_port_thr = thr(20_000.0);
        let dead_island_thr = thr(15_000.0);

        let mut permanent = Vec::new();
        let hardened_island = |island: IslandId| {
            config
                .island_tiles(island)
                .iter()
                .any(|&t| config.is_memory_tile(t))
        };
        for island in config.islands() {
            if hardened_island(island) {
                continue;
            }
            if roll_ppm(seed, SALT_DEAD_ISLAND, island.index() as u64, 0) < dead_island_thr {
                permanent.push(PermanentFault::DeadIsland(island));
            }
        }
        for tile in config.tiles() {
            let t = tile.index() as u64;
            let in_dead_island = permanent.iter().any(
                |f| matches!(f, PermanentFault::DeadIsland(i) if *i == config.island_of(tile)),
            );
            if !config.is_memory_tile(tile) && !in_dead_island {
                if roll_ppm(seed, SALT_DEAD_TILE, t, 0) < dead_tile_thr {
                    permanent.push(PermanentFault::DeadTile(tile));
                } else if roll_ppm(seed, SALT_DEAD_FU, t, 0) < dead_fu_thr {
                    permanent.push(PermanentFault::DeadFu(tile));
                }
            }
            for dir in Dir::ALL {
                if config.neighbor(tile, dir).is_none() {
                    continue;
                }
                let d = dir.index() as u64;
                if roll_ppm(seed, SALT_BROKEN_LINK, t, d) < broken_link_thr {
                    permanent.push(PermanentFault::BrokenLink(tile, dir));
                } else if roll_ppm(seed, SALT_STUCK_PORT, t, d) < stuck_port_thr {
                    permanent.push(PermanentFault::StuckPort(tile, dir));
                }
            }
        }
        let seu = SeuRates {
            // Rest (0.42 V) is the most fragile level; the 8:4:1 ratio is a
            // modeling choice, not a silicon measurement.
            rest_per_million: (density * 800.0) as u32,
            relax_per_million: (density * 400.0) as u32,
            normal_per_million: (density * 100.0) as u32,
        };
        FaultPlan {
            seed,
            permanent,
            seu,
            midrun: Vec::new(),
        }
    }

    /// Returns the plan with one mid-run island failure appended (builder
    /// style, for streaming failover scenarios).
    pub fn with_island_failure(mut self, island: IslandId, after_inputs: usize) -> FaultPlan {
        self.midrun.push(MidRunFailure {
            island,
            after_inputs,
        });
        self
    }

    /// Stable content hash of the whole plan. Suitable as a cache-key
    /// part: two plans hash equal iff they inject the same faults.
    pub fn canonical_hash(&self) -> u64 {
        let mut h = StableHasher::with_seed(0x1ced_fa07);
        h.write_u64(self.seed);
        h.write_usize(self.permanent.len());
        for f in &self.permanent {
            f.hash_into(&mut h);
        }
        h.write_u32(self.seu.normal_per_million);
        h.write_u32(self.seu.relax_per_million);
        h.write_u32(self.seu.rest_per_million);
        h.write_usize(self.midrun.len());
        for m in &self.midrun {
            h.write_u64(m.island.index() as u64);
            h.write_u64(m.after_inputs as u64);
        }
        h.finish()
    }

    /// Whether the FU firing on `tile` at absolute base `cycle`, with the
    /// tile running at `level`, suffers an upset — and if so, which bit of
    /// the computed value flips. Pure function of `(seed, tile, cycle)`:
    /// the upset schedule replays identically across runs.
    pub fn upset(&self, tile: TileId, level: DvfsLevel, cycle: u64) -> Option<u32> {
        let rate = self.seu.rate(level);
        if rate == 0 {
            return None;
        }
        let mut h = StableHasher::with_seed(self.seed);
        h.write_u64(SALT_SEU);
        h.write_u64(tile.index() as u64);
        h.write_u64(cycle);
        let v = h.finish();
        if v % 1_000_000 < u64::from(rate) {
            Some(((v >> 32) % 64) as u32)
        } else {
            None
        }
    }

    /// The dense per-resource view of the permanent faults, for MRRG
    /// construction and placement filtering.
    pub fn mask(&self, config: &CgraConfig) -> FaultMask {
        FaultMask::from_plan(self, config)
    }

    /// The resources the permanent faults exclude, as sorted, deduplicated
    /// lists (the mapper reports this alongside a degraded mapping).
    pub fn excluded(&self, config: &CgraConfig) -> ExcludedResources {
        let mask = self.mask(config);
        let mut tiles = Vec::new();
        let mut fus = Vec::new();
        for t in config.tiles() {
            if !mask.tile_usable(t) {
                tiles.push(t);
            } else if !mask.fu_usable(t) {
                fus.push(t);
            }
        }
        let mut links: Vec<(TileId, Dir)> = self
            .permanent
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::BrokenLink(t, d) | PermanentFault::StuckPort(t, d) => Some((t, d)),
                _ => None,
            })
            .filter(|&(t, _)| mask.tile_usable(t))
            .collect();
        links.sort_by_key(|&(t, d)| (t, d.index()));
        links.dedup();
        let mut islands: Vec<IslandId> = self
            .permanent
            .iter()
            .filter_map(|f| match *f {
                PermanentFault::DeadIsland(i) => Some(i),
                _ => None,
            })
            .collect();
        islands.sort();
        islands.dedup();
        ExcludedResources {
            tiles,
            fus,
            links,
            islands,
        }
    }
}

/// The resources a [`FaultPlan`]'s permanent faults remove from the
/// fabric, reported alongside a degraded mapping.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExcludedResources {
    /// Tiles excluded entirely (dead tiles plus all tiles of dead islands).
    pub tiles: Vec<TileId>,
    /// Tiles whose FU is dead but whose crossbar still routes.
    pub fus: Vec<TileId>,
    /// Explicitly faulted outgoing links (broken links and stuck ports) on
    /// otherwise-usable tiles.
    pub links: Vec<(TileId, Dir)>,
    /// Islands whose DVFS supply failed outright.
    pub islands: Vec<IslandId>,
}

impl ExcludedResources {
    /// Whether nothing is excluded.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty() && self.fus.is_empty() && self.links.is_empty()
    }

    /// Total number of excluded resources (for reporting).
    pub fn count(&self) -> usize {
        self.tiles.len() + self.fus.len() + self.links.len()
    }
}

/// Dense per-resource usability derived from a [`FaultPlan`]'s permanent
/// faults — the view MRRG construction and placement filtering consume.
///
/// A dead tile poisons more than itself: its four outgoing links are gone
/// with its crossbar, and every neighbor's link *towards* it is useless,
/// so those are masked too. This keeps the router from ever exploring a
/// hop that ends inside dead silicon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMask {
    tiles: usize,
    dead_tile: Vec<bool>,
    dead_fu: Vec<bool>,
    dead_link: Vec<bool>,
}

impl FaultMask {
    /// Builds the mask for `plan` against `config`.
    pub fn from_plan(plan: &FaultPlan, config: &CgraConfig) -> FaultMask {
        let n = config.tile_count();
        let mut mask = FaultMask {
            tiles: n,
            dead_tile: vec![false; n],
            dead_fu: vec![false; n],
            dead_link: vec![false; n * 4],
        };
        for f in &plan.permanent {
            match *f {
                PermanentFault::DeadTile(t) => mask.kill_tile(t, config),
                PermanentFault::DeadFu(t) => {
                    if t.index() < n {
                        mask.dead_fu[t.index()] = true;
                    }
                }
                PermanentFault::BrokenLink(t, d) | PermanentFault::StuckPort(t, d) => {
                    if t.index() < n {
                        mask.dead_link[t.index() * 4 + d.index()] = true;
                    }
                }
                PermanentFault::DeadIsland(i) => {
                    for t in config.island_tiles(i) {
                        mask.kill_tile(t, config);
                    }
                }
            }
        }
        mask
    }

    fn kill_tile(&mut self, t: TileId, config: &CgraConfig) {
        if t.index() >= self.tiles {
            return;
        }
        self.dead_tile[t.index()] = true;
        self.dead_fu[t.index()] = true;
        for d in Dir::ALL {
            self.dead_link[t.index() * 4 + d.index()] = true;
        }
        // Neighbors' links towards the corpse are equally useless.
        for (d, n) in config.neighbors(t) {
            self.dead_link[n.index() * 4 + d.opposite().index()] = true;
        }
    }

    /// Whether the tile is alive at all (placement *and* routing).
    pub fn tile_usable(&self, t: TileId) -> bool {
        t.index() >= self.tiles || !self.dead_tile[t.index()]
    }

    /// Whether the tile's FU can execute operations (placement).
    pub fn fu_usable(&self, t: TileId) -> bool {
        t.index() >= self.tiles || !self.dead_fu[t.index()]
    }

    /// Whether the outgoing link of `t` towards `dir` carries data.
    pub fn link_usable(&self, t: TileId, dir: Dir) -> bool {
        t.index() >= self.tiles || !self.dead_link[t.index() * 4 + dir.index()]
    }

    /// Whether the mask excludes nothing.
    pub fn is_empty(&self) -> bool {
        !self.dead_fu.iter().any(|&b| b) && !self.dead_link.iter().any(|&b| b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CgraConfig {
        CgraConfig::iced_prototype()
    }

    #[test]
    fn empty_plan_is_empty_and_masks_nothing() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        let mask = plan.mask(&cfg());
        assert!(mask.is_empty());
        for t in cfg().tiles() {
            assert!(mask.tile_usable(t));
            assert!(mask.fu_usable(t));
            for d in Dir::ALL {
                assert!(mask.link_usable(t, d));
            }
        }
        assert!(plan.excluded(&cfg()).is_empty());
        assert_eq!(plan.upset(TileId(0), DvfsLevel::Rest, 123), None);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let c = cfg();
        let a = FaultPlan::generate(&c, 7, 0.5);
        let b = FaultPlan::generate(&c, 7, 0.5);
        assert_eq!(a, b);
        assert_eq!(a.canonical_hash(), b.canonical_hash());
        // Across many seeds at this density at least one plan must differ.
        let differs = (0..16).any(|s| FaultPlan::generate(&c, s, 0.5) != a);
        assert!(differs, "seed never changed the plan");
    }

    #[test]
    fn zero_density_yields_the_empty_schedule() {
        let plan = FaultPlan::generate(&cfg(), 99, 0.0);
        assert!(plan.is_empty());
        assert_eq!(plan.seed, 99);
    }

    #[test]
    fn generated_plans_spare_the_memory_column() {
        let c = cfg();
        for seed in 0..32 {
            let plan = FaultPlan::generate(&c, seed, 1.0);
            let mask = plan.mask(&c);
            for t in c.tiles().filter(|&t| c.is_memory_tile(t)) {
                assert!(mask.tile_usable(t), "seed {seed}: memory {t} died");
                assert!(mask.fu_usable(t), "seed {seed}: memory {t} FU died");
            }
        }
    }

    #[test]
    fn dead_tile_poisons_links_in_both_directions() {
        let c = cfg();
        let t = c.tile_at(2, 2); // interior tile: four live neighbors
        let plan = FaultPlan {
            seed: 0,
            permanent: vec![PermanentFault::DeadTile(t)],
            seu: SeuRates::zero(),
            midrun: Vec::new(),
        };
        let mask = plan.mask(&c);
        assert!(!mask.tile_usable(t));
        for d in Dir::ALL {
            assert!(!mask.link_usable(t, d));
            let n = c.neighbor(t, d).unwrap();
            assert!(
                !mask.link_usable(n, d.opposite()),
                "neighbor {n} still routes into dead {t}"
            );
        }
        let ex = plan.excluded(&c);
        assert_eq!(ex.tiles, vec![t]);
        assert!(ex.links.is_empty(), "implied links are not reported");
    }

    #[test]
    fn dead_island_kills_all_member_tiles() {
        let c = cfg();
        let island = IslandId((c.island_count() - 1) as u16);
        let plan = FaultPlan {
            seed: 0,
            permanent: vec![PermanentFault::DeadIsland(island)],
            seu: SeuRates::zero(),
            midrun: Vec::new(),
        };
        let mask = plan.mask(&c);
        for t in c.island_tiles(island) {
            assert!(!mask.tile_usable(t));
        }
        let ex = plan.excluded(&c);
        assert_eq!(ex.islands, vec![island]);
        assert_eq!(ex.tiles, c.island_tiles(island));
    }

    #[test]
    fn upset_schedule_is_pure_and_level_ordered() {
        let plan = FaultPlan {
            seed: 42,
            permanent: Vec::new(),
            seu: SeuRates {
                normal_per_million: 1_000,
                relax_per_million: 10_000,
                rest_per_million: 100_000,
            },
            midrun: Vec::new(),
        };
        let t = TileId(5);
        let count = |level: DvfsLevel| {
            (0..200_000)
                .filter(|&c| plan.upset(t, level, c).is_some())
                .count()
        };
        let (n, x, r) = (
            count(DvfsLevel::Normal),
            count(DvfsLevel::Relax),
            count(DvfsLevel::Rest),
        );
        assert!(n < x && x < r, "rates not ordered: {n} {x} {r}");
        assert_eq!(count(DvfsLevel::PowerGated), 0);
        // Replays identically.
        for c in 0..1_000 {
            assert_eq!(
                plan.upset(t, DvfsLevel::Rest, c),
                plan.upset(t, DvfsLevel::Rest, c)
            );
        }
        // Flipped bits stay within a 64-bit word.
        for c in 0..200_000 {
            if let Some(bit) = plan.upset(t, DvfsLevel::Rest, c) {
                assert!(bit < 64);
            }
        }
    }

    #[test]
    fn canonical_hash_distinguishes_plans() {
        let c = cfg();
        let a = FaultPlan::generate(&c, 1, 0.5);
        let b = FaultPlan::generate(&c, 2, 0.5);
        if a != b {
            assert_ne!(a.canonical_hash(), b.canonical_hash());
        }
        let with_midrun = a.clone().with_island_failure(IslandId(3), 10);
        assert_ne!(a.canonical_hash(), with_midrun.canonical_hash());
        assert_eq!(with_midrun.midrun.len(), 1);
    }

    #[test]
    fn density_scales_fault_population() {
        let c = cfg();
        let sparse: usize = (0..8)
            .map(|s| FaultPlan::generate(&c, s, 0.05).permanent.len())
            .sum();
        let dense: usize = (0..8)
            .map(|s| FaultPlan::generate(&c, s, 1.0).permanent.len())
            .sum();
        assert!(dense > sparse, "density had no effect: {sparse} vs {dense}");
    }
}
