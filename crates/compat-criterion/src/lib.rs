//! Offline drop-in subset of `criterion`.
//!
//! crates.io is unreachable in this build environment, so this
//! workspace-local crate provides the benchmarking API surface the
//! workspace's `benches/` use: [`Criterion`], benchmark groups with
//! `sample_size`/`measurement_time`, [`BenchmarkId`], `Bencher::iter`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warm-up pass followed by timed
//! samples, reporting min/mean — but it is a real wall-clock measurement,
//! so `cargo bench` remains usable for before/after comparisons.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmarks `f` against `input` under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Benchmarks `f` under `id` with no explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: &str, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample of `iters_per_sample` calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

fn run_bench(id: &str, sample_size: usize, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up + calibration: one sample of one iteration.
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    let once = b.samples.first().copied().unwrap_or(Duration::ZERO);
    // Pick an iteration count that keeps the whole run inside the budget.
    let per_sample = budget.as_nanos() / sample_size.max(1) as u128;
    let iters = if once.as_nanos() == 0 {
        1000
    } else {
        (per_sample / once.as_nanos()).clamp(1, 100_000) as u64
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    let deadline = Instant::now() + budget;
    for _ in 0..sample_size {
        f(&mut b);
        if Instant::now() > deadline {
            break;
        }
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|s| s.as_nanos() as f64 / iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{id:<48} time: [min {} mean {}]  ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        per_iter.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group-runner function calling each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        let input = 17u64;
        g.bench_with_input(BenchmarkId::new("square", input), &input, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 6).0, "f/6");
        assert_eq!(BenchmarkId::from_parameter("fir").0, "fir");
    }
}
