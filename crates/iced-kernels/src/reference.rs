//! Scalar reference implementations of the evaluated kernels.
//!
//! The paper's kernels come from PolyBench/UTDSP/Parboil as C loops; these
//! are the equivalent plain-Rust versions. They serve two purposes:
//!
//! * they document what each kernel computes (the DFG builders in
//!   [`crate::suite`] reproduce the published *structure*; these reproduce
//!   the *semantics*);
//! * their measured inner-loop trip counts ground the streaming work
//!   models in [`crate::pipelines`]: the tests assert that, e.g., an
//!   spmv-style kernel's trip count is linear in `nnz` while a dense
//!   combine is input-independent — the imbalance the runtime DVFS
//!   controller exploits.
//!
//! All kernels operate on `i64` fixed-point data, matching the functional
//! simulator's ALU, and count their inner-loop iterations so callers can
//! compare work across inputs.

/// A CSR sparse matrix over `i64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// Row start offsets (length `rows + 1`).
    pub row_ptr: Vec<usize>,
    /// Column index per stored element.
    pub col_idx: Vec<usize>,
    /// Stored values.
    pub values: Vec<i64>,
    /// Column count.
    pub cols: usize,
}

impl Csr {
    /// Builds a deterministic pseudo-random CSR matrix with about `nnz`
    /// stored elements.
    pub fn synth(rows: usize, cols: usize, nnz: usize, seed: u64) -> Csr {
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        let per_row = nnz.div_ceil(rows.max(1)).max(1);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for r in 0..rows {
            let mut cols_here: Vec<usize> = (0..per_row)
                .map(|_| next() as usize % cols.max(1))
                .collect();
            cols_here.sort_unstable();
            cols_here.dedup();
            for c in cols_here {
                col_idx.push(c);
                values.push((next() % 64) as i64 - 32);
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            cols,
        }
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.row_ptr.len() - 1
    }
}

/// Result of a reference-kernel run: output values plus the measured
/// inner-loop trip count (the quantity the streaming work models predict).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelRun {
    /// Output vector.
    pub output: Vec<i64>,
    /// Inner-loop iterations executed.
    pub trips: u64,
}

/// FIR filter: `y[i] = Σ_j c[j] · x[i − j]`.
pub fn fir(x: &[i64], coeffs: &[i64]) -> KernelRun {
    let mut trips = 0;
    let output = (0..x.len())
        .map(|i| {
            let mut acc = 0i64;
            for (j, &c) in coeffs.iter().enumerate() {
                if i >= j {
                    acc = acc.wrapping_add(c.wrapping_mul(x[i - j]));
                }
                trips += 1;
            }
            acc
        })
        .collect();
    KernelRun { output, trips }
}

/// Sparse matrix–vector product: trips are exactly `nnz` — the
/// data-dependent kernel at the heart of the GCN aggregation stage.
pub fn spmv(a: &Csr, x: &[i64]) -> KernelRun {
    let mut trips = 0;
    let mut output = vec![0i64; a.rows()];
    for (r, out) in output.iter_mut().enumerate() {
        let mut acc = 0i64;
        for k in a.row_ptr[r]..a.row_ptr[r + 1] {
            acc = acc.wrapping_add(a.values[k].wrapping_mul(x[a.col_idx[k]]));
            trips += 1;
        }
        *out = acc;
    }
    KernelRun { output, trips }
}

/// 1-D convolution with a dense taps vector.
pub fn conv(x: &[i64], taps: &[i64]) -> KernelRun {
    let mut trips = 0;
    let n = x.len().saturating_sub(taps.len().saturating_sub(1));
    let output = (0..n)
        .map(|i| {
            let mut acc = 0i64;
            for (j, &t) in taps.iter().enumerate() {
                acc = acc.wrapping_add(t.wrapping_mul(x[i + j]));
                trips += 1;
            }
            acc
        })
        .collect();
    KernelRun { output, trips }
}

/// Rectified linear unit — the control-flow kernel (per-element branch).
pub fn relu(x: &[i64]) -> KernelRun {
    let output = x.iter().map(|&v| v.max(0)).collect();
    KernelRun {
        output,
        trips: x.len() as u64,
    }
}

/// Histogram over `bins` buckets — the indirect-update HPC kernel.
pub fn histogram(x: &[i64], bins: usize) -> KernelRun {
    let mut output = vec![0i64; bins.max(1)];
    for &v in x {
        let b = (v.unsigned_abs() as usize) % bins.max(1);
        output[b] += 1;
    }
    KernelRun {
        output,
        trips: x.len() as u64,
    }
}

/// Dense matrix–vector product (`n × n` row-major) — the fixed-work dense
/// kernel (mvt's first half; also the GCN combine stage's shape).
pub fn gemv(a: &[i64], x: &[i64]) -> KernelRun {
    let n = x.len();
    assert_eq!(a.len(), n * n, "a must be n x n row-major");
    let mut trips = 0;
    let output = (0..n)
        .map(|r| {
            let mut acc = 0i64;
            for c in 0..n {
                acc = acc.wrapping_add(a[r * n + c].wrapping_mul(x[c]));
                trips += 1;
            }
            acc
        })
        .collect();
    KernelRun { output, trips }
}

/// Dense generalized matrix multiply trip count (values elided; the trips
/// are what the work models consume).
pub fn gemm_trips(n: usize) -> u64 {
    (n * n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_matches_hand_computation() {
        let r = fir(&[1, 2, 3, 4], &[1, 10]);
        // y[0]=1, y[1]=2+10*1, y[2]=3+10*2, y[3]=4+10*3
        assert_eq!(r.output, vec![1, 12, 23, 34]);
        assert_eq!(r.trips, 8);
    }

    #[test]
    fn spmv_trips_equal_nnz() {
        let a = Csr::synth(32, 32, 200, 7);
        let x = vec![1i64; 32];
        let r = spmv(&a, &x);
        assert_eq!(r.trips, a.nnz() as u64);
        // With x = 1, each row sums its stored values.
        for row in 0..a.rows() {
            let expect: i64 = (a.row_ptr[row]..a.row_ptr[row + 1])
                .map(|k| a.values[k])
                .sum();
            assert_eq!(r.output[row], expect);
        }
    }

    #[test]
    fn spmv_work_is_linear_in_nnz_but_gemv_is_not() {
        let x = vec![1i64; 64];
        let sparse = Csr::synth(64, 64, 128, 3);
        let dense = Csr::synth(64, 64, 1024, 3);
        let t_sparse = spmv(&sparse, &x).trips;
        let t_dense = spmv(&dense, &x).trips;
        assert!(t_dense > 4 * t_sparse, "{t_dense} vs {t_sparse}");
        // gemv's work depends only on the dimension.
        let a = vec![1i64; 64 * 64];
        assert_eq!(gemv(&a, &x).trips, 64 * 64);
    }

    #[test]
    fn relu_clamps_and_counts() {
        let r = relu(&[-3, 0, 5, -1]);
        assert_eq!(r.output, vec![0, 0, 5, 0]);
        assert_eq!(r.trips, 4);
    }

    #[test]
    fn conv_is_a_sliding_dot_product() {
        let r = conv(&[1, 2, 3, 4, 5], &[1, 1, 1]);
        assert_eq!(r.output, vec![6, 9, 12]);
        assert_eq!(r.trips, 9);
    }

    #[test]
    fn histogram_counts_every_element_once() {
        let r = histogram(&[0, 1, 2, 3, 4, 5, 6, 7], 4);
        assert_eq!(r.output.iter().sum::<i64>(), 8);
        assert_eq!(r.output, vec![2, 2, 2, 2]);
    }

    #[test]
    fn work_models_agree_with_reference_trip_shapes() {
        use crate::pipelines::Pipeline;
        // The GCN aggregate stage is spmv-like: doubling nnz must roughly
        // double its modeled iterations, while combine stays fixed.
        let p = Pipeline::gcn();
        let agg = p
            .stage_kernels()
            .find(|k| k.source.is_kernel(crate::Kernel::GcnAggregate))
            .unwrap();
        let comb = p
            .stage_kernels()
            .find(|k| k.source.is_kernel(crate::Kernel::GcnCombine))
            .unwrap();
        let a1 = agg.work.iterations(100) as f64;
        let a2 = agg.work.iterations(200) as f64;
        assert!(
            (a2 / a1 - 2.0).abs() < 0.2,
            "spmv-like scaling: {}",
            a2 / a1
        );
        assert_eq!(comb.work.iterations(100), comb.work.iterations(200));
    }

    #[test]
    fn csr_synth_is_deterministic_and_sized() {
        let a = Csr::synth(16, 16, 100, 9);
        let b = Csr::synth(16, 16, 100, 9);
        assert_eq!(a, b);
        assert!(a.nnz() > 50 && a.nnz() <= 128, "nnz {}", a.nnz());
        assert_eq!(a.rows(), 16);
    }
}
