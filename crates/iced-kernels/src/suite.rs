//! The evaluated kernel suite (paper Table I).

use iced_dfg::{Dfg, Opcode};

use crate::synth::SynthSpec;

/// Loop unrolling factor used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnrollFactor {
    /// Original loop body.
    X1,
    /// Unrolled by a factor of 2.
    X2,
}

impl UnrollFactor {
    /// Both evaluated factors.
    pub const ALL: [UnrollFactor; 2] = [UnrollFactor::X1, UnrollFactor::X2];

    /// Numeric factor.
    pub fn factor(self) -> u32 {
        match self {
            UnrollFactor::X1 => 1,
            UnrollFactor::X2 => 2,
        }
    }
}

/// Application domain of a kernel (Table I's leftmost column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// DSP kernels from UTDSP (fir, latnrm, fft, dtw).
    Embedded,
    /// ML kernels (spmv, conv, relu).
    MachineLearning,
    /// HPC kernels from PolyBench/Parboil (histogram, mvt, gemm).
    Hpc,
    /// Kernels of the 2-layer GCN streaming application.
    Gcn,
    /// Kernels of the synthesized LU-decomposition streaming application.
    Lu,
}

/// One benchmark kernel of the ICED evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Finite impulse response filter (embedded).
    Fir,
    /// Normalised lattice filter (embedded).
    Latnrm,
    /// Fast Fourier transform (embedded).
    Fft,
    /// Dynamic time warping (embedded).
    Dtw,
    /// Sparse matrix-vector multiplication (ML).
    Spmv,
    /// Convolution (ML).
    Conv,
    /// Rectified linear unit, standalone to exercise control flow (ML).
    Relu,
    /// Histogram (HPC).
    Histogram,
    /// Matrix-vector product and transpose (HPC).
    Mvt,
    /// Generalised matrix multiplication (HPC).
    Gemm,
    /// GCN: feature compression stage.
    GcnCompress,
    /// GCN: neighbourhood aggregation (instantiated twice in the pipeline).
    GcnAggregate,
    /// GCN: weight combine stage.
    GcnCombine,
    /// GCN: combine + ReLU stage.
    GcnCombRelu,
    /// GCN: global pooling stage.
    GcnPooling,
    /// LU: initialisation.
    LuInit,
    /// LU: decomposition step.
    LuDecompose,
    /// LU: forward solver.
    LuSolver0,
    /// LU: backward solver.
    LuSolver1,
    /// LU: inversion step.
    LuInvert,
    /// LU: determinant computation.
    LuDeterminant,
}

impl Kernel {
    /// All 21 kernels of the evaluation, in Table I order.
    pub const ALL: [Kernel; 21] = [
        Kernel::Fir,
        Kernel::Latnrm,
        Kernel::Fft,
        Kernel::Dtw,
        Kernel::Spmv,
        Kernel::Conv,
        Kernel::Relu,
        Kernel::Histogram,
        Kernel::Mvt,
        Kernel::Gemm,
        Kernel::GcnCompress,
        Kernel::GcnAggregate,
        Kernel::GcnCombine,
        Kernel::GcnCombRelu,
        Kernel::GcnPooling,
        Kernel::LuInit,
        Kernel::LuDecompose,
        Kernel::LuSolver0,
        Kernel::LuSolver1,
        Kernel::LuInvert,
        Kernel::LuDeterminant,
    ];

    /// The 10 standalone kernels mapped on the whole fabric (Figs. 2, 4,
    /// 9–12).
    pub const STANDALONE: [Kernel; 10] = [
        Kernel::Fir,
        Kernel::Latnrm,
        Kernel::Fft,
        Kernel::Dtw,
        Kernel::Spmv,
        Kernel::Conv,
        Kernel::Relu,
        Kernel::Histogram,
        Kernel::Mvt,
        Kernel::Gemm,
    ];

    /// Short lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Fir => "fir",
            Kernel::Latnrm => "latnrm",
            Kernel::Fft => "fft",
            Kernel::Dtw => "dtw",
            Kernel::Spmv => "spmv",
            Kernel::Conv => "conv",
            Kernel::Relu => "relu",
            Kernel::Histogram => "histogram",
            Kernel::Mvt => "mvt",
            Kernel::Gemm => "gemm",
            Kernel::GcnCompress => "compress",
            Kernel::GcnAggregate => "aggregate",
            Kernel::GcnCombine => "combine",
            Kernel::GcnCombRelu => "combrelu",
            Kernel::GcnPooling => "pooling",
            Kernel::LuInit => "init",
            Kernel::LuDecompose => "decompose",
            Kernel::LuSolver0 => "solver0",
            Kernel::LuSolver1 => "solver1",
            Kernel::LuInvert => "invert",
            Kernel::LuDeterminant => "determinant",
        }
    }

    /// Application domain.
    pub fn domain(self) -> Domain {
        match self {
            Kernel::Fir | Kernel::Latnrm | Kernel::Fft | Kernel::Dtw => Domain::Embedded,
            Kernel::Spmv | Kernel::Conv | Kernel::Relu => Domain::MachineLearning,
            Kernel::Histogram | Kernel::Mvt | Kernel::Gemm => Domain::Hpc,
            Kernel::GcnCompress
            | Kernel::GcnAggregate
            | Kernel::GcnCombine
            | Kernel::GcnCombRelu
            | Kernel::GcnPooling => Domain::Gcn,
            Kernel::LuInit
            | Kernel::LuDecompose
            | Kernel::LuSolver0
            | Kernel::LuSolver1
            | Kernel::LuInvert
            | Kernel::LuDeterminant => Domain::Lu,
        }
    }

    /// Number of 2×2 islands Table I allocates to this kernel inside its
    /// streaming application (`None` for standalone kernels, which use the
    /// whole fabric). `GcnAggregate`'s 4 islands cover its two pipeline
    /// instances (2 each).
    pub fn islands(self) -> Option<usize> {
        match self {
            Kernel::GcnCompress => Some(1),
            Kernel::GcnAggregate => Some(4),
            Kernel::GcnCombine => Some(1),
            Kernel::GcnCombRelu => Some(2),
            Kernel::GcnPooling => Some(1),
            Kernel::LuInit => Some(1),
            Kernel::LuDecompose => Some(1),
            Kernel::LuSolver0 => Some(2),
            Kernel::LuSolver1 => Some(2),
            Kernel::LuInvert => Some(1),
            Kernel::LuDeterminant => Some(2),
            _ => None,
        }
    }

    /// Published Table I statistics `(nodes, edges, RecMII)`.
    pub fn table1(self, uf: UnrollFactor) -> (usize, usize, u32) {
        let s = self.spec(uf);
        (s.nodes, s.edges, s.rec_mii())
    }

    /// Builds the kernel's DFG at the given unroll factor.
    pub fn dfg(self, uf: UnrollFactor) -> Dfg {
        self.spec(uf).build()
    }

    /// Structural specification reproducing Table I.
    pub fn spec(self, uf: UnrollFactor) -> SynthSpec {
        use Opcode::*;
        // Critical-cycle construction: a phi followed by a flavour pattern
        // cycled to the RecMII length.
        let crit = |len: usize, tail: &[Opcode]| -> Vec<Opcode> {
            let mut v = vec![Phi];
            for i in 0..len - 1 {
                v.push(tail[i % tail.len()]);
            }
            v
        };
        let acc4 = || crit(4, &[Add, Cmp, Select]);
        let acc7 = || crit(7, &[Add, Mul, Add, Cmp, Select, Mov]);
        let dsp = || vec![Mul, Add, Sub, Shift];
        let ml = || vec![Mul, Add, Max];
        let hpc = || vec![Mul, Add, Sub];
        let gcn = || vec![Mul, Add, Max, Mov];
        let lu = || vec![Mul, Sub, Div];
        let x1 = uf == UnrollFactor::X1;

        let (nodes, edges, critical, secondary, palette) = match self {
            Kernel::Fir => (
                if x1 { 12 } else { 20 },
                if x1 { 16 } else { 26 },
                acc4(),
                vec![],
                dsp(),
            ),
            Kernel::Latnrm => (
                if x1 { 12 } else { 19 },
                if x1 { 16 } else { 25 },
                acc4(),
                vec![],
                dsp(),
            ),
            Kernel::Fft => (
                if x1 { 42 } else { 71 },
                if x1 { 60 } else { 100 },
                acc4(),
                vec![],
                dsp(),
            ),
            Kernel::Dtw => (
                if x1 { 32 } else { 51 },
                if x1 { 49 } else { 84 },
                crit(4, &[Min, Add, Select]),
                vec![2],
                dsp(),
            ),
            Kernel::Spmv => (
                if x1 { 19 } else { 37 },
                if x1 { 24 } else { 50 },
                if x1 { acc4() } else { acc7() },
                vec![2],
                ml(),
            ),
            Kernel::Conv => (
                if x1 { 17 } else { 24 },
                if x1 { 23 } else { 34 },
                acc4(),
                vec![],
                ml(),
            ),
            Kernel::Relu => (
                if x1 { 14 } else { 23 },
                if x1 { 19 } else { 32 },
                crit(4, &[Max, Cmp, Select]),
                vec![],
                ml(),
            ),
            Kernel::Histogram => (
                if x1 { 15 } else { 23 },
                if x1 { 17 } else { 26 },
                acc4(),
                vec![],
                hpc(),
            ),
            Kernel::Mvt => (
                if x1 { 20 } else { 37 },
                if x1 { 29 } else { 54 },
                acc4(),
                vec![],
                hpc(),
            ),
            Kernel::Gemm => (
                if x1 { 17 } else { 23 },
                if x1 { 24 } else { 37 },
                if x1 { acc4() } else { acc7() },
                vec![2],
                hpc(),
            ),
            Kernel::GcnCompress => (
                if x1 { 24 } else { 46 },
                if x1 { 32 } else { 65 },
                if x1 { acc4() } else { acc7() },
                vec![],
                gcn(),
            ),
            Kernel::GcnAggregate => (
                if x1 { 27 } else { 53 },
                if x1 { 34 } else { 69 },
                if x1 { acc4() } else { acc7() },
                vec![],
                gcn(),
            ),
            Kernel::GcnCombine => (
                if x1 { 26 } else { 51 },
                if x1 { 35 } else { 71 },
                if x1 { acc4() } else { acc7() },
                vec![],
                gcn(),
            ),
            Kernel::GcnCombRelu => (
                if x1 { 30 } else { 59 },
                if x1 { 42 } else { 85 },
                if x1 {
                    crit(4, &[Max, Cmp, Select])
                } else {
                    crit(7, &[Max, Mul, Add, Cmp, Select, Mov])
                },
                vec![],
                gcn(),
            ),
            Kernel::GcnPooling => (
                if x1 { 16 } else { 31 },
                if x1 { 21 } else { 43 },
                if x1 {
                    crit(4, &[Max, Cmp, Select])
                } else {
                    crit(7, &[Max, Add, Max, Cmp, Select, Mov])
                },
                vec![],
                gcn(),
            ),
            Kernel::LuInit => (
                if x1 { 11 } else { 21 },
                if x1 { 15 } else { 32 },
                if x1 { acc4() } else { acc7() },
                vec![],
                lu(),
            ),
            Kernel::LuDecompose => (
                if x1 { 15 } else { 27 },
                if x1 { 25 } else { 50 },
                if x1 {
                    crit(4, &[Mul, Sub, Select])
                } else {
                    crit(7, &[Mul, Sub, Div, Cmp, Select, Mov])
                },
                vec![],
                lu(),
            ),
            Kernel::LuSolver0 => (
                if x1 { 33 } else { 65 },
                if x1 { 49 } else { 98 },
                if x1 {
                    crit(8, &[Mul, Sub, Mul, Add, Div, Cmp, Select])
                } else {
                    crit(15, &[Mul, Sub, Mul, Add, Div, Cmp, Select])
                },
                vec![],
                lu(),
            ),
            Kernel::LuSolver1 => (
                if x1 { 35 } else { 69 },
                if x1 { 54 } else { 108 },
                if x1 {
                    crit(12, &[Mul, Sub, Mul, Add, Div, Cmp, Select])
                } else {
                    crit(23, &[Mul, Sub, Mul, Add, Div, Cmp, Select])
                },
                vec![],
                lu(),
            ),
            Kernel::LuInvert => (
                if x1 { 14 } else { 24 },
                if x1 { 22 } else { 37 },
                crit(4, &[Mul, Div, Select]),
                vec![],
                lu(),
            ),
            Kernel::LuDeterminant => (
                if x1 { 20 } else { 38 },
                if x1 { 36 } else { 71 },
                if x1 {
                    crit(7, &[Mul, Sub, Mul, Cmp, Select, Mov])
                } else {
                    crit(13, &[Mul, Sub, Mul, Cmp, Select, Mov])
                },
                vec![],
                lu(),
            ),
        };
        SynthSpec {
            name: self.name(),
            nodes,
            edges,
            critical,
            secondary,
            palette,
            sink_len: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The published Table I, transcribed verbatim:
    /// (kernel, nodes@1, edges@1, recmii@1, nodes@2, edges@2, recmii@2).
    const TABLE1: [(Kernel, usize, usize, u32, usize, usize, u32); 21] = [
        (Kernel::Fir, 12, 16, 4, 20, 26, 4),
        (Kernel::Latnrm, 12, 16, 4, 19, 25, 4),
        (Kernel::Fft, 42, 60, 4, 71, 100, 4),
        (Kernel::Dtw, 32, 49, 4, 51, 84, 4),
        (Kernel::Spmv, 19, 24, 4, 37, 50, 7),
        (Kernel::Conv, 17, 23, 4, 24, 34, 4),
        (Kernel::Relu, 14, 19, 4, 23, 32, 4),
        (Kernel::Histogram, 15, 17, 4, 23, 26, 4),
        (Kernel::Mvt, 20, 29, 4, 37, 54, 4),
        (Kernel::Gemm, 17, 24, 4, 23, 37, 7),
        (Kernel::GcnCompress, 24, 32, 4, 46, 65, 7),
        (Kernel::GcnAggregate, 27, 34, 4, 53, 69, 7),
        (Kernel::GcnCombine, 26, 35, 4, 51, 71, 7),
        (Kernel::GcnCombRelu, 30, 42, 4, 59, 85, 7),
        (Kernel::GcnPooling, 16, 21, 4, 31, 43, 7),
        (Kernel::LuInit, 11, 15, 4, 21, 32, 7),
        (Kernel::LuDecompose, 15, 25, 4, 27, 50, 7),
        (Kernel::LuSolver0, 33, 49, 8, 65, 98, 15),
        (Kernel::LuSolver1, 35, 54, 12, 69, 108, 23),
        (Kernel::LuInvert, 14, 22, 4, 24, 37, 4),
        (Kernel::LuDeterminant, 20, 36, 7, 38, 71, 13),
    ];

    #[test]
    fn table1_exact() {
        for &(k, n1, e1, r1, n2, e2, r2) in &TABLE1 {
            let d1 = k.dfg(UnrollFactor::X1);
            assert_eq!(d1.node_count(), n1, "{} nodes @1", k.name());
            assert_eq!(d1.edge_count(), e1, "{} edges @1", k.name());
            assert_eq!(d1.rec_mii(), r1, "{} RecMII @1", k.name());
            let d2 = k.dfg(UnrollFactor::X2);
            assert_eq!(d2.node_count(), n2, "{} nodes @2", k.name());
            assert_eq!(d2.edge_count(), e2, "{} edges @2", k.name());
            assert_eq!(d2.rec_mii(), r2, "{} RecMII @2", k.name());
        }
    }

    #[test]
    fn all_graphs_validate() {
        for k in Kernel::ALL {
            for uf in UnrollFactor::ALL {
                k.dfg(uf).validate().unwrap();
            }
        }
    }

    #[test]
    fn all_kernels_have_memory_ops() {
        for k in Kernel::ALL {
            let d = k.dfg(UnrollFactor::X1);
            assert!(d.count_ops(|op| op == Opcode::Load) >= 1, "{}", k.name());
            assert!(d.count_ops(|op| op == Opcode::Store) >= 1, "{}", k.name());
        }
    }

    #[test]
    fn streaming_island_allocations_sum_to_nine() {
        let gcn: usize = [
            Kernel::GcnCompress,
            Kernel::GcnAggregate,
            Kernel::GcnCombine,
            Kernel::GcnCombRelu,
            Kernel::GcnPooling,
        ]
        .iter()
        .map(|k| k.islands().unwrap())
        .sum();
        assert_eq!(gcn, 9);
        let lu: usize = [
            Kernel::LuInit,
            Kernel::LuDecompose,
            Kernel::LuSolver0,
            Kernel::LuSolver1,
            Kernel::LuInvert,
            Kernel::LuDeterminant,
        ]
        .iter()
        .map(|k| k.islands().unwrap())
        .sum();
        assert_eq!(lu, 9);
        assert!(Kernel::Fir.islands().is_none());
    }

    #[test]
    fn domains_partition_the_suite() {
        assert_eq!(
            Kernel::ALL
                .iter()
                .filter(|k| k.domain() == Domain::Embedded)
                .count(),
            4
        );
        assert_eq!(
            Kernel::ALL
                .iter()
                .filter(|k| k.domain() == Domain::Gcn)
                .count(),
            5
        );
        assert_eq!(
            Kernel::ALL
                .iter()
                .filter(|k| k.domain() == Domain::Lu)
                .count(),
            6
        );
    }

    #[test]
    fn relu_exercises_control_flow() {
        let d = Kernel::Relu.dfg(UnrollFactor::X1);
        assert!(d.count_ops(|op| op == Opcode::Select) >= 1);
        assert!(d.count_ops(|op| op == Opcode::Cmp) >= 1);
    }
}
