//! Benchmark kernels, streaming applications, and workload generators for
//! the ICED evaluation.
//!
//! The paper evaluates 10 standalone kernels (embedded / ML / HPC domains)
//! plus two streaming applications — a 2-layer GCN (5 unique kernels) and a
//! synthesized LU decomposition (6 kernels). Table I pins the structure of
//! every kernel's dataflow graph: node count, edge count, and RecMII at
//! unroll factors 1 and 2.
//!
//! The paper generates these DFGs with an LLVM front end; reproducing a full
//! LLVM pipeline is out of scope, so this crate *synthesises* each DFG from
//! a per-kernel structural specification — critical recurrence cycle,
//! secondary cycles, feeder chains of loads and arithmetic, store sinks, and
//! cross dependencies — such that the published Table I statistics are
//! reproduced **exactly** (asserted by unit tests). The mapper and the
//! simulators depend only on this structure, which is precisely what Table I
//! fixes. See `DESIGN.md` §2 for the substitution argument.
//!
//! Also provided:
//!
//! * [`workloads`] — seeded synthetic datasets standing in for ENZYMES
//!   (600 protein graphs) and the SuiteSparse LU matrices (150 matrices),
//!   matching the published distribution statistics;
//! * [`pipelines`] — the GCN and LU streaming-pipeline descriptions
//!   (stages, island allocations from Table I, and per-input work models).
//!
//! # Example
//!
//! ```
//! use iced_kernels::{Kernel, UnrollFactor};
//!
//! let dfg = Kernel::Fir.dfg(UnrollFactor::X1);
//! assert_eq!(dfg.node_count(), 12);
//! assert_eq!(dfg.edge_count(), 16);
//! assert_eq!(dfg.rec_mii(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod suite;
mod synth;

pub mod pipelines;
pub mod reference;
pub mod spm;
pub mod workloads;

pub use suite::{Domain, Kernel, UnrollFactor};
pub use synth::SynthSpec;
