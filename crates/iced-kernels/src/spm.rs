//! Scratchpad-memory allocation and tiling.
//!
//! "The compiler needs to guarantee that the data required by the target
//! kernel and application can fit (e.g., using tiling) into the 32 KB SPM"
//! (paper §III). This module implements that guarantee: each kernel
//! declares its data buffers (Table I's *Data* column), and the allocator
//! either places them directly across the SPM banks or derives the tiling
//! factor that makes each working-set slice fit, double-buffered so the
//! DMA can stream the next tile while the current one is processed.

use std::fmt;

use crate::suite::Kernel;

/// One data buffer a kernel streams through the SPM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buffer {
    /// Name in the kernel's source (e.g. `"x"`, `"coeff"`).
    pub name: &'static str,
    /// Elements in the full problem.
    pub elements: usize,
    /// Bytes per element (the prototype uses 32-bit words).
    pub elem_bytes: usize,
    /// Whether the buffer can be tiled (loop-blocked) or must be resident
    /// (e.g. filter coefficients, accumulators).
    pub tileable: bool,
}

impl Buffer {
    /// Total size in bytes.
    pub fn bytes(&self) -> usize {
        self.elements * self.elem_bytes
    }
}

/// Result of allocating a kernel's buffers into the SPM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpmPlan {
    /// Tiling factor: every tileable buffer is split into this many slices
    /// (1 = everything resident).
    pub tiling_factor: usize,
    /// Bank assigned to each buffer, in declaration order.
    pub bank_of: Vec<usize>,
    /// Bytes used in each bank at steady state (double-buffered slices).
    pub bank_bytes: Vec<usize>,
}

impl SpmPlan {
    /// Peak bytes used in any bank.
    pub fn peak_bank_bytes(&self) -> usize {
        self.bank_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Total SPM bytes used.
    pub fn total_bytes(&self) -> usize {
        self.bank_bytes.iter().sum()
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpmError {
    /// The non-tileable (resident) buffers alone exceed the SPM.
    ResidentTooLarge {
        /// Bytes demanded by resident buffers.
        needed: usize,
        /// SPM capacity in bytes.
        capacity: usize,
    },
}

impl fmt::Display for SpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmError::ResidentTooLarge { needed, capacity } => write!(
                f,
                "resident buffers need {needed} B but the SPM holds {capacity} B"
            ),
        }
    }
}

impl std::error::Error for SpmError {}

/// Allocates `buffers` into an SPM of `banks` banks × `bank_kib` KiB each.
///
/// Tileable buffers are double-buffered (slice `i` is processed while the
/// DMA loads slice `i+1`), so each contributes `2 · ceil(size / factor)`
/// bytes. The smallest power-of-two tiling factor that fits is chosen;
/// buffers are then placed greedily on the least-loaded bank (spreading
/// them maximises usable port bandwidth, one read + one write port per
/// bank in the prototype).
///
/// # Errors
///
/// Returns [`SpmError::ResidentTooLarge`] when the non-tileable buffers
/// can never fit.
pub fn allocate(buffers: &[Buffer], banks: usize, bank_kib: usize) -> Result<SpmPlan, SpmError> {
    let capacity = banks * bank_kib * 1024;
    let resident: usize = buffers
        .iter()
        .filter(|b| !b.tileable)
        .map(Buffer::bytes)
        .sum();
    if resident > capacity {
        return Err(SpmError::ResidentTooLarge {
            needed: resident,
            capacity,
        });
    }
    let mut factor = 1usize;
    loop {
        let demand: usize = buffers
            .iter()
            .map(|b| {
                if b.tileable {
                    2 * b.bytes().div_ceil(factor)
                } else {
                    b.bytes()
                }
            })
            .sum();
        if demand <= capacity {
            break;
        }
        factor *= 2;
        // A slice can always shrink to one (double-buffered) element, and
        // residents fit, so termination is guaranteed; cap defensively.
        if factor > 1 << 30 {
            break;
        }
    }
    // Greedy least-loaded bank placement, largest buffers first.
    let mut order: Vec<usize> = (0..buffers.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(buffers[i].bytes()));
    let mut bank_bytes = vec![0usize; banks.max(1)];
    let mut bank_of = vec![0usize; buffers.len()];
    for i in order {
        let b = &buffers[i];
        let size = if b.tileable {
            2 * b.bytes().div_ceil(factor)
        } else {
            b.bytes()
        };
        let bank = bank_bytes
            .iter()
            .enumerate()
            .min_by_key(|(_, &used)| used)
            .map(|(k, _)| k)
            .expect("at least one bank");
        bank_of[i] = bank;
        bank_bytes[bank] += size;
    }
    Ok(SpmPlan {
        tiling_factor: factor,
        bank_of,
        bank_bytes,
    })
}

impl Kernel {
    /// The kernel's data buffers, sized from Table I's *Data* column
    /// (32-bit elements throughout, as in the prototype).
    pub fn buffers(self) -> Vec<Buffer> {
        let b = |name, elements, tileable| Buffer {
            name,
            elements,
            elem_bytes: 4,
            tileable,
        };
        match self {
            Kernel::Fir => vec![b("x", 64, true), b("coeff", 16, false), b("y", 64, true)],
            Kernel::Latnrm => vec![b("x", 32, true), b("k", 16, false), b("y", 32, true)],
            Kernel::Fft => vec![
                b("re", 1024, true),
                b("im", 1024, true),
                b("tw", 512, false),
            ],
            Kernel::Dtw => vec![
                b("a", 128, false),
                b("bseq", 128, false),
                b("d", 128 * 128, true),
            ],
            Kernel::Spmv => vec![
                b("vals", 512, true),
                b("cols", 512, true),
                b("rowp", 65, false),
                b("x", 512, false),
                b("y", 512, true),
            ],
            Kernel::Conv => vec![
                b("in", 32 * 32, true),
                b("k", 9, false),
                b("out", 32 * 32, true),
            ],
            Kernel::Relu => vec![b("in", 1024, true), b("out", 1024, true)],
            Kernel::Histogram => vec![b("in", 2048, true), b("bins", 256, false)],
            Kernel::Mvt => vec![
                b("a", 128 * 128, true),
                b("x1", 128, false),
                b("x2", 128, false),
                b("y1", 128, true),
                b("y2", 128, true),
            ],
            Kernel::Gemm => vec![
                b("a", 128 * 128, true),
                b("bm", 128 * 128, true),
                b("c", 128 * 128, true),
            ],
            // Streaming kernels stream per-input slices; sizes reflect one
            // ENZYMES graph / one ≤100×100 matrix.
            Kernel::GcnCompress | Kernel::GcnAggregate => vec![
                b("feat", 128 * 32, true),
                b("adj", 2 * 126, true),
                b("out", 128 * 32, true),
            ],
            Kernel::GcnCombine | Kernel::GcnCombRelu => vec![
                b("feat", 128 * 32, true),
                b("w", 32 * 32, false),
                b("out", 128 * 32, true),
            ],
            Kernel::GcnPooling => vec![b("feat", 128 * 32, true), b("out", 32, true)],
            Kernel::LuInit | Kernel::LuDecompose | Kernel::LuInvert => {
                vec![b("mat", 100 * 100, true), b("out", 100 * 100, true)]
            }
            Kernel::LuSolver0 | Kernel::LuSolver1 => vec![
                b("lu", 100 * 100, true),
                b("rhs", 100, false),
                b("sol", 100, true),
            ],
            Kernel::LuDeterminant => vec![b("lu", 100 * 100, true), b("det", 1, false)],
        }
    }

    /// Allocates this kernel's buffers into the prototype SPM (32 KiB,
    /// 8 banks).
    ///
    /// # Errors
    ///
    /// See [`allocate`].
    pub fn spm_plan(self) -> Result<SpmPlan, SpmError> {
        allocate(&self.buffers(), 8, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_fits_the_prototype_spm() {
        for k in Kernel::ALL {
            let plan = k.spm_plan().unwrap_or_else(|e| panic!("{}: {e}", k.name()));
            assert!(
                plan.total_bytes() <= 32 * 1024,
                "{}: {} B",
                k.name(),
                plan.total_bytes()
            );
            assert!(plan.peak_bank_bytes() <= 32 * 1024);
        }
    }

    #[test]
    fn small_kernels_need_no_tiling_big_ones_do() {
        assert_eq!(Kernel::Fir.spm_plan().unwrap().tiling_factor, 1);
        assert_eq!(Kernel::Relu.spm_plan().unwrap().tiling_factor, 1);
        // gemm's three 128x128 matrices (192 KiB) must tile.
        let gemm = Kernel::Gemm.spm_plan().unwrap();
        assert!(gemm.tiling_factor >= 8, "factor {}", gemm.tiling_factor);
    }

    #[test]
    fn double_buffering_is_accounted() {
        // One tileable 16 KiB buffer in a 32 KiB SPM: factor 1 fits only
        // because 2 x 16 KiB = capacity.
        let bufs = [Buffer {
            name: "x",
            elements: 4096,
            elem_bytes: 4,
            tileable: true,
        }];
        let plan = allocate(&bufs, 8, 4).unwrap();
        assert_eq!(plan.tiling_factor, 1);
        assert_eq!(plan.total_bytes(), 32 * 1024);
    }

    #[test]
    fn resident_overflow_is_an_error() {
        let bufs = [Buffer {
            name: "huge",
            elements: 100_000,
            elem_bytes: 4,
            tileable: false,
        }];
        assert!(matches!(
            allocate(&bufs, 8, 4),
            Err(SpmError::ResidentTooLarge { .. })
        ));
    }

    #[test]
    fn banks_are_load_balanced() {
        let plan = Kernel::Spmv.spm_plan().unwrap();
        let used_banks = plan.bank_bytes.iter().filter(|&&b| b > 0).count();
        assert!(used_banks >= 4, "spmv buffers should spread: {used_banks}");
    }
}
