//! Streaming-application pipeline descriptions (paper §IV-B, Table I).
//!
//! A streaming application is a linear pipeline of stages; a stage may run
//! several kernels in parallel (the LU application organises 6 kernels into
//! 4 stages). Each stage kernel carries the island allocation Table I
//! assigns to it and a *work model* describing how many loop iterations one
//! input instance costs — fixed for dense kernels (the paper's "weights
//! combine always has a fixed execution delay"), proportional to the
//! input's non-zeros for sparse kernels. The shifting bottleneck between
//! those two classes is exactly what the runtime DVFS controller exploits.
//!
//! A stage's kernel comes from a [`StageSource`]: either a Table I suite
//! [`Kernel`], or a deterministic fuzzer-generated kernel (seeded through
//! `iced-fuzz`) — the [`Pipeline::sensor`] and [`Pipeline::stencil`]
//! applications are built entirely from generated kernels, giving the
//! streaming layer coverage beyond the two paper applications.

use iced_dfg::Dfg;
use iced_fuzz::gen::{generate, GenOptions};

use crate::suite::{Kernel, UnrollFactor};

/// Per-input work model of one pipeline kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkModel {
    /// Iterations grow with the input's non-zero count: `base + scale·nnz`.
    PerUnit {
        /// Fixed overhead iterations.
        base: f64,
        /// Iterations per work unit (non-zero).
        scale: f64,
    },
    /// Input-independent iteration count (dense kernels).
    Fixed {
        /// Iterations per input.
        iters: f64,
    },
}

impl WorkModel {
    /// Loop iterations needed for an input with `units` work units.
    pub fn iterations(&self, units: u64) -> u64 {
        let it = match *self {
            WorkModel::PerUnit { base, scale } => base + scale * units as f64,
            WorkModel::Fixed { iters } => iters,
        };
        it.max(1.0).round() as u64
    }

    /// Whether the model depends on the input at all.
    pub fn is_data_dependent(&self) -> bool {
        matches!(self, WorkModel::PerUnit { .. })
    }
}

/// Where a stage kernel's DFG comes from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StageSource {
    /// A Table I suite kernel.
    Suite(Kernel),
    /// A deterministic fuzzer-generated kernel: `seed` fully determines
    /// the DFG (via `iced_fuzz::gen::generate` with default options);
    /// `name` is the stable stage name used for display and routing.
    Generated {
        /// Stable stage name.
        name: &'static str,
        /// Generator seed.
        seed: u64,
    },
}

impl StageSource {
    /// Stable display name of the stage kernel.
    pub fn name(&self) -> &'static str {
        match self {
            StageSource::Suite(k) => k.name(),
            StageSource::Generated { name, .. } => name,
        }
    }

    /// The suite kernel, when this source is one.
    pub fn suite_kernel(&self) -> Option<Kernel> {
        match self {
            StageSource::Suite(k) => Some(*k),
            StageSource::Generated { .. } => None,
        }
    }

    /// Whether this source is the given suite kernel.
    pub fn is_kernel(&self, kernel: Kernel) -> bool {
        self.suite_kernel() == Some(kernel)
    }

    /// Builds the stage's DFG.
    ///
    /// Generated sources ignore the unroll factor below the generator
    /// (their seeds already decide unrolling); suite sources honour it.
    ///
    /// # Panics
    ///
    /// Panics if a generated source's seed does not generate — pipeline
    /// seeds are curated constants and covered by unit tests, so this is
    /// unreachable for the shipped pipelines.
    pub fn dfg(&self, uf: UnrollFactor) -> Dfg {
        match self {
            StageSource::Suite(k) => k.dfg(uf),
            StageSource::Generated { name, seed } => generate(*seed, &GenOptions::default())
                .unwrap_or_else(|e| panic!("pipeline seed {seed:#x} ({name}) must generate: {e}")),
        }
    }
}

/// One kernel within a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageKernel {
    /// The kernel source (suite or generated).
    pub source: StageSource,
    /// Islands allocated by the static partitioning (Table I).
    pub islands: usize,
    /// Per-input work model.
    pub work: WorkModel,
}

/// One pipeline stage (kernels within a stage run in parallel).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStage {
    /// Parallel kernels of this stage.
    pub kernels: Vec<StageKernel>,
}

/// A streaming application.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Application name ("gcn" or "lu").
    pub name: &'static str,
    /// Stages in dataflow order.
    pub stages: Vec<PipelineStage>,
}

fn stage(kernels: Vec<StageKernel>) -> PipelineStage {
    PipelineStage { kernels }
}

fn sk(kernel: Kernel, islands: usize, work: WorkModel) -> StageKernel {
    StageKernel {
        source: StageSource::Suite(kernel),
        islands,
        work,
    }
}

fn gk(name: &'static str, seed: u64, islands: usize, work: WorkModel) -> StageKernel {
    StageKernel {
        source: StageSource::Generated { name, seed },
        islands,
        work,
    }
}

impl Pipeline {
    /// The 2-layer GCN inference application: 5 unique kernels with
    /// `aggregate` instantiated twice (Table I allocates its 4 islands
    /// across the two instances). Aggregation and compression are
    /// spmv-like (work ∝ graph nnz); combine/combrelu/pooling are dense.
    pub fn gcn() -> Pipeline {
        Pipeline {
            name: "gcn",
            stages: vec![
                stage(vec![sk(
                    Kernel::GcnCompress,
                    1,
                    WorkModel::PerUnit {
                        base: 32.0,
                        scale: 0.8,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnAggregate,
                    2,
                    WorkModel::PerUnit {
                        base: 16.0,
                        scale: 5.0,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnCombine,
                    1,
                    WorkModel::Fixed { iters: 112.0 },
                )]),
                stage(vec![sk(
                    Kernel::GcnAggregate,
                    2,
                    WorkModel::PerUnit {
                        base: 16.0,
                        scale: 5.0,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnCombRelu,
                    2,
                    WorkModel::Fixed { iters: 128.0 },
                )]),
                stage(vec![sk(
                    Kernel::GcnPooling,
                    1,
                    WorkModel::Fixed { iters: 64.0 },
                )]),
            ],
        }
    }

    /// The synthesized LU-decomposition application: 6 kernels in 4 stages
    /// (the two solvers run in parallel, as do invert/determinant).
    pub fn lu() -> Pipeline {
        Pipeline {
            name: "lu",
            stages: vec![
                stage(vec![sk(
                    Kernel::LuInit,
                    1,
                    WorkModel::Fixed { iters: 150.0 },
                )]),
                stage(vec![sk(
                    Kernel::LuDecompose,
                    1,
                    WorkModel::PerUnit {
                        base: 32.0,
                        scale: 0.5,
                    },
                )]),
                stage(vec![
                    sk(
                        Kernel::LuSolver0,
                        2,
                        WorkModel::PerUnit {
                            base: 24.0,
                            scale: 1.2,
                        },
                    ),
                    sk(
                        Kernel::LuSolver1,
                        2,
                        WorkModel::PerUnit {
                            base: 24.0,
                            scale: 1.2,
                        },
                    ),
                ]),
                stage(vec![
                    sk(Kernel::LuInvert, 1, WorkModel::Fixed { iters: 350.0 }),
                    sk(
                        Kernel::LuDeterminant,
                        2,
                        WorkModel::PerUnit {
                            base: 60.0,
                            scale: 0.3,
                        },
                    ),
                ]),
            ],
        }
    }

    /// A sensor-fusion style application built entirely from
    /// fuzzer-generated kernels: deskew → fuse (two parallel channels) →
    /// threshold. The front stages are sparse (work tracks the number of
    /// active sensor channels), the final threshold is dense — the same
    /// shifting-bottleneck structure the runtime controller exploits in
    /// GCN, but over generated dataflow instead of Table I kernels.
    pub fn sensor() -> Pipeline {
        Pipeline {
            name: "sensor",
            stages: vec![
                stage(vec![gk(
                    "deskew",
                    0x5E50_0001,
                    2,
                    WorkModel::PerUnit {
                        base: 24.0,
                        scale: 1.5,
                    },
                )]),
                stage(vec![
                    gk(
                        "fuse_lo",
                        0x5E50_0002,
                        2,
                        WorkModel::PerUnit {
                            base: 16.0,
                            scale: 2.0,
                        },
                    ),
                    gk(
                        "fuse_hi",
                        0x5E50_0003,
                        2,
                        WorkModel::PerUnit {
                            base: 16.0,
                            scale: 2.0,
                        },
                    ),
                ]),
                stage(vec![gk(
                    "threshold",
                    0x5E50_0004,
                    3,
                    WorkModel::Fixed { iters: 96.0 },
                )]),
            ],
        }
    }

    /// A stencil-sweep style application from fuzzer-generated kernels:
    /// halo exchange → interior update → residual reduction → correction.
    /// The interior update dominates on dense inputs; the residual stage
    /// scales with the number of boundary cells.
    pub fn stencil() -> Pipeline {
        Pipeline {
            name: "stencil",
            stages: vec![
                stage(vec![gk(
                    "halo",
                    0x57E4_0001,
                    1,
                    WorkModel::PerUnit {
                        base: 12.0,
                        scale: 0.6,
                    },
                )]),
                stage(vec![gk(
                    "interior",
                    0x57E4_0002,
                    4,
                    WorkModel::Fixed { iters: 220.0 },
                )]),
                stage(vec![gk(
                    "residual",
                    0x57E4_0003,
                    2,
                    WorkModel::PerUnit {
                        base: 20.0,
                        scale: 1.0,
                    },
                )]),
                stage(vec![gk(
                    "correct",
                    0x57E4_0004,
                    2,
                    WorkModel::Fixed { iters: 72.0 },
                )]),
            ],
        }
    }

    /// Looks a pipeline up by name (`gcn`, `lu`, `sensor`, `stencil`).
    pub fn by_name(name: &str) -> Option<Pipeline> {
        match name {
            "gcn" => Some(Pipeline::gcn()),
            "lu" => Some(Pipeline::lu()),
            "sensor" => Some(Pipeline::sensor()),
            "stencil" => Some(Pipeline::stencil()),
            _ => None,
        }
    }

    /// Every shipped pipeline, suite-backed and generated.
    pub fn all() -> Vec<Pipeline> {
        vec![
            Pipeline::gcn(),
            Pipeline::lu(),
            Pipeline::sensor(),
            Pipeline::stencil(),
        ]
    }

    /// Total islands allocated across all stage kernels.
    pub fn total_islands(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| s.kernels.iter())
            .map(|k| k.islands)
            .sum()
    }

    /// All stage kernels in dataflow order.
    pub fn stage_kernels(&self) -> impl Iterator<Item = &StageKernel> + '_ {
        self.stages.iter().flat_map(|s| s.kernels.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_matches_table1_allocation() {
        let p = Pipeline::gcn();
        assert_eq!(p.total_islands(), 9);
        assert_eq!(p.stages.len(), 6);
        // aggregate appears twice with 2 islands each (Table I's "4").
        let agg: Vec<_> = p
            .stage_kernels()
            .filter(|k| k.source.is_kernel(Kernel::GcnAggregate))
            .collect();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.iter().map(|k| k.islands).sum::<usize>(), 4);
    }

    #[test]
    fn lu_has_four_stages_six_kernels() {
        let p = Pipeline::lu();
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.stage_kernels().count(), 6);
        assert_eq!(p.total_islands(), 9);
    }

    #[test]
    fn work_models_shift_the_bottleneck() {
        let p = Pipeline::gcn();
        let agg = p
            .stage_kernels()
            .find(|k| k.source.is_kernel(Kernel::GcnAggregate))
            .unwrap();
        let comb = p
            .stage_kernels()
            .find(|k| k.source.is_kernel(Kernel::GcnCombine))
            .unwrap();
        // Sparse input: combine dominates; dense input: aggregate does.
        assert!(agg.work.iterations(8) < comb.work.iterations(8));
        assert!(agg.work.iterations(200) > comb.work.iterations(200));
        assert!(agg.work.is_data_dependent());
        assert!(!comb.work.is_data_dependent());
    }

    #[test]
    fn generated_pipelines_fit_the_fabric() {
        for p in [Pipeline::sensor(), Pipeline::stencil()] {
            assert!(p.total_islands() <= 9, "{} over-allocates islands", p.name);
            assert!(p.stages.len() >= 3);
            // Each application keeps a sparse and a dense stage so the
            // runtime DVFS controller has a bottleneck to chase.
            assert!(p.stage_kernels().any(|k| k.work.is_data_dependent()));
            assert!(p.stage_kernels().any(|k| !k.work.is_data_dependent()));
        }
    }

    #[test]
    fn generated_stage_seeds_are_curated() {
        // Every generated stage seed must actually generate (dfg() panics
        // otherwise) and produce a non-trivial, valid kernel — this is the
        // curation gate for the constants in sensor()/stencil().
        for p in [Pipeline::sensor(), Pipeline::stencil()] {
            for k in p.stage_kernels() {
                assert!(k.source.suite_kernel().is_none());
                let dfg = k.source.dfg(UnrollFactor::X1);
                dfg.validate().unwrap();
                assert!(dfg.node_count() >= 3, "{} too small", k.source.name());
            }
        }
    }

    #[test]
    fn generated_stage_kernels_map_on_the_prototype() {
        use iced_arch::CgraConfig;
        use iced_mapper::{map_with, MapperOptions};
        let cfg = CgraConfig::iced_prototype();
        for p in [Pipeline::sensor(), Pipeline::stencil()] {
            for k in p.stage_kernels() {
                let dfg = k.source.dfg(UnrollFactor::X1);
                let m = map_with(&dfg, &cfg, &MapperOptions::default())
                    .unwrap_or_else(|e| panic!("{} does not map: {e}", k.source.name()));
                assert!(m.ii() >= 1);
            }
        }
    }

    #[test]
    fn by_name_covers_all_pipelines() {
        for p in Pipeline::all() {
            let found = Pipeline::by_name(p.name).unwrap();
            assert_eq!(found.name, p.name);
            assert_eq!(found.stages.len(), p.stages.len());
        }
        assert!(Pipeline::by_name("nope").is_none());
    }

    #[test]
    fn stage_source_names_are_stable() {
        let s = StageSource::Generated {
            name: "deskew",
            seed: 1,
        };
        assert_eq!(s.name(), "deskew");
        assert!(!s.is_kernel(Kernel::Fir));
        assert_eq!(StageSource::Suite(Kernel::Fir).name(), "fir");
    }

    #[test]
    fn iterations_are_at_least_one() {
        assert_eq!(WorkModel::Fixed { iters: 0.0 }.iterations(0), 1);
        assert_eq!(
            WorkModel::PerUnit {
                base: 0.0,
                scale: 0.0
            }
            .iterations(0),
            1
        );
    }
}
