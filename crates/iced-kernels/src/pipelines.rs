//! Streaming-application pipeline descriptions (paper §IV-B, Table I).
//!
//! A streaming application is a linear pipeline of stages; a stage may run
//! several kernels in parallel (the LU application organises 6 kernels into
//! 4 stages). Each stage kernel carries the island allocation Table I
//! assigns to it and a *work model* describing how many loop iterations one
//! input instance costs — fixed for dense kernels (the paper's "weights
//! combine always has a fixed execution delay"), proportional to the
//! input's non-zeros for sparse kernels. The shifting bottleneck between
//! those two classes is exactly what the runtime DVFS controller exploits.

use crate::suite::Kernel;

/// Per-input work model of one pipeline kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkModel {
    /// Iterations grow with the input's non-zero count: `base + scale·nnz`.
    PerUnit {
        /// Fixed overhead iterations.
        base: f64,
        /// Iterations per work unit (non-zero).
        scale: f64,
    },
    /// Input-independent iteration count (dense kernels).
    Fixed {
        /// Iterations per input.
        iters: f64,
    },
}

impl WorkModel {
    /// Loop iterations needed for an input with `units` work units.
    pub fn iterations(&self, units: u64) -> u64 {
        let it = match *self {
            WorkModel::PerUnit { base, scale } => base + scale * units as f64,
            WorkModel::Fixed { iters } => iters,
        };
        it.max(1.0).round() as u64
    }

    /// Whether the model depends on the input at all.
    pub fn is_data_dependent(&self) -> bool {
        matches!(self, WorkModel::PerUnit { .. })
    }
}

/// One kernel within a pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Islands allocated by the static partitioning (Table I).
    pub islands: usize,
    /// Per-input work model.
    pub work: WorkModel,
}

/// One pipeline stage (kernels within a stage run in parallel).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineStage {
    /// Parallel kernels of this stage.
    pub kernels: Vec<StageKernel>,
}

/// A streaming application.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Application name ("gcn" or "lu").
    pub name: &'static str,
    /// Stages in dataflow order.
    pub stages: Vec<PipelineStage>,
}

fn stage(kernels: Vec<StageKernel>) -> PipelineStage {
    PipelineStage { kernels }
}

fn sk(kernel: Kernel, islands: usize, work: WorkModel) -> StageKernel {
    StageKernel {
        kernel,
        islands,
        work,
    }
}

impl Pipeline {
    /// The 2-layer GCN inference application: 5 unique kernels with
    /// `aggregate` instantiated twice (Table I allocates its 4 islands
    /// across the two instances). Aggregation and compression are
    /// spmv-like (work ∝ graph nnz); combine/combrelu/pooling are dense.
    pub fn gcn() -> Pipeline {
        Pipeline {
            name: "gcn",
            stages: vec![
                stage(vec![sk(
                    Kernel::GcnCompress,
                    1,
                    WorkModel::PerUnit {
                        base: 32.0,
                        scale: 0.8,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnAggregate,
                    2,
                    WorkModel::PerUnit {
                        base: 16.0,
                        scale: 5.0,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnCombine,
                    1,
                    WorkModel::Fixed { iters: 112.0 },
                )]),
                stage(vec![sk(
                    Kernel::GcnAggregate,
                    2,
                    WorkModel::PerUnit {
                        base: 16.0,
                        scale: 5.0,
                    },
                )]),
                stage(vec![sk(
                    Kernel::GcnCombRelu,
                    2,
                    WorkModel::Fixed { iters: 128.0 },
                )]),
                stage(vec![sk(
                    Kernel::GcnPooling,
                    1,
                    WorkModel::Fixed { iters: 64.0 },
                )]),
            ],
        }
    }

    /// The synthesized LU-decomposition application: 6 kernels in 4 stages
    /// (the two solvers run in parallel, as do invert/determinant).
    pub fn lu() -> Pipeline {
        Pipeline {
            name: "lu",
            stages: vec![
                stage(vec![sk(
                    Kernel::LuInit,
                    1,
                    WorkModel::Fixed { iters: 150.0 },
                )]),
                stage(vec![sk(
                    Kernel::LuDecompose,
                    1,
                    WorkModel::PerUnit {
                        base: 32.0,
                        scale: 0.5,
                    },
                )]),
                stage(vec![
                    sk(
                        Kernel::LuSolver0,
                        2,
                        WorkModel::PerUnit {
                            base: 24.0,
                            scale: 1.2,
                        },
                    ),
                    sk(
                        Kernel::LuSolver1,
                        2,
                        WorkModel::PerUnit {
                            base: 24.0,
                            scale: 1.2,
                        },
                    ),
                ]),
                stage(vec![
                    sk(Kernel::LuInvert, 1, WorkModel::Fixed { iters: 350.0 }),
                    sk(
                        Kernel::LuDeterminant,
                        2,
                        WorkModel::PerUnit {
                            base: 60.0,
                            scale: 0.3,
                        },
                    ),
                ]),
            ],
        }
    }

    /// Total islands allocated across all stage kernels.
    pub fn total_islands(&self) -> usize {
        self.stages
            .iter()
            .flat_map(|s| s.kernels.iter())
            .map(|k| k.islands)
            .sum()
    }

    /// All stage kernels in dataflow order.
    pub fn stage_kernels(&self) -> impl Iterator<Item = &StageKernel> + '_ {
        self.stages.iter().flat_map(|s| s.kernels.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcn_matches_table1_allocation() {
        let p = Pipeline::gcn();
        assert_eq!(p.total_islands(), 9);
        assert_eq!(p.stages.len(), 6);
        // aggregate appears twice with 2 islands each (Table I's "4").
        let agg: Vec<_> = p
            .stage_kernels()
            .filter(|k| k.kernel == Kernel::GcnAggregate)
            .collect();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.iter().map(|k| k.islands).sum::<usize>(), 4);
    }

    #[test]
    fn lu_has_four_stages_six_kernels() {
        let p = Pipeline::lu();
        assert_eq!(p.stages.len(), 4);
        assert_eq!(p.stage_kernels().count(), 6);
        assert_eq!(p.total_islands(), 9);
    }

    #[test]
    fn work_models_shift_the_bottleneck() {
        let p = Pipeline::gcn();
        let agg = p
            .stage_kernels()
            .find(|k| k.kernel == Kernel::GcnAggregate)
            .unwrap();
        let comb = p
            .stage_kernels()
            .find(|k| k.kernel == Kernel::GcnCombine)
            .unwrap();
        // Sparse input: combine dominates; dense input: aggregate does.
        assert!(agg.work.iterations(8) < comb.work.iterations(8));
        assert!(agg.work.iterations(200) > comb.work.iterations(200));
        assert!(agg.work.is_data_dependent());
        assert!(!comb.work.is_data_dependent());
    }

    #[test]
    fn iterations_are_at_least_one() {
        assert_eq!(WorkModel::Fixed { iters: 0.0 }.iterations(0), 1);
        assert_eq!(
            WorkModel::PerUnit {
                base: 0.0,
                scale: 0.0
            }
            .iterations(0),
            1
        );
    }
}
