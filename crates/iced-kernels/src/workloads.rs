//! Synthetic workload datasets.
//!
//! The paper drives its streaming applications with the ENZYMES protein
//! dataset (600 graphs, edge degree 2–126, average 32.6, split 450/150) and
//! 150 sparse matrices (≤ 100×100) from the SuiteSparse collection. Neither
//! dataset ships here, so seeded generators reproduce the published
//! *distribution statistics* — which is all that reaches the pipeline
//! simulator: each input contributes only its work size (≈ nnz) to the
//! data-dependent kernels.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One input graph of the GCN streaming application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphSample {
    /// Vertex count.
    pub nodes: usize,
    /// Edge count (the paper's "edge degree": 2–126, mean ≈ 32.6).
    pub edges: usize,
}

impl GraphSample {
    /// Non-zeros of the graph's adjacency in CSR form (undirected edges
    /// stored twice) — the work unit of spmv-like kernels.
    pub fn nnz(&self) -> u64 {
        2 * self.edges as u64
    }
}

/// One input matrix of the LU streaming application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixSample {
    /// Dimension (`n × n`, `n ≤ 100`).
    pub n: usize,
    /// Stored non-zeros.
    pub nnz: usize,
}

/// Generates the ENZYMES-like dataset: `count` graphs whose edge counts lie
/// in `[2, 126]` with mean ≈ 32.6 (a clamped exponential matches the
/// protein-graph skew: many small graphs, a long tail of dense ones).
pub fn enzymes_like(count: usize, seed: u64) -> Vec<GraphSample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            // Exponential with mean 30 over the offset 2, clamped at 126.
            let u: f64 = rng.gen_range(1e-9..1.0f64);
            let e = 2.0 + 31.0 * (-u.ln());
            let edges = (e.round() as usize).clamp(2, 126);
            // ENZYMES graphs average ~33 vertices; tie vertices loosely to
            // edge count so dense graphs are also larger.
            let nodes = (8 + edges / 2 + rng.gen_range(0..12usize)).min(126);
            GraphSample { nodes, edges }
        })
        .collect()
}

/// Generates the SuiteSparse-like LU inputs: `count` sparse matrices with
/// `n ∈ [10, 100]` and densities in `[0.03, 0.5]`.
pub fn suitesparse_like(count: usize, seed: u64) -> Vec<MatrixSample> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let n = rng.gen_range(10..=100usize);
            let density: f64 = rng.gen_range(0.03..0.5);
            let nnz = ((n * n) as f64 * density).round().max(n as f64) as usize;
            MatrixSample { n, nnz }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enzymes_statistics_match_paper() {
        let graphs = enzymes_like(600, 7);
        assert_eq!(graphs.len(), 600);
        let min = graphs.iter().map(|g| g.edges).min().unwrap();
        let max = graphs.iter().map(|g| g.edges).max().unwrap();
        let mean = graphs.iter().map(|g| g.edges as f64).sum::<f64>() / 600.0;
        assert!(min >= 2);
        assert!(max <= 126);
        assert!((27.0..=38.0).contains(&mean), "mean degree {mean}");
        // A long tail exists (some graphs are much denser than average).
        assert!(max > 100, "max {max}");
    }

    #[test]
    fn enzymes_is_deterministic_per_seed() {
        assert_eq!(enzymes_like(50, 1), enzymes_like(50, 1));
        assert_ne!(enzymes_like(50, 1), enzymes_like(50, 2));
    }

    #[test]
    fn matrices_respect_bounds() {
        let ms = suitesparse_like(150, 11);
        assert_eq!(ms.len(), 150);
        for m in &ms {
            assert!((10..=100).contains(&m.n));
            assert!(m.nnz >= m.n);
            assert!(m.nnz <= m.n * m.n / 2 + m.n);
        }
        // Work sizes vary by more than an order of magnitude — the load
        // imbalance that motivates dynamic DVFS.
        let min = ms.iter().map(|m| m.nnz).min().unwrap();
        let max = ms.iter().map(|m| m.nnz).max().unwrap();
        assert!(max > 10 * min, "min {min}, max {max}");
    }
}
