//! Structural DFG synthesis from per-kernel specifications.
//!
//! Every evaluated kernel is described by a [`SynthSpec`]: the opcode
//! sequence of its critical recurrence cycle (length = RecMII), optional
//! secondary cycles, an arithmetic palette for its feeder chains, a store
//! sink, and the exact node/edge targets from Table I. [`SynthSpec::build`]
//! deterministically expands the spec into a [`Dfg`]:
//!
//! * the **critical cycle**: a data chain closed by a distance-1
//!   loop-carried edge — the recurrence that determines the II;
//! * **secondary cycles**, attached downstream of the critical cycle (like
//!   Fig. 1's blue `n10`/`n11` pair);
//! * **feeder chains**: load-headed chains of palette ops feeding the cycle
//!   positions round-robin (address streams, coefficient loads, …);
//! * a **sink chain** ending in stores, fed from the cycle's tail;
//! * **extra edges**: additional forward dependencies (operand reuse,
//!   second consumers) drawn from a deterministic candidate list until the
//!   edge target is met.
//!
//! All extra edges point "downstream" (feeder → feeder, feeder → cycle,
//! cycle → sink), so the only directed cycles in the result are the
//! declared recurrence cycles — `rec_mii` is exactly the critical length by
//! construction.

use iced_dfg::{Dfg, DfgBuilder, NodeId, Opcode};

/// Structural specification of one kernel DFG.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Kernel name (used as the DFG name).
    pub name: &'static str,
    /// Target node count (Table I).
    pub nodes: usize,
    /// Target edge count (Table I).
    pub edges: usize,
    /// Opcodes of the critical recurrence cycle; its length is the RecMII.
    pub critical: Vec<Opcode>,
    /// Sizes of secondary recurrence cycles (each built from the palette).
    pub secondary: Vec<usize>,
    /// Arithmetic palette for feeder/sink chains, cycled deterministically.
    pub palette: Vec<Opcode>,
    /// Length of the store-terminated sink chain (0 = no sink).
    pub sink_len: usize,
}

impl SynthSpec {
    /// Expands the specification into a DFG and checks the Table I targets.
    ///
    /// # Panics
    ///
    /// Panics if the spec is internally inconsistent (targets unreachable) —
    /// specs are compile-time constants validated by the crate's tests.
    pub fn build(&self) -> Dfg {
        let c = self.critical.len();
        assert!(c >= 1, "critical cycle must be non-empty");
        let sec_total: usize = self.secondary.iter().sum();
        let fixed = c + sec_total + self.sink_len;
        assert!(
            self.nodes >= fixed,
            "{}: {} nodes cannot hold cycle {c} + secondary {sec_total} + sink {}",
            self.name,
            self.nodes,
            self.sink_len
        );
        let feeder_total = self.nodes - fixed;
        let extra = self
            .edges
            .checked_sub(self.nodes + self.secondary.len())
            .unwrap_or_else(|| {
                panic!(
                    "{}: edge target {} below structural minimum",
                    self.name, self.edges
                )
            });

        let mut b = DfgBuilder::new(self.name);

        // Critical recurrence cycle.
        let crit: Vec<NodeId> = self
            .critical
            .iter()
            .enumerate()
            .map(|(i, &op)| b.node(op, format!("c{i}")))
            .collect();
        b.data_chain(&crit).expect("fresh chain");
        b.carry(crit[c - 1], crit[0]).expect("cycle closure");

        // Secondary cycles, attached downstream of the critical tail.
        for (si, &s) in self.secondary.iter().enumerate() {
            assert!(s >= 1, "secondary cycle must be non-empty");
            let nodes: Vec<NodeId> = (0..s)
                .map(|i| b.node(self.pal(si + i), format!("s{si}_{i}")))
                .collect();
            b.data_chain(&nodes).expect("fresh chain");
            b.carry(nodes[s - 1], nodes[0]).expect("cycle closure");
            b.data(crit[c - 1], nodes[0]).expect("attach");
        }

        // Feeder chains: load-headed, up to 3 ops each, feeding the cycle
        // round-robin (skipping position 0, the recurrence head).
        let mut feeders: Vec<Vec<NodeId>> = Vec::new();
        let mut remaining = feeder_total;
        while remaining > 0 {
            let len = remaining.min(3);
            let ci = feeders.len();
            let chain: Vec<NodeId> = (0..len)
                .map(|i| {
                    if i == 0 {
                        b.node(Opcode::Load, format!("f{ci}_ld"))
                    } else {
                        b.node(self.pal(ci + i), format!("f{ci}_{i}"))
                    }
                })
                .collect();
            b.data_chain(&chain).expect("fresh chain");
            let attach = crit[self.attach_pos(ci)];
            b.data(chain[len - 1], attach).expect("feeder attach");
            feeders.push(chain);
            remaining -= len;
        }

        // Sink chain: fed from the cycle tail, ending in a store.
        let mut sink: Vec<NodeId> = Vec::new();
        if self.sink_len > 0 {
            for i in 0..self.sink_len {
                let op = if i + 1 == self.sink_len {
                    Opcode::Store
                } else if i == 0 {
                    Opcode::Mov
                } else {
                    self.pal(i)
                };
                sink.push(b.node(op, format!("k{i}")));
            }
            b.data(crit[c - 1], sink[0]).expect("sink attach");
            b.data_chain(&sink).expect("fresh chain");
        }

        // Extra edges from the deterministic candidate list.
        let candidates = self.extra_candidates(&crit, &feeders, &sink);
        assert!(
            candidates.len() >= extra,
            "{}: need {extra} extra edges, only {} candidates",
            self.name,
            candidates.len()
        );
        for &(src, dst) in candidates.iter().take(extra) {
            b.data(src, dst)
                .expect("extra edges are unique by construction");
        }

        let dfg = b.finish().expect("synthesised graph is valid");
        debug_assert_eq!(dfg.node_count(), self.nodes, "{} node target", self.name);
        debug_assert_eq!(dfg.edge_count(), self.edges, "{} edge target", self.name);
        dfg
    }

    /// RecMII implied by this spec.
    pub fn rec_mii(&self) -> u32 {
        self.critical.len() as u32
    }

    fn pal(&self, i: usize) -> Opcode {
        self.palette[i % self.palette.len()]
    }

    /// Cycle position fed by feeder chain `ci` (never the head, which is
    /// the phi of the recurrence in real kernels).
    fn attach_pos(&self, ci: usize) -> usize {
        let c = self.critical.len();
        if c == 1 {
            0
        } else {
            1 + ci % (c - 1)
        }
    }

    /// Ordered list of safe (forward, non-duplicate) extra-edge candidates.
    fn extra_candidates(
        &self,
        crit: &[NodeId],
        feeders: &[Vec<NodeId>],
        sink: &[NodeId],
    ) -> Vec<(NodeId, NodeId)> {
        let c = crit.len();
        let mut out = Vec::new();
        // B: skip-level reuse inside feeder chains (operand reuse).
        for chain in feeders {
            for i in 0..chain.len().saturating_sub(2) {
                out.push((chain[i], chain[i + 2]));
            }
        }
        // C: cross-chain dependencies (index streams feeding data streams).
        for w in feeders.windows(2) {
            if w[1].len() >= 2 {
                out.push((w[0][w[0].len() - 1], w[1][1]));
            }
        }
        // F: feeder heads feeding the sink (stored address streams).
        for chain in feeders {
            if let Some(&sn) = sink.last() {
                out.push((chain[0], sn));
            }
        }
        // E: skip-level edges inside the sink chain.
        for i in 0..sink.len().saturating_sub(2) {
            out.push((sink[i], sink[i + 2]));
        }
        // D: cycle values observed by the sink chain.
        for (i, &cn) in crit.iter().enumerate() {
            for (j, &sn) in sink.iter().enumerate() {
                if i == c - 1 && j == 0 {
                    continue; // the structural attach edge
                }
                out.push((cn, sn));
            }
        }
        // A (last resort — concentrates fan-in on the cycle): each feeder's
        // result feeds one or two more cycle positions.
        for (ci, chain) in feeders.iter().enumerate() {
            let last = chain[chain.len() - 1];
            let a = self.attach_pos(ci);
            if c > 2 {
                for off in 1..=2usize {
                    let pos = if c == 1 {
                        0
                    } else {
                        1 + (a - 1 + off) % (c - 1)
                    };
                    if pos != a {
                        out.push((last, crit[pos]));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SynthSpec {
        SynthSpec {
            name: "test",
            nodes: 12,
            edges: 16,
            critical: vec![Opcode::Phi, Opcode::Add, Opcode::Cmp, Opcode::Select],
            secondary: vec![],
            palette: vec![Opcode::Mul, Opcode::Add],
            sink_len: 2,
        }
    }

    #[test]
    fn build_hits_targets() {
        let dfg = spec().build();
        assert_eq!(dfg.node_count(), 12);
        assert_eq!(dfg.edge_count(), 16);
        assert_eq!(dfg.rec_mii(), 4);
        dfg.validate().unwrap();
    }

    #[test]
    fn secondary_cycles_do_not_change_rec_mii() {
        let mut s = spec();
        s.nodes = 14;
        s.edges = 19;
        s.secondary = vec![2];
        let dfg = s.build();
        assert_eq!(dfg.rec_mii(), 4);
        assert_eq!(dfg.node_count(), 14);
        assert_eq!(dfg.edge_count(), 19);
        // Both cycles are found.
        let cycles = iced_dfg::recurrence::enumerate_cycles(&dfg);
        assert!(cycles.iter().any(|c| c.len() == 2));
        assert!(cycles.iter().any(|c| c.len() == 4));
    }

    #[test]
    fn loads_head_every_feeder_chain() {
        let dfg = spec().build();
        assert!(dfg.count_ops(|op| op == Opcode::Load) >= 2);
        assert_eq!(dfg.count_ops(|op| op == Opcode::Store), 1);
    }

    #[test]
    fn determinism() {
        let a = spec().build();
        let b = spec().build();
        assert_eq!(a, b);
    }
}
