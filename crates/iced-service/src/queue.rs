//! A bounded MPMC work queue with explicit backpressure.
//!
//! The acceptor thread *tries* to push; when the queue is at capacity the
//! push fails immediately and the client gets a typed `queue_full`
//! response — the daemon never buffers unboundedly. Workers block on
//! [`BoundedQueue::pop`] until an item arrives or the queue is closed,
//! at which point remaining items are still drained (graceful shutdown
//! finishes accepted work before exiting).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — backpressure, try again later.
    Full,
    /// The queue was closed by shutdown; no new work is accepted.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `cap` is fixed at construction.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to enqueue without blocking. On success returns the queue
    /// depth *after* the push (for metrics).
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<usize, PushError> {
        let mut q = self.lock();
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.items.len() >= self.cap {
            return Err(PushError::Full);
        }
        q.items.push_back(item);
        let depth = q.items.len();
        drop(q);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; `None` means no more work will ever arrive.
    pub fn pop(&self) -> Option<T> {
        let mut q = self.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.not_empty.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, workers drain what remains
    /// and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capacity the queue was built with.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_is_a_typed_error_not_a_buffer() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_signals_end() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed));
        // Accepted work is still handed out after close…
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        // …and only then does the queue report exhaustion.
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = q2.pop() {
                got.push(v);
            }
            got
        });
        for i in 0..5 {
            // Spin until the consumer makes room; cap 1 forces interleaving.
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full) => std::thread::yield_now(),
                    Err(PushError::Closed) => panic!("closed early"),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Err(PushError::Full));
    }
}
