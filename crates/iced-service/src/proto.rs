//! Wire protocol: request verbs, typed request parsing, structured errors,
//! and the response envelope.
//!
//! Every exchange is one line of JSON in each direction. Requests carry a
//! `verb` plus verb-specific fields; responses echo the client's `id` and
//! carry either a `result` object or a structured `error` object — the
//! daemon never answers with a panic or a closed socket mid-request.

use iced::dfg::{text, Dfg};
use iced::kernels::{Kernel, UnrollFactor};
use iced::mapper::MapperOptions;
use iced::streaming::RuntimePolicy;
use iced::Strategy;

use crate::json::{self, Obj, Value};

/// Request verbs the daemon understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Map a kernel and return mapping stats + bitstream summary.
    Compile = 0,
    /// Compile then run the cycle engine.
    Simulate = 1,
    /// Stream a pipeline under a runtime policy.
    Stream = 2,
    /// Liveness/readiness probe.
    Healthz = 3,
    /// Counter and latency snapshot.
    Metrics = 4,
    /// Graceful shutdown: drain in-flight work, then stop.
    Shutdown = 5,
    /// Windowed quantile view (JSON, or Prometheus text when asked).
    Stats = 6,
    /// Many compile/simulate specs in one envelope, answered as one
    /// ordered response array with intra-batch cache dedup.
    Batch = 7,
    /// Internal cluster verb: install an already-rendered result object
    /// under a content-addressed key. The router uses it to replicate hot
    /// entries to a key's successor shard; answered inline by the reactor
    /// (never queued) so replication cannot be starved by work traffic.
    CachePut = 8,
}

impl Verb {
    /// Every verb, in wire-name order used by the metrics payload.
    pub const ALL: [Verb; 9] = [
        Verb::Compile,
        Verb::Simulate,
        Verb::Stream,
        Verb::Healthz,
        Verb::Metrics,
        Verb::Shutdown,
        Verb::Stats,
        Verb::Batch,
        Verb::CachePut,
    ];

    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Compile => "compile",
            Verb::Simulate => "simulate",
            Verb::Stream => "stream",
            Verb::Healthz => "healthz",
            Verb::Metrics => "metrics",
            Verb::Shutdown => "shutdown",
            Verb::Stats => "stats",
            Verb::Batch => "batch",
            Verb::CachePut => "cache_put",
        }
    }

    fn from_name(s: &str) -> Option<Verb> {
        Verb::ALL.into_iter().find(|v| v.name() == s)
    }

    /// Whether responses for this verb are content-addressed cacheable.
    /// A `batch` envelope is not: its per-slot `cached` flags depend on
    /// cache state, though each *slot* is served through the cache.
    pub fn cacheable(self) -> bool {
        matches!(self, Verb::Compile | Verb::Simulate | Verb::Stream)
    }
}

/// Deterministic per-request identity: the accepting connection's ordinal
/// paired with the request's sequence number on that connection. Both
/// counters start at 1 and advance in accept/read order, so a given test
/// or chaos scenario produces the same ids on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId {
    /// Connection ordinal (1-based, in accept order).
    pub conn: u64,
    /// Request ordinal within the connection (1-based, in read order).
    pub seq: u64,
}

impl RequestId {
    /// Wire token, e.g. `"c3-7"` for the 7th request on connection 3.
    pub fn token(self) -> String {
        format!("c{}-{}", self.conn, self.seq)
    }

    /// Packed form for trace args (`conn` in the high 32 bits). Lossy for
    /// connections past 2^32 requests, which the daemon never reaches.
    pub fn as_u64(self) -> u64 {
        (self.conn << 32) | (self.seq & 0xffff_ffff)
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}-{}", self.conn, self.seq)
    }
}

/// A structured service error: machine-readable code, human-readable
/// message, and (where meaningful) the entity that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SvcError {
    /// Stable machine-readable code (`bad_json`, `queue_full`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// The offending entity (kernel name, field, verb…), when known.
    pub entity: Option<String>,
}

impl SvcError {
    /// Builds an error with an offending entity attached.
    pub fn with_entity(
        code: &'static str,
        message: impl Into<String>,
        entity: impl Into<String>,
    ) -> Self {
        SvcError {
            code,
            message: message.into(),
            entity: Some(entity.into()),
        }
    }

    /// Builds an error without an entity.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        SvcError {
            code,
            message: message.into(),
            entity: None,
        }
    }

    /// Renders the `error` field object.
    pub fn render(&self) -> String {
        let mut o = Obj::new()
            .str("code", self.code)
            .str("message", &self.message);
        if let Some(e) = &self.entity {
            o = o.str("entity", e);
        }
        o.finish()
    }
}

/// Where the kernel under compilation comes from.
#[derive(Debug, Clone)]
pub enum Source {
    /// A suite kernel by name, with an unroll factor.
    Named(Kernel, UnrollFactor),
    /// An inline DFG in the `iced-dfg` text format.
    Inline(Dfg),
}

impl Source {
    /// Resolves to the DFG to compile.
    pub fn dfg(&self) -> Dfg {
        match self {
            Source::Named(k, uf) => k.dfg(*uf),
            Source::Inline(d) => d.clone(),
        }
    }

    /// Node count of the DFG this source resolves to — the `auto`
    /// backend threshold's input.
    pub fn node_count(&self) -> usize {
        match self {
            Source::Named(k, uf) => k.dfg(*uf).node_count(),
            Source::Inline(d) => d.node_count(),
        }
    }

    /// The canonical hash of the DFG this source resolves to. For named
    /// suite kernels the hash comes from a lazily built process-wide
    /// table, so key derivation on hot paths (the cluster router keys
    /// every forwarded request) skips the DFG construction entirely.
    pub fn canonical_hash(&self) -> u64 {
        match self {
            Source::Named(k, uf) => named_dfg_hash(*k, *uf),
            Source::Inline(d) => d.canonical_hash(),
        }
    }
}

/// Memoized `Kernel::dfg(unroll).canonical_hash()` over the whole suite.
/// Building a suite DFG costs microseconds; the single-threaded router
/// derives one key per request, so this table is what keeps routing off
/// the scaling-bottleneck path.
fn named_dfg_hash(kernel: Kernel, unroll: UnrollFactor) -> u64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<Vec<u64>> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        Kernel::ALL
            .iter()
            .flat_map(|k| UnrollFactor::ALL.map(|uf| k.dfg(uf).canonical_hash()))
            .collect()
    });
    let ki = Kernel::ALL
        .iter()
        .position(|k| k.name() == kernel.name())
        .expect("suite kernel is in Kernel::ALL");
    let ui = UnrollFactor::ALL
        .iter()
        .position(|&u| u == unroll)
        .expect("unroll factor is in UnrollFactor::ALL");
    table[ki * UnrollFactor::ALL.len() + ui]
}

/// Which mapper backend serves a `compile`/`simulate` request.
///
/// Parsed from the same `strategy` wire field that selects the heuristic
/// [`Strategy`]: `"exact"` and `"auto"` extend the four heuristic names,
/// and `"heuristic"` is an alias for the default heuristic (`"iced"`).
/// `"auto"` is resolved here, at spec level, by node count against
/// [`iced::exact::auto_prefers_exact`] — so an `auto` request shares
/// cache entries (and response bytes) with the explicit backend it
/// resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The heuristic mapper under the spec's [`Strategy`].
    Heuristic,
    /// The exact branch-and-bound mapper with a certified minimum II.
    Exact,
}

impl Backend {
    /// Stable name folded into cache keys.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Heuristic => "heuristic",
            Backend::Exact => "exact",
        }
    }
}

/// `compile` request payload.
#[derive(Debug, Clone)]
pub struct CompileSpec {
    /// Kernel source.
    pub source: Source,
    /// Mapping strategy (`baseline`, `baseline+pg`, `per-tile`, `iced`).
    /// For the exact backend this is pinned to [`Strategy::Baseline`]:
    /// the exact search certifies the all-normal schedule space, so its
    /// mappings carry baseline DVFS hardware semantics.
    pub strategy: Strategy,
    /// Which mapper backend runs (`auto` already resolved).
    pub backend: Backend,
    /// Mapper II ceiling override.
    pub max_ii: Option<u32>,
    /// Per-request mapping deadline in milliseconds (serving knob; not
    /// part of the cache key).
    pub deadline_ms: Option<u64>,
}

/// `simulate` request payload: compile plus a cycle-engine run.
#[derive(Debug, Clone)]
pub struct SimulateSpec {
    /// The compile half.
    pub compile: CompileSpec,
    /// Loop iterations to run.
    pub iterations: u64,
    /// Engine seed.
    pub seed: u64,
}

/// `stream` request payload.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Pipeline name: `gcn` or `lu`.
    pub pipeline: String,
    /// Runtime policy.
    pub policy: RuntimePolicy,
    /// Number of streamed inputs.
    pub inputs: usize,
    /// Workload seed.
    pub seed: u64,
}

/// One batchable work element: only verbs whose specs are cheap to key
/// and fan out may appear inside a `batch`.
#[derive(Debug, Clone)]
pub enum BatchElem {
    /// A `compile` slot.
    Compile(CompileSpec),
    /// A `simulate` slot.
    Simulate(SimulateSpec),
}

impl BatchElem {
    /// The element's verb, for per-slot envelopes and metrics.
    pub fn verb(&self) -> Verb {
        match self {
            BatchElem::Compile(_) => Verb::Compile,
            BatchElem::Simulate(_) => Verb::Simulate,
        }
    }
}

/// One parsed batch slot: either a valid element or a structured per-slot
/// error. A bad slot never poisons its siblings — it is answered in place
/// inside the response array.
#[derive(Debug, Clone)]
pub enum BatchSlot {
    /// A valid compile/simulate element.
    Elem(BatchElem),
    /// A slot that failed to parse; answered per-slot.
    Invalid {
        /// The slot's verb, when parsing got far enough to recover it.
        verb: Option<Verb>,
        /// The structured error for this slot.
        error: SvcError,
    },
}

/// `batch` request payload: the slots in request order.
#[derive(Debug, Clone)]
pub struct BatchSpec {
    /// Slots in the order they were sent (and will be answered).
    pub items: Vec<BatchSlot>,
}

/// Hard cap on slots per batch; larger batches are rejected whole with
/// `bad_request` rather than silently truncated.
pub const MAX_BATCH_ITEMS: usize = 128;

/// Verb-specific payload.
#[derive(Debug, Clone)]
pub enum Payload {
    /// `compile`.
    Compile(CompileSpec),
    /// `simulate`.
    Simulate(SimulateSpec),
    /// `stream`.
    Stream(StreamSpec),
    /// `stats`: windowed quantiles, optionally as Prometheus text.
    Stats {
        /// `"format":"prometheus"` asks for text exposition.
        prometheus: bool,
    },
    /// `batch`.
    Batch(BatchSpec),
    /// `cache_put`: install an already-rendered result object under a
    /// content-addressed key (internal cluster replication).
    CachePut {
        /// The 32-hex-character `CacheKey::hex()` form.
        key: String,
        /// The rendered result-object bytes to install verbatim.
        value: String,
    },
    /// `healthz` / `metrics` / `shutdown` carry no payload.
    Control,
}

/// A fully parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen id, echoed on the response (0 when absent).
    pub id: u64,
    /// The verb.
    pub verb: Verb,
    /// Verb payload.
    pub payload: Payload,
}

/// Hard cap on request line length; longer lines are rejected, never
/// buffered without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

fn policy_from_name(s: &str) -> Option<RuntimePolicy> {
    match s {
        "iced" => Some(RuntimePolicy::IcedDvfs),
        "drips" => Some(RuntimePolicy::Drips),
        "static" => Some(RuntimePolicy::StaticNormal),
        _ => None,
    }
}

/// Display name for a policy, mirrored by [`policy_from_name`].
pub fn policy_name(p: RuntimePolicy) -> &'static str {
    match p {
        RuntimePolicy::IcedDvfs => "iced",
        RuntimePolicy::Drips => "drips",
        RuntimePolicy::StaticNormal => "static",
    }
}

fn strategy_from_name(s: &str) -> Option<Strategy> {
    Strategy::ALL.into_iter().find(|st| st.name() == s)
}

fn kernel_from_name(s: &str) -> Option<Kernel> {
    Kernel::ALL.into_iter().find(|k| k.name() == s)
}

fn parse_compile_spec(v: &Value) -> Result<CompileSpec, SvcError> {
    let source = match (v.get("kernel"), v.get("dfg")) {
        (Some(_), Some(_)) => {
            return Err(SvcError::new(
                "bad_request",
                "provide either 'kernel' or 'dfg', not both",
            ))
        }
        (Some(k), None) => {
            let name = k.as_str().ok_or_else(|| {
                SvcError::with_entity("bad_request", "'kernel' must be a string", "kernel")
            })?;
            let kernel = kernel_from_name(name).ok_or_else(|| {
                SvcError::with_entity("unknown_kernel", "no such kernel in the suite", name)
            })?;
            let unroll = match v.get("unroll").map(Value::as_u64) {
                None => UnrollFactor::X1,
                Some(Some(1)) => UnrollFactor::X1,
                Some(Some(2)) => UnrollFactor::X2,
                _ => {
                    return Err(SvcError::with_entity(
                        "bad_request",
                        "'unroll' must be 1 or 2",
                        "unroll",
                    ))
                }
            };
            Source::Named(kernel, unroll)
        }
        (None, Some(d)) => {
            let body = d.as_str().ok_or_else(|| {
                SvcError::with_entity("bad_request", "'dfg' must be a string", "dfg")
            })?;
            let dfg = text::parse(body)
                .map_err(|e| SvcError::with_entity("dfg_parse_error", e.to_string(), "dfg"))?;
            Source::Inline(dfg)
        }
        (None, None) => {
            return Err(SvcError::new(
                "bad_request",
                "missing kernel source: provide 'kernel' or 'dfg'",
            ))
        }
    };
    let (strategy, backend) = match v.get("strategy") {
        None => (Strategy::IcedIslands, Backend::Heuristic),
        Some(s) => {
            let name = s.as_str().ok_or_else(|| {
                SvcError::with_entity("bad_request", "'strategy' must be a string", "strategy")
            })?;
            match name {
                // The exact backend certifies the all-normal schedule
                // space; its mappings carry baseline DVFS semantics.
                "exact" => (Strategy::Baseline, Backend::Exact),
                // Alias for the default heuristic: same spec, same cache
                // key, same rendered name as an explicit "iced".
                "heuristic" => (Strategy::IcedIslands, Backend::Heuristic),
                // Size dispatch, resolved here so the cache key and the
                // response bytes match the explicit backend's.
                "auto" => {
                    if iced::exact::auto_prefers_exact(source.node_count()) {
                        (Strategy::Baseline, Backend::Exact)
                    } else {
                        (Strategy::IcedIslands, Backend::Heuristic)
                    }
                }
                _ => {
                    let strategy = strategy_from_name(name).ok_or_else(|| {
                        SvcError::with_entity(
                            "bad_request",
                            "unknown strategy (expected baseline, baseline+pg, per-tile, \
                             iced, heuristic, exact, auto)",
                            name,
                        )
                    })?;
                    (strategy, Backend::Heuristic)
                }
            }
        }
    };
    let max_ii = match v.get("max_ii") {
        None => None,
        Some(n) => Some(
            n.as_u64()
                .filter(|&n| (1..=1024).contains(&n))
                .ok_or_else(|| {
                    SvcError::with_entity(
                        "bad_request",
                        "'max_ii' must be an integer in 1..=1024",
                        "max_ii",
                    )
                })? as u32,
        ),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(n) => Some(n.as_u64().ok_or_else(|| {
            SvcError::with_entity(
                "bad_request",
                "'deadline_ms' must be a non-negative integer",
                "deadline_ms",
            )
        })?),
    };
    Ok(CompileSpec {
        source,
        strategy,
        backend,
        max_ii,
        deadline_ms,
    })
}

fn bounded_u64(v: &Value, key: &str, default: u64, max: u64) -> Result<u64, SvcError> {
    match v.get(key) {
        None => Ok(default),
        Some(n) => n.as_u64().filter(|&n| n <= max).ok_or_else(|| {
            SvcError::with_entity(
                "bad_request",
                format!("'{key}' must be an integer in 0..={max}"),
                key,
            )
        }),
    }
}

fn parse_simulate_spec(v: &Value) -> Result<SimulateSpec, SvcError> {
    Ok(SimulateSpec {
        compile: parse_compile_spec(v)?,
        iterations: bounded_u64(v, "iterations", 1000, 10_000_000)?.max(1),
        seed: bounded_u64(v, "seed", 0, u64::MAX - 1)?,
    })
}

/// Parses one batch slot. Never fails: malformed slots become
/// [`BatchSlot::Invalid`] so the rest of the batch still runs.
fn parse_batch_item(v: &Value) -> BatchSlot {
    let invalid = |verb, error| BatchSlot::Invalid { verb, error };
    if !matches!(v, Value::Obj(_)) {
        return invalid(
            None,
            SvcError::new("bad_request", "batch item must be a JSON object"),
        );
    }
    let Some(name) = v.get("verb").and_then(Value::as_str) else {
        return invalid(
            None,
            SvcError::new("bad_request", "missing string field 'verb'"),
        );
    };
    match Verb::from_name(name) {
        Some(Verb::Compile) => match parse_compile_spec(v) {
            Ok(spec) => BatchSlot::Elem(BatchElem::Compile(spec)),
            Err(e) => invalid(Some(Verb::Compile), e),
        },
        Some(Verb::Simulate) => match parse_simulate_spec(v) {
            Ok(spec) => BatchSlot::Elem(BatchElem::Simulate(spec)),
            Err(e) => invalid(Some(Verb::Simulate), e),
        },
        Some(other) => invalid(
            Some(other),
            SvcError::with_entity(
                "bad_request",
                "only compile and simulate may appear in a batch",
                name,
            ),
        ),
        None => invalid(
            None,
            SvcError::with_entity("unknown_verb", "unsupported verb", name),
        ),
    }
}

/// A parse failure paired with the request id it belongs to (0 when the
/// id itself could not be recovered), so error responses still correlate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Echoed request id (best effort).
    pub id: u64,
    /// The verb, when parsing got far enough to recover it.
    pub verb: Option<Verb>,
    /// The structured error.
    pub error: SvcError,
}

/// Parses one request line into a typed [`Request`].
///
/// # Errors
///
/// Every malformed input maps to a structured [`RequestError`]; this
/// function never panics on untrusted bytes.
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let anon = |error: SvcError| RequestError {
        id: 0,
        verb: None,
        error,
    };
    if line.len() > MAX_LINE_BYTES {
        return Err(anon(SvcError::new(
            "too_large",
            "request line exceeds 1 MiB",
        )));
    }
    let v = json::parse(line).map_err(|e| anon(SvcError::new("bad_json", e.to_string())))?;
    if !matches!(v, Value::Obj(_)) {
        return Err(anon(SvcError::new(
            "bad_request",
            "request must be a JSON object",
        )));
    }
    let id = match v.get("id") {
        None => 0,
        Some(n) => n.as_u64().ok_or_else(|| {
            anon(SvcError::with_entity(
                "bad_request",
                "'id' must be a non-negative integer",
                "id",
            ))
        })?,
    };
    let fail = |error: SvcError| RequestError {
        id,
        verb: None,
        error,
    };
    let verb_name = v
        .get("verb")
        .and_then(Value::as_str)
        .ok_or_else(|| fail(SvcError::new("bad_request", "missing string field 'verb'")))?;
    let verb = Verb::from_name(verb_name).ok_or_else(|| {
        fail(SvcError::with_entity(
            "unknown_verb",
            "unsupported verb",
            verb_name,
        ))
    })?;
    let fail = |error: SvcError| RequestError {
        id,
        verb: Some(verb),
        error,
    };
    let payload = (|| -> Result<Payload, SvcError> {
        Ok(match verb {
            Verb::Compile => Payload::Compile(parse_compile_spec(&v)?),
            Verb::Simulate => Payload::Simulate(parse_simulate_spec(&v)?),
            Verb::Stream => {
                let pipeline = v
                    .get("pipeline")
                    .and_then(Value::as_str)
                    .unwrap_or("gcn")
                    .to_string();
                if !matches!(pipeline.as_str(), "gcn" | "lu" | "sensor" | "stencil") {
                    return Err(SvcError::with_entity(
                        "bad_request",
                        "unknown pipeline (expected gcn, lu, sensor, or stencil)",
                        pipeline,
                    ));
                }
                let policy = match v.get("policy") {
                    None => RuntimePolicy::IcedDvfs,
                    Some(p) => {
                        let name = p.as_str().ok_or_else(|| {
                            SvcError::with_entity(
                                "bad_request",
                                "'policy' must be a string",
                                "policy",
                            )
                        })?;
                        policy_from_name(name).ok_or_else(|| {
                            SvcError::with_entity(
                                "bad_request",
                                "unknown policy (expected iced, drips, static)",
                                name,
                            )
                        })?
                    }
                };
                Payload::Stream(StreamSpec {
                    pipeline,
                    policy,
                    inputs: bounded_u64(&v, "inputs", 64, 100_000)?.max(1) as usize,
                    seed: bounded_u64(&v, "seed", 7, u64::MAX - 1)?,
                })
            }
            Verb::Stats => Payload::Stats {
                prometheus: v.get("format").and_then(Value::as_str) == Some("prometheus"),
            },
            Verb::Batch => {
                let items = v
                    .get("items")
                    .ok_or_else(|| SvcError::new("bad_request", "missing 'items' array"))?;
                let arr = items.as_arr().ok_or_else(|| {
                    SvcError::with_entity("bad_request", "'items' must be an array", "items")
                })?;
                if arr.len() > MAX_BATCH_ITEMS {
                    return Err(SvcError::with_entity(
                        "bad_request",
                        format!(
                            "batch has {} items, more than the {MAX_BATCH_ITEMS} allowed",
                            arr.len()
                        ),
                        "items",
                    ));
                }
                Payload::Batch(BatchSpec {
                    items: arr.iter().map(parse_batch_item).collect(),
                })
            }
            Verb::CachePut => {
                let key = v.get("key").and_then(Value::as_str).ok_or_else(|| {
                    SvcError::with_entity("bad_request", "missing string field 'key'", "key")
                })?;
                if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(SvcError::with_entity(
                        "bad_request",
                        "'key' must be 32 hex characters",
                        "key",
                    ));
                }
                let value = v.get("value").and_then(Value::as_str).ok_or_else(|| {
                    SvcError::with_entity("bad_request", "missing string field 'value'", "value")
                })?;
                Payload::CachePut {
                    key: key.to_string(),
                    value: value.to_string(),
                }
            }
            Verb::Healthz | Verb::Metrics | Verb::Shutdown => Payload::Control,
        })
    })()
    .map_err(fail)?;
    Ok(Request { id, verb, payload })
}

impl CompileSpec {
    /// The mapper options this request runs with. `deadline` is installed
    /// by the worker at execution time, not here.
    pub fn mapper_options(&self) -> MapperOptions {
        let mut opts = match self.strategy {
            Strategy::IcedIslands => MapperOptions::default(),
            _ => MapperOptions::baseline(),
        };
        if let Some(m) = self.max_ii {
            opts.max_ii = m;
        }
        opts
    }

    /// The strategy name rendered in responses: the backend name for
    /// exact requests, the heuristic strategy's name otherwise.
    pub fn strategy_name(&self) -> &'static str {
        match self.backend {
            Backend::Exact => "exact",
            Backend::Heuristic => self.strategy.name(),
        }
    }

    /// The exact-backend options this request certifies under. The
    /// service runs the library defaults (their canonical hash is folded
    /// into the cache key); the per-request deadline is installed by the
    /// worker at execution time, not here.
    pub fn exact_options(&self) -> iced::exact::ExactOptions {
        let mut o = iced::exact::ExactOptions::default();
        if let Some(m) = self.max_ii {
            o.max_ii = m;
        }
        o
    }
}

/// Renders a success envelope. `result` is already-rendered JSON — for
/// cacheable verbs it is exactly the cached byte payload, so warm and
/// cold responses differ only in the `cached` flag and the per-request
/// `req` token.
pub fn render_ok(
    id: u64,
    req: Option<RequestId>,
    verb: Verb,
    cached: bool,
    result: &str,
) -> String {
    let mut o = Obj::new().u64("id", id);
    if let Some(r) = req {
        o = o.str("req", &r.token());
    }
    o.bool("ok", true)
        .str("verb", verb.name())
        .bool("cached", cached)
        .raw("result", result)
        .finish()
}

/// Renders one successful batch slot. `result` is the slot's rendered
/// (and cached) result object — exactly the bytes a standalone request
/// for the same spec would carry, so batch and single-request responses
/// are byte-identical where it matters.
pub fn render_batch_item_ok(verb: Verb, cached: bool, result: &str) -> String {
    Obj::new()
        .bool("ok", true)
        .str("verb", verb.name())
        .bool("cached", cached)
        .raw("result", result)
        .finish()
}

/// Renders one failed batch slot.
pub fn render_batch_item_err(verb: Option<Verb>, err: &SvcError) -> String {
    let mut o = Obj::new().bool("ok", false);
    if let Some(v) = verb {
        o = o.str("verb", v.name());
    }
    o.raw("error", &err.render()).finish()
}

/// Renders the `batch` result object around already-rendered slot items.
pub fn render_batch_result(count: usize, unique: usize, items: &[String]) -> String {
    let mut results = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        results.push_str(item);
    }
    results.push(']');
    Obj::new()
        .u64("count", count as u64)
        .u64("unique", unique as u64)
        .u64("deduped", count.saturating_sub(unique) as u64)
        .raw("results", &results)
        .finish()
}

/// Renders an error envelope.
pub fn render_err(id: u64, req: Option<RequestId>, verb: Option<Verb>, err: &SvcError) -> String {
    let mut o = Obj::new().u64("id", id);
    if let Some(r) = req {
        o = o.str("req", &r.token());
    }
    let mut o = o.bool("ok", false);
    if let Some(v) = verb {
        o = o.str("verb", v.name());
    }
    o.raw("error", &err.render()).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_compile_request() {
        let r = parse_request(r#"{"id":3,"verb":"compile","kernel":"fir","unroll":2}"#).unwrap();
        assert_eq!(r.id, 3);
        assert_eq!(r.verb, Verb::Compile);
        match r.payload {
            Payload::Compile(c) => {
                assert!(matches!(
                    c.source,
                    Source::Named(Kernel::Fir, UnrollFactor::X2)
                ));
                assert_eq!(c.strategy, Strategy::IcedIslands);
                assert_eq!(c.max_ii, None);
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn strategy_knob_accepts_backend_names() {
        let compile = |strategy: &str| {
            let line = format!(r#"{{"verb":"compile","kernel":"fir","strategy":"{strategy}"}}"#);
            match parse_request(&line).unwrap().payload {
                Payload::Compile(c) => c,
                p => panic!("wrong payload {p:?}"),
            }
        };
        let c = compile("exact");
        assert_eq!(c.backend, Backend::Exact);
        assert_eq!(c.strategy, Strategy::Baseline);
        assert_eq!(c.strategy_name(), "exact");

        // "heuristic" normalizes to the default heuristic, so it shares
        // cache keys and rendered names with an explicit "iced".
        let c = compile("heuristic");
        assert_eq!(c.backend, Backend::Heuristic);
        assert_eq!(c.strategy, Strategy::IcedIslands);
        assert_eq!(c.strategy_name(), "iced");

        // "auto" resolves at parse time by node count.
        let c = compile("auto");
        let nodes = Source::Named(Kernel::Fir, UnrollFactor::X1).node_count();
        let expect = if iced::exact::auto_prefers_exact(nodes) {
            Backend::Exact
        } else {
            Backend::Heuristic
        };
        assert_eq!(c.backend, expect);

        let e =
            parse_request(r#"{"verb":"compile","kernel":"fir","strategy":"optimal"}"#).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert!(e.error.message.contains("exact"), "{}", e.error.message);
        assert!(e.error.message.contains("auto"), "{}", e.error.message);
    }

    #[test]
    fn parses_an_inline_dfg() {
        let dfg = "dfg tiny\nnode n0 add a\nnode n1 add b\nedge n0 n1\n";
        let line = format!(
            r#"{{"id":1,"verb":"compile","dfg":"{}"}}"#,
            dfg.replace('\n', "\\n")
        );
        let r = parse_request(&line).unwrap();
        match r.payload {
            Payload::Compile(c) => {
                let d = c.source.dfg();
                assert_eq!(d.node_count(), 2);
                assert_eq!(d.name(), "tiny");
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn structured_errors_name_the_offender() {
        let e = parse_request(r#"{"id":4,"verb":"compile","kernel":"nope"}"#).unwrap_err();
        assert_eq!(e.id, 4, "payload errors still echo the id");
        assert_eq!(e.error.code, "unknown_kernel");
        assert_eq!(e.error.entity.as_deref(), Some("nope"));

        let e = parse_request(r#"{"verb":"warp"}"#).unwrap_err();
        assert_eq!(e.error.code, "unknown_verb");
        assert_eq!(e.error.entity.as_deref(), Some("warp"));

        let e = parse_request("{nope}").unwrap_err();
        assert_eq!(e.id, 0);
        assert_eq!(e.error.code, "bad_json");

        let e = parse_request(r#"{"verb":"compile"}"#).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
    }

    #[test]
    fn simulate_defaults_are_applied_and_bounded() {
        let r = parse_request(r#"{"verb":"simulate","kernel":"fir"}"#).unwrap();
        match r.payload {
            Payload::Simulate(s) => {
                assert_eq!(s.iterations, 1000);
                assert_eq!(s.seed, 0);
            }
            p => panic!("wrong payload {p:?}"),
        }
        let e = parse_request(r#"{"verb":"simulate","kernel":"fir","iterations":99999999999}"#)
            .unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert_eq!(e.error.entity.as_deref(), Some("iterations"));
    }

    #[test]
    fn stream_parses_policy_and_pipeline() {
        let r = parse_request(r#"{"verb":"stream","pipeline":"lu","policy":"drips","inputs":8}"#)
            .unwrap();
        match r.payload {
            Payload::Stream(s) => {
                assert_eq!(s.pipeline, "lu");
                assert_eq!(s.policy, RuntimePolicy::Drips);
                assert_eq!(s.inputs, 8);
            }
            p => panic!("wrong payload {p:?}"),
        }
    }

    #[test]
    fn envelopes_have_fixed_field_order() {
        assert_eq!(
            render_ok(5, None, Verb::Compile, true, "{\"ii\":2}"),
            r#"{"id":5,"ok":true,"verb":"compile","cached":true,"result":{"ii":2}}"#
        );
        let req = RequestId { conn: 3, seq: 7 };
        assert_eq!(
            render_ok(5, Some(req), Verb::Compile, false, "{\"ii\":2}"),
            r#"{"id":5,"req":"c3-7","ok":true,"verb":"compile","cached":false,"result":{"ii":2}}"#
        );
        let err = SvcError::with_entity("queue_full", "server saturated", "queue");
        assert_eq!(
            render_err(5, Some(req), Some(Verb::Simulate), &err),
            r#"{"id":5,"req":"c3-7","ok":false,"verb":"simulate","error":{"code":"queue_full","message":"server saturated","entity":"queue"}}"#
        );
        assert_eq!(
            render_err(0, None, None, &SvcError::new("bad_json", "oops")),
            r#"{"id":0,"ok":false,"error":{"code":"bad_json","message":"oops"}}"#
        );
    }

    #[test]
    fn request_ids_are_deterministic_and_packable() {
        let r = RequestId { conn: 1, seq: 2 };
        assert_eq!(r.token(), "c1-2");
        assert_eq!(r.to_string(), "c1-2");
        assert_eq!(r.as_u64(), (1 << 32) | 2);
        assert_eq!(RequestId { conn: 0, seq: 9 }.as_u64(), 9);
    }

    #[test]
    fn stats_verb_parses_with_optional_prometheus_format() {
        let r = parse_request(r#"{"id":1,"verb":"stats"}"#).unwrap();
        assert_eq!(r.verb, Verb::Stats);
        assert!(matches!(r.payload, Payload::Stats { prometheus: false }));
        let r = parse_request(r#"{"id":2,"verb":"stats","format":"prometheus"}"#).unwrap();
        assert!(matches!(r.payload, Payload::Stats { prometheus: true }));
    }

    #[test]
    fn batch_parses_slots_independently() {
        let line = r#"{"id":9,"verb":"batch","items":[
            {"verb":"compile","kernel":"fir"},
            {"verb":"simulate","kernel":"fir","iterations":10},
            {"verb":"compile","kernel":"nope"},
            {"verb":"stream","pipeline":"gcn"},
            {"verb":"warp"},
            {"kernel":"fir"},
            7
        ]}"#;
        let r = parse_request(line).unwrap();
        assert_eq!(r.verb, Verb::Batch);
        let Payload::Batch(spec) = r.payload else {
            panic!("wrong payload");
        };
        assert_eq!(spec.items.len(), 7);
        assert!(matches!(
            spec.items[0],
            BatchSlot::Elem(BatchElem::Compile(_))
        ));
        match &spec.items[1] {
            BatchSlot::Elem(BatchElem::Simulate(s)) => assert_eq!(s.iterations, 10),
            s => panic!("wrong slot {s:?}"),
        }
        match &spec.items[2] {
            BatchSlot::Invalid { verb, error } => {
                assert_eq!(*verb, Some(Verb::Compile));
                assert_eq!(error.code, "unknown_kernel");
            }
            s => panic!("wrong slot {s:?}"),
        }
        match &spec.items[3] {
            BatchSlot::Invalid { verb, error } => {
                assert_eq!(*verb, Some(Verb::Stream));
                assert_eq!(error.code, "bad_request");
            }
            s => panic!("wrong slot {s:?}"),
        }
        match &spec.items[4] {
            BatchSlot::Invalid { verb, error } => {
                assert_eq!(*verb, None);
                assert_eq!(error.code, "unknown_verb");
            }
            s => panic!("wrong slot {s:?}"),
        }
        assert!(matches!(
            &spec.items[5],
            BatchSlot::Invalid { verb: None, error } if error.code == "bad_request"
        ));
        assert!(matches!(
            &spec.items[6],
            BatchSlot::Invalid { verb: None, error } if error.code == "bad_request"
        ));
    }

    #[test]
    fn batch_envelope_bounds_are_enforced() {
        let e = parse_request(r#"{"verb":"batch"}"#).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert_eq!(e.verb, Some(Verb::Batch));

        let e = parse_request(r#"{"verb":"batch","items":3}"#).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert_eq!(e.error.entity.as_deref(), Some("items"));

        let slot = r#"{"verb":"compile","kernel":"fir"}"#;
        let many = vec![slot; MAX_BATCH_ITEMS + 1].join(",");
        let e = parse_request(&format!(r#"{{"verb":"batch","items":[{many}]}}"#)).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert!(e.error.message.contains("129 items"), "{}", e.error.message);

        let r = parse_request(r#"{"id":1,"verb":"batch","items":[]}"#).unwrap();
        let Payload::Batch(spec) = r.payload else {
            panic!("wrong payload");
        };
        assert!(spec.items.is_empty());

        // A nested batch is rejected per-slot, not recursed into.
        let r = parse_request(r#"{"verb":"batch","items":[{"verb":"batch","items":[]}]}"#).unwrap();
        let Payload::Batch(spec) = r.payload else {
            panic!("wrong payload");
        };
        assert!(matches!(
            &spec.items[0],
            BatchSlot::Invalid { verb: Some(Verb::Batch), error } if error.code == "bad_request"
        ));
    }

    #[test]
    fn batch_item_and_result_rendering_is_stable() {
        assert_eq!(
            render_batch_item_ok(Verb::Compile, true, "{\"ii\":2}"),
            r#"{"ok":true,"verb":"compile","cached":true,"result":{"ii":2}}"#
        );
        let err = SvcError::with_entity("unknown_kernel", "no such kernel in the suite", "nope");
        assert_eq!(
            render_batch_item_err(Some(Verb::Compile), &err),
            r#"{"ok":false,"verb":"compile","error":{"code":"unknown_kernel","message":"no such kernel in the suite","entity":"nope"}}"#
        );
        assert_eq!(
            render_batch_item_err(None, &SvcError::new("bad_request", "oops")),
            r#"{"ok":false,"error":{"code":"bad_request","message":"oops"}}"#
        );
        let items = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        assert_eq!(
            render_batch_result(5, 2, &items),
            r#"{"count":5,"unique":2,"deduped":3,"results":[{"a":1},{"b":2}]}"#
        );
        assert_eq!(
            render_batch_result(0, 0, &[]),
            r#"{"count":0,"unique":0,"deduped":0,"results":[]}"#
        );
    }

    #[test]
    fn cache_put_parses_and_validates_its_key() {
        let key = "0123456789abcdef0123456789abcdef";
        let line = format!(r#"{{"id":7,"verb":"cache_put","key":"{key}","value":"{{\"ii\":2}}"}}"#);
        let r = parse_request(&line).unwrap();
        assert_eq!(r.verb, Verb::CachePut);
        match r.payload {
            Payload::CachePut { key: k, value } => {
                assert_eq!(k, key);
                assert_eq!(value, "{\"ii\":2}");
            }
            p => panic!("wrong payload {p:?}"),
        }
        assert!(!Verb::CachePut.cacheable());

        let e = parse_request(r#"{"verb":"cache_put","key":"zz","value":"{}"}"#).unwrap_err();
        assert_eq!(e.error.code, "bad_request");
        assert_eq!(e.error.entity.as_deref(), Some("key"));
        let e = parse_request(&format!(r#"{{"verb":"cache_put","key":"{key}"}}"#)).unwrap_err();
        assert_eq!(e.error.entity.as_deref(), Some("value"));
    }

    #[test]
    fn memoized_source_hash_matches_direct_dfg_hash() {
        for k in Kernel::ALL {
            for uf in UnrollFactor::ALL {
                let s = Source::Named(k, uf);
                assert_eq!(s.canonical_hash(), s.dfg().canonical_hash(), "{}", k.name());
            }
        }
        let d = text::parse("dfg tiny\nnode n0 add a\n").unwrap();
        let h = d.canonical_hash();
        assert_eq!(Source::Inline(d).canonical_hash(), h);
    }

    #[test]
    fn payload_errors_recover_the_verb_for_the_envelope() {
        let e = parse_request(r#"{"id":4,"verb":"compile","kernel":"nope"}"#).unwrap_err();
        assert_eq!(e.verb, Some(Verb::Compile));
        let e = parse_request(r#"{"verb":"warp"}"#).unwrap_err();
        assert_eq!(e.verb, None);
    }
}
