//! Resilient line-protocol client for the daemon.
//!
//! One shared implementation of the retry discipline every caller of the
//! service needs — the load generator, the chaos suite, CI smoke scripts —
//! instead of each growing its own ad-hoc connect loop:
//!
//! * **per-request timeout** via the socket read deadline;
//! * **bounded retries with jittered exponential backoff** on transport
//!   failures (connect refused, torn response, dropped connection) and on
//!   the two *transient* structured errors: `queue_full` (backpressure —
//!   the retry is the contract) and `internal` (a worker panicked; the
//!   request is safe to replay because results are content-addressed);
//! * **no retries** on every other structured error (`bad_request`,
//!   `map_error`, `shutting_down`, …) — those are the caller's answer,
//!   not the network's weather.
//!
//! A torn response (bytes without a terminating newline, as the chaos
//! layer's write-drop site produces) is treated as a transport failure:
//! the connection is discarded and the request replayed on a fresh one.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use iced_hash::StableHasher;

/// Structured-error codes that are safe and sensible to retry.
const RETRYABLE_CODES: [&str; 2] = ["\"code\":\"queue_full\"", "\"code\":\"internal\""];

/// First backoff step; doubles per attempt up to [`MAX_BACKOFF`].
const BASE_BACKOFF: Duration = Duration::from_millis(20);
const MAX_BACKOFF: Duration = Duration::from_millis(640);

/// All retries for one request failed.
#[derive(Debug)]
pub struct ClientError {
    /// How many attempts were made.
    pub attempts: u32,
    /// The last response or transport error observed.
    pub last: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request failed after {} attempts: {}",
            self.attempts, self.last
        )
    }
}

impl std::error::Error for ClientError {}

/// One slot of a batch response, split back out of the envelope's
/// `results` array. `raw` is the slot's exact rendered bytes — for a
/// successful slot, its `result` object is byte-identical to what the
/// standalone verb would have returned.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Did this slot succeed? A `false` here is a *per-slot* structured
    /// error (bad spec, map failure); the batch as a whole still landed.
    pub ok: bool,
    /// Was this slot served from the result cache?
    pub cached: bool,
    /// The slot's full JSON text.
    pub raw: String,
}

impl BatchItem {
    fn from_raw(raw: String) -> BatchItem {
        let ok = raw.starts_with("{\"ok\":true");
        // Only inspect the slot header: a result payload could legally
        // contain the same substring.
        let header = raw.find("\"result\"").map_or(raw.as_str(), |i| &raw[..i]);
        BatchItem {
            ok,
            cached: header.contains("\"cached\":true"),
            raw,
        }
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A reconnecting client for the newline-delimited JSON protocol.
pub struct Client {
    addr: String,
    timeout: Duration,
    attempts: u32,
    salt: u64,
    conn: Option<Conn>,
}

impl Client {
    /// Creates a client for `addr` (lazy: connects on first use) with the
    /// default per-request timeout (300 s, compiles can be slow) and 8
    /// attempts per request.
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_string(),
            timeout: Duration::from_secs(300),
            attempts: 8,
            salt: 0,
            conn: None,
        }
    }

    /// Overrides the per-request timeout and attempt budget.
    #[must_use]
    pub fn with_limits(mut self, timeout: Duration, attempts: u32) -> Client {
        self.timeout = timeout;
        self.attempts = attempts.max(1);
        self
    }

    /// Decorrelates this client's backoff jitter from its siblings'
    /// (give each load-generator thread a distinct salt).
    #[must_use]
    pub fn with_salt(mut self, salt: u64) -> Client {
        self.salt = salt;
        self
    }

    /// Connects eagerly, retrying while an external daemon finishes
    /// booting, for up to `budget`.
    ///
    /// # Errors
    ///
    /// Returns the last connect error once the budget is spent.
    pub fn connect_retry(addr: &str, budget: Duration) -> std::io::Result<Client> {
        let mut client = Client::new(addr);
        let t0 = Instant::now();
        loop {
            match client.connect_once() {
                Ok(conn) => {
                    client.conn = Some(conn);
                    return Ok(client);
                }
                Err(_) if t0.elapsed() < budget => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn connect_once(&self) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        // Responses are single short lines; Nagle would add a delayed-ACK
        // round trip to every warm hit.
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            self.conn = Some(self.connect_once()?);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }

    /// Sends one request line without waiting for the response (open-loop
    /// pipelining). On failure the connection is discarded.
    ///
    /// # Errors
    ///
    /// Propagates the connect or write failure.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        let r = self.conn().and_then(|c| {
            // One write per request: a split write would re-introduce the
            // Nagle + delayed-ACK stall the server disables nodelay for.
            let mut buf = Vec::with_capacity(line.len() + 1);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            c.writer.write_all(&buf)
        });
        if r.is_err() {
            self.conn = None;
        }
        r
    }

    /// Receives one response line. A closed or torn stream (no trailing
    /// newline) discards the connection and errors.
    ///
    /// # Errors
    ///
    /// Propagates read failures; a truncated line is `UnexpectedEof`.
    pub fn recv(&mut self) -> std::io::Result<String> {
        let r = self.conn().and_then(|c| {
            let mut line = String::new();
            let n = c.reader.read_line(&mut line)?;
            if n == 0 || !line.ends_with('\n') {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            Ok(line.trim_end().to_string())
        });
        if r.is_err() {
            self.conn = None;
        }
        r
    }

    fn try_once(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()
    }

    /// One request, retried until a non-transient response arrives or the
    /// attempt budget is spent. The returned response may still be a
    /// structured error — a *permanent* one, which is the server's answer.
    ///
    /// # Errors
    ///
    /// [`ClientError`] after `attempts` transport failures or transient
    /// error responses.
    pub fn request(&mut self, line: &str) -> Result<String, ClientError> {
        let mut last = String::new();
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(backoff_delay(attempt, self.salt));
            }
            match self.try_once(line) {
                Ok(resp) if !is_transient(&resp) => return Ok(resp),
                Ok(resp) => last = resp,
                Err(e) => last = format!("transport: {e}"),
            }
        }
        Err(ClientError {
            attempts: self.attempts,
            last,
        })
    }

    /// Sends many compile specs as one `batch` request and splits the
    /// ordered response array back into per-slot items. Each `spec` is a
    /// JSON object of compile fields (`kernel`, `strategy`, …) *without*
    /// a `verb`; the helper splices it in.
    ///
    /// Retries follow the whole-batch contract: only an envelope-level
    /// `queue_full`/`internal` (or a transport failure) replays the
    /// batch; per-slot errors arrive inside a successful envelope and
    /// are never retried.
    ///
    /// # Errors
    ///
    /// [`ClientError`] when the attempt budget is spent or the final
    /// envelope is a structured error.
    pub fn compile_batch(
        &mut self,
        id: u64,
        specs: &[&str],
    ) -> Result<Vec<BatchItem>, ClientError> {
        self.batch_with_verb("compile", id, specs)
    }

    /// [`compile_batch`](Self::compile_batch) for simulate specs
    /// (`kernel`, `iterations`, `seed`, …).
    ///
    /// # Errors
    ///
    /// As [`compile_batch`](Self::compile_batch).
    pub fn simulate_batch(
        &mut self,
        id: u64,
        specs: &[&str],
    ) -> Result<Vec<BatchItem>, ClientError> {
        self.batch_with_verb("simulate", id, specs)
    }

    fn batch_with_verb(
        &mut self,
        verb: &str,
        id: u64,
        specs: &[&str],
    ) -> Result<Vec<BatchItem>, ClientError> {
        let items: Vec<String> = specs.iter().map(|s| splice_verb(verb, s)).collect();
        let line = format!(
            "{{\"id\":{id},\"verb\":\"batch\",\"items\":[{}]}}",
            items.join(",")
        );
        let resp = self.request(&line)?;
        if !resp.contains("\"ok\":true") {
            return Err(ClientError {
                attempts: 1,
                last: resp,
            });
        }
        Ok(split_results(&resp)
            .into_iter()
            .map(BatchItem::from_raw)
            .collect())
    }

    /// [`request`](Self::request), asserting a success envelope — the
    /// convenience most test/bench call sites want.
    ///
    /// # Errors
    ///
    /// As [`request`](Self::request), plus a [`ClientError`] when the
    /// final response is a structured error.
    pub fn request_ok(&mut self, line: &str) -> Result<String, ClientError> {
        let resp = self.request(line)?;
        if resp.contains("\"ok\":true") {
            Ok(resp)
        } else {
            Err(ClientError {
                attempts: 1,
                last: resp,
            })
        }
    }
}

/// Splices `"verb":…` into a spec object's first position. The spec is
/// passed through otherwise untouched, so callers keep full control of
/// the fields (and malformed specs become the server's structured
/// per-slot answer, not a client-side panic).
fn splice_verb(verb: &str, spec: &str) -> String {
    let spec = spec.trim();
    let inner = spec
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .map_or(spec, str::trim);
    if inner.is_empty() {
        format!("{{\"verb\":\"{verb}\"}}")
    } else {
        format!("{{\"verb\":\"{verb}\",{inner}}}")
    }
}

/// Splits the envelope's `"results":[…]` array into its top-level
/// elements as raw text, so a successful slot's bytes stay exactly as
/// the server rendered them (no client-side re-serialization).
pub(crate) fn split_results(resp: &str) -> Vec<String> {
    let Some(start) = resp.find("\"results\":[") else {
        return Vec::new();
    };
    let body = &resp[start + "\"results\":[".len()..];
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut item_start = None;
    for (i, ch) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match ch {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            _ if in_str => {}
            '{' | '[' => {
                if depth == 0 && item_start.is_none() {
                    item_start = Some(i);
                }
                depth += 1;
            }
            '}' | ']' => {
                if depth == 0 {
                    // The array's own closing bracket.
                    break;
                }
                depth -= 1;
                if depth == 0 {
                    if let Some(s) = item_start.take() {
                        items.push(body[s..=i].to_string());
                    }
                }
            }
            _ => {}
        }
    }
    items
}

/// Is this response worth replaying? Only backpressure and worker-panic
/// errors qualify; success and permanent errors are final.
fn is_transient(resp: &str) -> bool {
    !resp.contains("\"ok\":true") && RETRYABLE_CODES.iter().any(|c| resp.contains(c))
}

/// Exponential backoff with deterministic jitter: `base·2^(attempt-1)`
/// capped at [`MAX_BACKOFF`], plus up to 50% drawn from a seeded hash so
/// simultaneous retriers fan out instead of stampeding in lockstep.
fn backoff_delay(attempt: u32, salt: u64) -> Duration {
    let exp = BASE_BACKOFF
        .saturating_mul(1 << (attempt - 1).min(10))
        .min(MAX_BACKOFF);
    let mut h = StableHasher::with_seed(0x1ced_c1e0);
    h.write_u64(salt);
    h.write_u64(u64::from(attempt));
    let jitter_ms = h.finish() % (exp.as_millis() as u64 / 2).max(1);
    exp + Duration::from_millis(jitter_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification_matches_the_retry_contract() {
        assert!(is_transient(
            r#"{"id":1,"ok":false,"error":{"code":"queue_full","message":"x"}}"#
        ));
        assert!(is_transient(
            r#"{"id":1,"ok":false,"error":{"code":"internal","message":"x"}}"#
        ));
        // Permanent errors and successes are final.
        assert!(!is_transient(
            r#"{"id":1,"ok":false,"error":{"code":"bad_request","message":"x"}}"#
        ));
        assert!(!is_transient(
            r#"{"id":1,"ok":false,"error":{"code":"shutting_down","message":"x"}}"#
        ));
        assert!(!is_transient(
            r#"{"id":1,"ok":true,"verb":"compile","cached":false,"result":{}}"#
        ));
        // A success whose payload merely mentions the word is not an error.
        assert!(!is_transient(
            r#"{"id":1,"ok":true,"result":{"note":"queue_full"}}"#
        ));
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        for salt in 0..8 {
            let mut prev = Duration::ZERO;
            for attempt in 1..=6 {
                let d = backoff_delay(attempt, salt);
                let exp = BASE_BACKOFF
                    .saturating_mul(1 << (attempt - 1))
                    .min(MAX_BACKOFF);
                assert!(d >= exp, "attempt {attempt}: {d:?} < {exp:?}");
                assert!(d < exp + exp / 2 + Duration::from_millis(1), "{d:?}");
                assert!(d >= prev / 4, "collapse at attempt {attempt}");
                prev = d;
            }
        }
        // Jitter is deterministic per (salt, attempt) …
        assert_eq!(backoff_delay(3, 9), backoff_delay(3, 9));
        // … and decorrelated across salts (at least one pair differs).
        assert!((0..16).any(|s| backoff_delay(3, s) != backoff_delay(3, s + 16)));
    }

    #[test]
    fn verb_splicing_handles_empty_and_populated_specs() {
        assert_eq!(splice_verb("compile", "{}"), "{\"verb\":\"compile\"}");
        assert_eq!(splice_verb("compile", "  {  }  "), "{\"verb\":\"compile\"}");
        assert_eq!(
            splice_verb("simulate", r#"{"kernel":"fir","iterations":100}"#),
            r#"{"verb":"simulate","kernel":"fir","iterations":100}"#
        );
        // A spec that is not an object passes through for the server to
        // reject with a structured per-slot error.
        assert_eq!(splice_verb("compile", "42"), "{\"verb\":\"compile\",42}");
    }

    #[test]
    fn result_splitting_preserves_slot_bytes_exactly() {
        let resp = concat!(
            r#"{"id":7,"req":"c1-1","ok":true,"verb":"batch","cached":false,"result":"#,
            r#"{"count":3,"unique":2,"deduped":1,"results":["#,
            r#"{"ok":true,"verb":"compile","cached":false,"result":{"kernel":"fir","note":"has ] and } in string"}},"#,
            r#"{"ok":false,"verb":"compile","error":{"code":"map_error","message":"no: [{"}},"#,
            r#"{"ok":true,"verb":"simulate","cached":true,"result":{"cycles":12,"nested":[1,[2,3]]}}"#,
            r#"]}}"#
        );
        let items = split_results(resp);
        assert_eq!(items.len(), 3);
        assert_eq!(
            items[0],
            r#"{"ok":true,"verb":"compile","cached":false,"result":{"kernel":"fir","note":"has ] and } in string"}}"#
        );
        assert_eq!(
            items[1],
            r#"{"ok":false,"verb":"compile","error":{"code":"map_error","message":"no: [{"}}"#
        );
        let third = BatchItem::from_raw(items[2].clone());
        assert!(third.ok);
        assert!(third.cached);
        let second = BatchItem::from_raw(items[1].clone());
        assert!(!second.ok);
        assert!(!second.cached);
        // An error response or empty array yields no slots.
        assert!(split_results(r#"{"ok":false,"error":{"code":"x"}}"#).is_empty());
        assert!(split_results(r#"{"ok":true,"result":{"results":[]}}"#).is_empty());
    }

    #[test]
    fn exhausted_retries_surface_the_last_observation() {
        // Nothing listens on a reserved port of the discard block.
        let mut c = Client::new("127.0.0.1:1").with_limits(Duration::from_millis(50), 2);
        let err = c.request("{\"id\":1,\"verb\":\"healthz\"}").unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(err.last.starts_with("transport:"), "{}", err.last);
        assert!(err.to_string().contains("after 2 attempts"));
    }
}
