//! The cluster layer: one router, N shards, one wire protocol.
//!
//! [`Router`] accepts the same newline-delimited JSON protocol as
//! [`crate::server::Server`] and consistent-hashes every cacheable
//! request's [`CacheKey`] to one of N backend `iced-serviced` shards via
//! rendezvous (highest-random-weight) hashing from `iced_hash`. Design
//! points, in the order they matter:
//!
//! * **One pipelined upstream connection per shard.** Shards answer each
//!   connection strictly in request order (the PR-7 ticket discipline),
//!   so the router needs no per-request correlation state upstream: a
//!   FIFO of in-flight [`Forward`] records per link is exact.
//! * **Client ordering is preserved** with the same ticket + reorder
//!   window the shard reactor uses: responses from different shards park
//!   under their ticket and release strictly in request order.
//! * **Byte identity.** A forwarded response is passed through verbatim
//!   except for the shard's `"req":"cX-Y"` token, which is replaced by
//!   the router's own token — the `cached` flag, result bytes, and error
//!   objects are exactly what a single daemon would have sent.
//! * **Batches split per shard.** Each slot's key is derived (same
//!   memoized derivation the shards use), slots group by owning shard
//!   into sub-batches whose raw item bytes are forwarded untouched, and
//!   the ordered response array is reassembled slot-by-slot. Invalid
//!   slots are answered locally with the shard-identical rendering.
//!   Identical keys route to the same shard, so envelope `unique` is the
//!   sum of per-shard uniques.
//! * **Hot-entry replication.** A key observed hot (≥K hits inside a
//!   sliding window) has its rendered result replicated to the key's
//!   rendezvous successor via the internal `cache_put` verb, so the ~160×
//!   warm-hit advantage survives the owner's death.
//! * **Failover.** A connect/read/write failure marks the shard down;
//!   its in-flight forwards replay to the surviving rendezvous owner
//!   (safe: results are content-addressed, requests idempotent), and
//!   rendezvous hashing guarantees only the dead shard's keys move.
//!   Down shards are re-probed at most every [`RECONNECT_MS`].

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iced::arch::CgraConfig;
use iced_hash::{rendezvous_rank, rendezvous_score, shard_id};

use crate::cache::CacheKey;
use crate::json::Obj;
use crate::poll::{drain_wakes, poll, wake_pair, PollFd, Waker, POLLIN, POLLOUT};
use crate::proto::{
    parse_request, render_batch_item_err, render_batch_result, render_err, render_ok, BatchSlot,
    Payload, Request, RequestId, SvcError, Verb, MAX_LINE_BYTES,
};
use crate::server::{elem_key, request_key};

const POLL_TIMEOUT_MS: i32 = 500;
const READ_CHUNK: usize = 64 * 1024;
const READ_ROUNDS: usize = 4;
const WRITE_COMPACT_BYTES: usize = 64 * 1024;
const FLUSH_BUDGET_MS: u64 = 5000;

/// Minimum spacing between reconnect probes to a down shard.
const RECONNECT_MS: u64 = 2000;

/// Blocking connect budget per shard probe; the loop stalls at most this
/// long when a shard has just died.
const CONNECT_TIMEOUT_MS: u64 = 100;

/// Default per-link inflight ceiling: the shards enforce their own
/// per-connection pipeline cap (`ICED_SVC_PIPELINE`, default 32), and a
/// router link is one connection — exceeding the shard's cap would turn
/// excess forwards into `too_many_requests` errors. Forwards beyond this
/// ceiling queue on the link and drain as responses come back.
const LINK_PIPELINE: usize = 32;

/// Sliding window for hot-hit counting.
const HOT_WINDOW: Duration = Duration::from_secs(60);

/// Hard bound on tracked keys; the table resets when exceeded (losing
/// counts is harmless — a genuinely hot key re-earns them immediately).
const HOT_TABLE_CAP: usize = 65_536;

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address (`ICED_SVC_ADDR`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Backend shard addresses (`ICED_SVC_SHARDS`, comma-separated).
    pub shards: Vec<String>,
    /// Replicate a key's result to its successor shard after this many
    /// window hits (`ICED_SVC_REPLICATE_HOT`; 0 disables replication).
    pub replicate_hot: usize,
    /// Per-connection pipeline cap (`ICED_SVC_PIPELINE`).
    pub pipeline: usize,
    /// Connection cap (`ICED_SVC_MAX_CONNS`).
    pub max_conns: usize,
    /// Per-shard-link inflight ceiling; must not exceed the shards' own
    /// `ICED_SVC_PIPELINE` or excess forwards bounce as
    /// `too_many_requests`. Matches the shard default when left alone.
    pub shard_pipeline: usize,
    /// CGRA configuration whose canonical hash keys the cache — must
    /// match the shards' or routed keys never hit.
    pub cgra: CgraConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            replicate_hot: 3,
            pipeline: 32,
            max_conns: 4096,
            shard_pipeline: LINK_PIPELINE,
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

fn env_usize(key: &str, default: usize, lo: usize, hi: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(default, |v| v.clamp(lo, hi))
}

impl RouterConfig {
    /// Reads `ICED_SVC_*` from the environment, with sane defaults.
    pub fn from_env() -> Self {
        RouterConfig {
            addr: std::env::var("ICED_SVC_ADDR").unwrap_or_else(|_| "127.0.0.1:9191".into()),
            shards: std::env::var("ICED_SVC_SHARDS")
                .map(|s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default(),
            replicate_hot: env_usize("ICED_SVC_REPLICATE_HOT", 3, 0, 1_000_000),
            pipeline: env_usize("ICED_SVC_PIPELINE", 32, 1, 4096),
            max_conns: env_usize("ICED_SVC_MAX_CONNS", 4096, 1, 1_000_000),
            shard_pipeline: LINK_PIPELINE,
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

/// Why a forwarded line is in flight, in FIFO order per shard link.
enum Forward {
    /// A whole client request; the response passes through (req token
    /// rewritten). `line` is kept for failover replay.
    Single {
        slot: usize,
        token: u64,
        ticket: u64,
        rid: RequestId,
        id: u64,
        verb: Verb,
        key: CacheKey,
        line: String,
    },
    /// One per-shard piece of a split batch.
    BatchPart {
        /// Key into the assembly table.
        assembly: u64,
        /// Index into the assembly's `parts`.
        part: usize,
    },
    /// Router-originated traffic (`cache_put` replication, forwarded
    /// shutdown); the response is consumed and dropped.
    Internal,
}

/// One sub-batch forwarded to a single shard.
struct AsmPart {
    /// The raw sub-batch request line (kept for failover replay).
    line: String,
    /// Original slot indexes this part's response array maps onto.
    slot_idxs: Vec<usize>,
    /// First slot's key — the routing key for failover replay.
    first_key: CacheKey,
    done: bool,
}

/// A split batch being reassembled.
struct Assembly {
    slot: usize,
    token: u64,
    ticket: u64,
    rid: RequestId,
    id: u64,
    /// Rendered per-slot items; invalid slots are prefilled locally.
    items: Vec<Option<String>>,
    unique_sum: usize,
    parts: Vec<AsmPart>,
    parts_outstanding: usize,
}

/// One pipelined upstream connection to a backend shard.
struct ShardLink {
    addr: String,
    id: u64,
    stream: Option<TcpStream>,
    up: bool,
    last_probe: Option<Instant>,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    inflight: VecDeque<Forward>,
    /// Forwards accepted while the link was at [`LINK_PIPELINE`]; drained
    /// onto the wire in order as responses free slots.
    queued: VecDeque<(String, Forward)>,
    forwarded: u64,
}

impl ShardLink {
    fn new(addr: String) -> ShardLink {
        let id = shard_id(&addr);
        ShardLink {
            addr,
            id,
            stream: None,
            up: false,
            last_probe: None,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: VecDeque::new(),
            queued: VecDeque::new(),
            forwarded: 0,
        }
    }

    fn write_pending(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Appends one line (newline added) to the link's write buffer.
    fn push_line(&mut self, line: &str) {
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
    }
}

/// A finished response awaiting release in ticket order.
struct PendingLine {
    line: String,
}

/// One downstream client connection (same slab/ticket discipline as the
/// shard reactor, minus the worker-pool hand-off).
struct ClientConn {
    stream: TcpStream,
    token: u64,
    slot: usize,
    seq: u64,
    read_buf: Vec<u8>,
    discarding: bool,
    write_buf: Vec<u8>,
    wpos: usize,
    next_ticket: u64,
    next_release: u64,
    pending: BTreeMap<u64, PendingLine>,
    outstanding: usize,
    read_closed: bool,
    dead: bool,
}

impl ClientConn {
    fn new(stream: TcpStream, token: u64, slot: usize) -> ClientConn {
        ClientConn {
            stream,
            token,
            slot,
            seq: 0,
            read_buf: Vec::new(),
            discarding: false,
            write_buf: Vec::new(),
            wpos: 0,
            next_ticket: 0,
            next_release: 0,
            pending: BTreeMap::new(),
            outstanding: 0,
            read_closed: false,
            dead: false,
        }
    }

    fn write_pending(&self) -> bool {
        self.wpos < self.write_buf.len()
    }

    fn admit(&mut self) -> (RequestId, u64) {
        self.seq += 1;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.outstanding += 1;
        (
            RequestId {
                conn: self.token,
                seq: self.seq,
            },
            ticket,
        )
    }

    fn complete(&mut self, ticket: u64, line: String) {
        self.pending.insert(ticket, PendingLine { line });
    }

    fn release_ready(&mut self) {
        while let Some(entry) = self.pending.remove(&self.next_release) {
            self.next_release += 1;
            self.outstanding -= 1;
            self.write_buf.extend_from_slice(entry.line.as_bytes());
            self.write_buf.push(b'\n');
        }
    }

    fn flush(&mut self) {
        while self.wpos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        if self.wpos == self.write_buf.len() {
            self.write_buf.clear();
            self.wpos = 0;
        } else if self.wpos > WRITE_COMPACT_BYTES {
            self.write_buf.drain(..self.wpos);
            self.wpos = 0;
        }
    }
}

/// Hot-hit tracking for one key.
struct HotEntry {
    hits: usize,
    window_start: Instant,
    /// Shard id holding the replica, if any.
    replicated_to: Option<u64>,
}

/// State shared between the router loop and the [`Router`] handle.
struct RouterShared {
    shutting: AtomicBool,
    waker: Waker,
}

/// A running cluster router.
pub struct Router {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    thread: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds the listen address and starts the routing loop.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, a wake-pair setup failure, or an
    /// empty shard list (`InvalidInput`).
    pub fn start(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.shards.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router needs at least one shard address (ICED_SVC_SHARDS)",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = wake_pair()?;
        let shared = Arc::new(RouterShared {
            shutting: AtomicBool::new(false),
            waker,
        });
        let loop_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("iced-router".into())
            .spawn(move || router_loop(&loop_shared, cfg, listener, wake_rx))?;
        Ok(Router {
            shared,
            addr,
            thread: Some(thread),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Begins shutdown: stop accepting, forward `shutdown` to every live
    /// shard, drain in-flight responses, exit.
    pub fn shutdown(&self) {
        self.shared.shutting.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Blocks until the routing loop has drained and exited.
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shared.shutting.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Everything the routing loop owns. Single-threaded: no locks anywhere
/// past the shutdown flag.
struct Loop {
    cfg_hash: u64,
    replicate_hot: usize,
    pipeline_cap: usize,
    link_pipeline: usize,
    max_conns: usize,
    links: Vec<ShardLink>,
    shard_ids: Vec<u64>,
    conns: Vec<Option<ClientConn>>,
    free: Vec<usize>,
    next_token: u64,
    assemblies: HashMap<u64, Assembly>,
    next_assembly: u64,
    hot: HashMap<CacheKey, HotEntry>,
    started: Instant,
    // Counters for healthz/stats/prometheus.
    forwarded_total: u64,
    replicated_total: u64,
    failover_total: u64,
    conns_total: u64,
    conns_open: u64,
    conns_rejected: u64,
    errors: u64,
    shutdown_sent: bool,
    /// Set by a wire `shutdown`; promoted to the shared flag at the loop
    /// top so wire- and API-initiated shutdowns share one path.
    shutdown_requested: bool,
    /// Responses finished while their connection was checked out of the
    /// slab (the read path) park here; drained every iteration.
    completions: Vec<(usize, u64, u64, String)>,
}

fn router_loop(
    shared: &Arc<RouterShared>,
    cfg: RouterConfig,
    listener: TcpListener,
    mut wake_rx: TcpStream,
) {
    let links: Vec<ShardLink> = cfg
        .shards
        .iter()
        .map(|a| ShardLink::new(a.clone()))
        .collect();
    let shard_ids: Vec<u64> = links.iter().map(|l| l.id).collect();
    let mut st = Loop {
        cfg_hash: cfg.cgra.canonical_hash(),
        replicate_hot: cfg.replicate_hot,
        pipeline_cap: cfg.pipeline.max(1),
        link_pipeline: cfg.shard_pipeline.max(1),
        max_conns: cfg.max_conns.max(1),
        links,
        shard_ids,
        conns: Vec::new(),
        free: Vec::new(),
        next_token: 0,
        assemblies: HashMap::new(),
        next_assembly: 0,
        hot: HashMap::new(),
        started: Instant::now(),
        forwarded_total: 0,
        replicated_total: 0,
        failover_total: 0,
        conns_total: 0,
        conns_open: 0,
        conns_rejected: 0,
        errors: 0,
        shutdown_sent: false,
        shutdown_requested: false,
        completions: Vec::new(),
    };
    let mut listener = Some(listener);
    let mut fds: Vec<PollFd> = Vec::new();
    // What each pollfd past the fixed prefix refers to.
    enum FdRef {
        Conn(usize),
        Link(usize),
    }
    let mut fd_refs: Vec<FdRef> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if st.shutdown_requested {
            shared.shutting.store(true, Ordering::SeqCst);
        }
        let shutting = shared.shutting.load(Ordering::SeqCst);
        if shutting {
            listener = None;
            if !st.shutdown_sent {
                st.shutdown_sent = true;
                forward_shutdown_to_shards(&mut st);
            }
        }

        fds.clear();
        fd_refs.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for (i, c) in st.conns.iter().enumerate() {
            let Some(c) = c else { continue };
            let mut interest = 0i16;
            if !c.read_closed && !c.dead {
                interest |= POLLIN;
            }
            if c.write_pending() && !c.dead {
                interest |= POLLOUT;
            }
            if interest != 0 {
                fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
                fd_refs.push(FdRef::Conn(i));
            }
        }
        for (i, l) in st.links.iter().enumerate() {
            let Some(s) = &l.stream else { continue };
            let mut interest = POLLIN;
            if l.write_pending() {
                interest |= POLLOUT;
            }
            fds.push(PollFd::new(s.as_raw_fd(), interest));
            fd_refs.push(FdRef::Link(i));
        }
        let _ = poll(&mut fds, POLL_TIMEOUT_MS);
        if fds[0].readable() {
            drain_wakes(&mut wake_rx);
        }

        if let Some(l) = listener.as_ref() {
            if fds[1].readable() {
                accept_all(&mut st, l);
            }
        }

        for (k, pfd) in fds.iter().enumerate().skip(base) {
            match fd_refs[k - base] {
                FdRef::Conn(slot) => {
                    if pfd.readable() && st.conns[slot].is_some() {
                        read_client(&mut st, shutting, slot, &mut scratch);
                    }
                }
                FdRef::Link(idx) => {
                    if pfd.writable() {
                        flush_link(&mut st, shutting, idx);
                    }
                    if pfd.readable() {
                        read_link(&mut st, shutting, idx, &mut scratch);
                    }
                }
            }
        }

        // One flush per link per iteration: forwards accumulated across
        // every client line read above go out in a single write, so a
        // deep pipeline costs one syscall per chunk, not one per request.
        for i in 0..st.links.len() {
            if st.links[i].write_pending() {
                flush_link(&mut st, shutting, i);
            }
        }

        drain_completions(&mut st);
        for c in st.conns.iter_mut().flatten() {
            if !c.dead {
                c.release_ready();
                c.flush();
            }
        }

        for i in 0..st.conns.len() {
            let finished = match &st.conns[i] {
                Some(c) => c.dead || (c.read_closed && c.outstanding == 0 && !c.write_pending()),
                None => false,
            };
            if finished {
                if let Some(c) = st.conns[i].take() {
                    let _ = c.stream.shutdown(Shutdown::Both);
                    st.conns_open = st.conns_open.saturating_sub(1);
                }
                st.free.push(i);
            }
        }

        if shutting {
            let deadline = *drain_deadline
                .get_or_insert_with(|| Instant::now() + Duration::from_millis(FLUSH_BUDGET_MS));
            let upstream_done = st
                .links
                .iter()
                .all(|l| (l.inflight.is_empty() && l.queued.is_empty()) || !l.up);
            let flushed = st
                .conns
                .iter()
                .flatten()
                .all(|c| c.pending.is_empty() && !c.write_pending());
            if (upstream_done && flushed) || Instant::now() >= deadline {
                break;
            }
        }
    }

    for l in &st.links {
        if let Some(s) = &l.stream {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
    for c in st.conns.iter().flatten() {
        let _ = c.stream.shutdown(Shutdown::Both);
    }
}

fn accept_all(st: &mut Loop, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(true);
                let _ = stream.set_nodelay(true);
                if st.conns_open as usize >= st.max_conns {
                    st.conns_rejected += 1;
                    refuse_connection(st.max_conns, stream);
                    continue;
                }
                st.conns_total += 1;
                st.conns_open += 1;
                st.next_token += 1;
                let slot = st.free.pop().unwrap_or(st.conns.len());
                let conn = ClientConn::new(stream, st.next_token, slot);
                if slot == st.conns.len() {
                    st.conns.push(Some(conn));
                } else {
                    st.conns[slot] = Some(conn);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

fn refuse_connection(max_conns: usize, mut stream: TcpStream) {
    let err = SvcError::new(
        "too_many_connections",
        format!("connection limit ({max_conns}) reached; retry later"),
    );
    let mut line = render_err(0, None, None, &err);
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

fn too_large() -> SvcError {
    SvcError::new("too_large", "request line exceeds 1 MiB")
}

fn read_client(st: &mut Loop, shutting: bool, slot: usize, scratch: &mut [u8]) {
    // The connection is taken out of the slab while its lines are
    // handled, because handling may touch other loop state (links,
    // assemblies). Completions for this conn go through its own entry.
    let Some(mut c) = st.conns[slot].take() else {
        return;
    };
    for _ in 0..READ_ROUNDS {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.read_closed = true;
                break;
            }
            Ok(n) => {
                consume_client_bytes(st, shutting, &mut c, &scratch[..n]);
                if c.dead {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                break;
            }
        }
    }
    if c.read_closed && !c.dead {
        if c.discarding {
            c.discarding = false;
            c.read_buf.clear();
            reject_unframed(st, &mut c, too_large());
        } else if !c.read_buf.is_empty() {
            let bytes = std::mem::take(&mut c.read_buf);
            let text = String::from_utf8_lossy(&bytes).into_owned();
            handle_client_line(st, shutting, &mut c, text.trim());
        }
    }
    st.conns[slot] = Some(c);
}

fn consume_client_bytes(st: &mut Loop, shutting: bool, c: &mut ClientConn, mut bytes: &[u8]) {
    while !bytes.is_empty() {
        match bytes.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let (head, rest) = bytes.split_at(pos);
                bytes = &rest[1..];
                if c.discarding {
                    c.discarding = false;
                    c.read_buf.clear();
                    reject_unframed(st, c, too_large());
                    continue;
                }
                if c.read_buf.len() + head.len() > MAX_LINE_BYTES {
                    c.read_buf.clear();
                    reject_unframed(st, c, too_large());
                    continue;
                }
                if c.read_buf.is_empty() {
                    // Whole line inside this read: hand the borrowed
                    // bytes straight down, no copy into the stash.
                    let text = String::from_utf8_lossy(head);
                    handle_client_line(st, shutting, c, text.trim());
                } else {
                    c.read_buf.extend_from_slice(head);
                    let buf = std::mem::take(&mut c.read_buf);
                    let text = String::from_utf8_lossy(&buf);
                    handle_client_line(st, shutting, c, text.trim());
                }
                if c.dead {
                    return;
                }
            }
            None => {
                if c.discarding {
                    return;
                }
                if c.read_buf.len() + bytes.len() > MAX_LINE_BYTES {
                    c.read_buf.clear();
                    c.discarding = true;
                    return;
                }
                c.read_buf.extend_from_slice(bytes);
                return;
            }
        }
    }
}

fn reject_unframed(st: &mut Loop, c: &mut ClientConn, err: SvcError) {
    let (rid, ticket) = c.admit();
    st.errors += 1;
    c.complete(ticket, render_err(0, Some(rid), None, &err));
}

fn handle_client_line(st: &mut Loop, shutting: bool, c: &mut ClientConn, text: &str) {
    if text.is_empty() {
        return;
    }
    let (rid, ticket) = c.admit();
    if c.outstanding > st.pipeline_cap {
        st.errors += 1;
        let err = SvcError::new(
            "too_many_requests",
            format!(
                "connection has {} unanswered requests (pipeline cap {}); read responses before sending more",
                c.outstanding - 1,
                st.pipeline_cap
            ),
        );
        c.complete(ticket, render_err(0, Some(rid), None, &err));
        return;
    }
    let req = match parse_request(text) {
        Ok(r) => r,
        Err(e) => {
            st.errors += 1;
            c.complete(ticket, render_err(e.id, Some(rid), e.verb, &e.error));
            return;
        }
    };
    match req.verb {
        Verb::Healthz => {
            let result = render_router_healthz(st, shutting);
            c.complete(
                ticket,
                render_ok(req.id, Some(rid), Verb::Healthz, false, &result),
            );
        }
        Verb::Metrics => {
            let result = render_router_stats(st);
            c.complete(
                ticket,
                render_ok(req.id, Some(rid), Verb::Metrics, false, &result),
            );
        }
        Verb::Stats => {
            let result = if matches!(req.payload, Payload::Stats { prometheus: true }) {
                Obj::new()
                    .str("format", "prometheus")
                    .str("body", &render_router_prometheus(st))
                    .finish()
            } else {
                render_router_stats(st)
            };
            c.complete(
                ticket,
                render_ok(req.id, Some(rid), Verb::Stats, false, &result),
            );
        }
        Verb::Shutdown => {
            // The cluster drains as one unit: the router forwards the
            // shutdown to every live shard (at the loop top, when the
            // requested flag is promoted) and answers the client now.
            let in_flight: usize = st
                .links
                .iter()
                .map(|l| l.inflight.len() + l.queued.len())
                .sum();
            let result = Obj::new()
                .str("state", "draining")
                .u64("queued", 0)
                .u64("in_flight", in_flight as u64)
                .finish();
            c.complete(
                ticket,
                render_ok(req.id, Some(rid), Verb::Shutdown, false, &result),
            );
            st.shutdown_requested = true;
        }
        Verb::Batch => {
            if shutting || st.shutdown_requested {
                reject_shutting(st, c, &req, rid, ticket);
                return;
            }
            let Payload::Batch(spec) = req.payload else {
                unreachable!("batch request with non-batch payload");
            };
            route_batch(st, c, text, req.id, spec.items, rid, ticket);
        }
        Verb::Compile | Verb::Simulate | Verb::Stream | Verb::CachePut => {
            if shutting || st.shutdown_requested {
                reject_shutting(st, c, &req, rid, ticket);
                return;
            }
            let key = match &req.payload {
                Payload::CachePut { key, .. } => {
                    CacheKey::from_hex(key).expect("parse_request validated the hex key")
                }
                _ => request_key(st.cfg_hash, &req).expect("work verbs always derive a key"),
            };
            route_single(st, c, text, &req, key, rid, ticket);
        }
    }
}

fn reject_shutting(st: &mut Loop, c: &mut ClientConn, req: &Request, rid: RequestId, ticket: u64) {
    st.errors += 1;
    let err = SvcError::new(
        "shutting_down",
        "server is draining and accepts no new work",
    );
    c.complete(ticket, render_err(req.id, Some(rid), Some(req.verb), &err));
}

/// Picks the live shard owning `key`: the best-ranked rendezvous shard
/// that is up (probing down shards at most every [`RECONNECT_MS`]).
fn pick_shard(st: &mut Loop, key: CacheKey) -> Option<usize> {
    // Fast path: a single max-scan finds the owner (ties break toward the
    // smaller shard id, exactly as `rendezvous_rank` sorts) without the
    // rank vector's allocation and sort. Only when the owner is down does
    // the full ranking matter.
    let mut best = 0usize;
    let mut best_score = rendezvous_score(key.0, key.1, st.shard_ids[0]);
    for (i, &sid) in st.shard_ids.iter().enumerate().skip(1) {
        let score = rendezvous_score(key.0, key.1, sid);
        if score > best_score || (score == best_score && sid < st.shard_ids[best]) {
            best = i;
            best_score = score;
        }
    }
    if st.links[best].up || try_connect(&mut st.links[best]) {
        return Some(best);
    }
    rendezvous_rank(key.0, key.1, &st.shard_ids)
        .into_iter()
        .find(|&idx| idx != best && (st.links[idx].up || try_connect(&mut st.links[idx])))
}

/// Attempts a (throttled) reconnect to a down shard. Returns whether the
/// link is usable.
fn try_connect(link: &mut ShardLink) -> bool {
    if link.up {
        return true;
    }
    if let Some(t) = link.last_probe {
        if t.elapsed() < Duration::from_millis(RECONNECT_MS) {
            return false;
        }
    }
    link.last_probe = Some(Instant::now());
    let Some(addr) = link.addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        return false;
    };
    match TcpStream::connect_timeout(&addr, Duration::from_millis(CONNECT_TIMEOUT_MS)) {
        Ok(s) => {
            let _ = s.set_nonblocking(true);
            let _ = s.set_nodelay(true);
            link.stream = Some(s);
            link.up = true;
            link.rbuf.clear();
            link.wbuf.clear();
            link.wpos = 0;
            true
        }
        Err(_) => false,
    }
}

/// Forwards one already-rendered line to shard `idx` and records what is
/// in flight. Opportunistically flushes so single-request latency does
/// not pay an extra poll round trip.
fn forward_to(st: &mut Loop, idx: usize, line: &str, fwd: Forward) {
    let link = &mut st.links[idx];
    link.forwarded += 1;
    st.forwarded_total += 1;
    if link.inflight.len() >= st.link_pipeline {
        // At the shard's pipeline ceiling: hold the forward back rather
        // than have the shard reject it with `too_many_requests`.
        link.queued.push_back((line.to_string(), fwd));
        return;
    }
    link.push_line(line);
    link.inflight.push_back(fwd);
    // No flush here: the loop flushes every link with pending bytes once
    // per iteration, batching pipelined forwards into one write.
}

/// Moves queued forwards onto the wire while the link has free pipeline
/// slots. Called after responses drain inflight entries; the loop's
/// per-iteration flush pushes the bytes out.
fn pump_link_queue(st: &mut Loop, idx: usize) {
    let cap = st.link_pipeline;
    let link = &mut st.links[idx];
    if !link.up {
        return;
    }
    while link.inflight.len() < cap {
        let Some((line, fwd)) = link.queued.pop_front() else {
            break;
        };
        link.push_line(&line);
        link.inflight.push_back(fwd);
    }
}

fn route_single(
    st: &mut Loop,
    c: &mut ClientConn,
    text: &str,
    req: &Request,
    key: CacheKey,
    rid: RequestId,
    ticket: u64,
) {
    let Some(idx) = pick_shard(st, key) else {
        answer_no_shards(st, c, req.id, Some(req.verb), rid, ticket);
        return;
    };
    forward_to(
        st,
        idx,
        text,
        Forward::Single {
            slot: c.slot,
            token: c.token,
            ticket,
            rid,
            id: req.id,
            verb: req.verb,
            key,
            line: text.to_string(),
        },
    );
}

fn answer_no_shards(
    st: &mut Loop,
    c: &mut ClientConn,
    id: u64,
    verb: Option<Verb>,
    rid: RequestId,
    ticket: u64,
) {
    st.errors += 1;
    let err = SvcError::new(
        "no_shards",
        "no backend shard is reachable; check ICED_SVC_SHARDS and shard health",
    );
    c.complete(ticket, render_err(id, Some(rid), verb, &err));
}

fn route_batch(
    st: &mut Loop,
    c: &mut ClientConn,
    text: &str,
    id: u64,
    slots: Vec<BatchSlot>,
    rid: RequestId,
    ticket: u64,
) {
    if slots.is_empty() {
        let result = render_batch_result(0, 0, &[]);
        c.complete(
            ticket,
            render_ok(id, Some(rid), Verb::Batch, false, &result),
        );
        return;
    }
    let raw = split_items_raw(text);
    if raw.len() != slots.len() {
        // Cannot happen for JSON that just parsed; answer structurally
        // rather than panic on a hostile line.
        st.errors += 1;
        let err = SvcError::new("internal", "batch item framing mismatch");
        c.complete(ticket, render_err(id, Some(rid), Some(Verb::Batch), &err));
        return;
    }
    let mut items: Vec<Option<String>> = vec![None; slots.len()];
    // Group valid slots by owning shard, preserving slot order within
    // each group (the shard answers its sub-batch in that order).
    let mut groups: HashMap<usize, (Vec<usize>, Vec<String>, CacheKey)> = HashMap::new();
    let mut group_order: Vec<usize> = Vec::new();
    for (i, slot) in slots.iter().enumerate() {
        match slot {
            BatchSlot::Invalid { verb, error } => {
                items[i] = Some(render_batch_item_err(*verb, error));
            }
            BatchSlot::Elem(elem) => {
                let key = elem_key(st.cfg_hash, elem);
                let Some(idx) = pick_shard(st, key) else {
                    answer_no_shards(st, c, id, Some(Verb::Batch), rid, ticket);
                    return;
                };
                let entry = groups.entry(idx).or_insert_with(|| {
                    group_order.push(idx);
                    (Vec::new(), Vec::new(), key)
                });
                entry.0.push(i);
                entry.1.push(raw[i].clone());
            }
        }
    }
    if groups.is_empty() {
        // Every slot was invalid: answer locally, exactly as a shard
        // would (count = slots, nothing unique).
        let rendered: Vec<String> = items.into_iter().map(Option::unwrap).collect();
        let result = render_batch_result(rendered.len(), 0, &rendered);
        c.complete(
            ticket,
            render_ok(id, Some(rid), Verb::Batch, false, &result),
        );
        return;
    }
    let asm_id = st.next_assembly;
    st.next_assembly += 1;
    let mut asm = Assembly {
        slot: c.slot,
        token: c.token,
        ticket,
        rid,
        id,
        items,
        unique_sum: 0,
        parts: Vec::new(),
        parts_outstanding: group_order.len(),
    };
    // Build every part before forwarding any: forwarding can trigger a
    // synchronous failover replay, which looks the assembly up by id.
    let mut sends: Vec<(usize, usize, String)> = Vec::new();
    for idx in &group_order {
        let (slot_idxs, raws, first_key) = groups.remove(idx).expect("group exists");
        let line = format!(
            "{{\"id\":{id},\"verb\":\"batch\",\"items\":[{}]}}",
            raws.join(",")
        );
        let part = asm.parts.len();
        asm.parts.push(AsmPart {
            line: line.clone(),
            slot_idxs,
            first_key,
            done: false,
        });
        sends.push((*idx, part, line));
    }
    st.assemblies.insert(asm_id, asm);
    for (idx, part, line) in sends {
        // The replay path may already have answered (and removed) the
        // assembly; later parts are then pointless.
        if !st.assemblies.contains_key(&asm_id) {
            break;
        }
        forward_to(
            st,
            idx,
            &line,
            Forward::BatchPart {
                assembly: asm_id,
                part,
            },
        );
    }
}

/// Forwards `shutdown` once to every live shard so the cluster drains as
/// one unit.
fn forward_shutdown_to_shards(st: &mut Loop) {
    for idx in 0..st.links.len() {
        if st.links[idx].up || try_connect(&mut st.links[idx]) {
            forward_to(st, idx, "{\"verb\":\"shutdown\"}", Forward::Internal);
        }
    }
}

fn flush_link(st: &mut Loop, shutting: bool, idx: usize) {
    let link = &mut st.links[idx];
    let Some(stream) = link.stream.as_mut() else {
        return;
    };
    let mut died = false;
    while link.wpos < link.wbuf.len() {
        match stream.write(&link.wbuf[link.wpos..]) {
            Ok(0) => {
                died = true;
                break;
            }
            Ok(n) => link.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    if died {
        shard_died(st, shutting, idx);
        return;
    }
    let link = &mut st.links[idx];
    if link.wpos == link.wbuf.len() {
        link.wbuf.clear();
        link.wpos = 0;
    } else if link.wpos > WRITE_COMPACT_BYTES {
        link.wbuf.drain(..link.wpos);
        link.wpos = 0;
    }
}

fn read_link(st: &mut Loop, shutting: bool, idx: usize, scratch: &mut [u8]) {
    let mut died = false;
    for _ in 0..READ_ROUNDS {
        let link = &mut st.links[idx];
        let Some(stream) = link.stream.as_mut() else {
            return;
        };
        match stream.read(scratch) {
            Ok(0) => {
                died = true;
                break;
            }
            Ok(n) => {
                link.rbuf.extend_from_slice(&scratch[..n]);
                drain_link_lines(st, shutting, idx);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    if died {
        shard_died(st, shutting, idx);
    }
}

/// Splits complete lines out of a link's read buffer and matches each to
/// the front of the in-flight FIFO.
fn drain_link_lines(st: &mut Loop, shutting: bool, idx: usize) {
    // The buffer is taken out of the link so each line can be handled as
    // a borrowed slice — no per-line Vec + String round trip. Handlers
    // never touch this link's read buffer (a response only completes
    // client state or forwards to *other* links), so the take is safe.
    let mut rbuf = std::mem::take(&mut st.links[idx].rbuf);
    let mut consumed = 0usize;
    while let Some(pos) = rbuf[consumed..].iter().position(|&b| b == b'\n') {
        let end = consumed + pos;
        let line_cow = String::from_utf8_lossy(&rbuf[consumed..end]);
        consumed = end + 1;
        let line = line_cow.trim();
        if line.is_empty() {
            continue;
        }
        let Some(fwd) = st.links[idx].inflight.pop_front() else {
            // An unsolicited line is a protocol violation; treat the
            // link as poisoned. `shard_died` already cleared the link's
            // (empty) buffer; the taken bytes are dropped with it.
            shard_died(st, shutting, idx);
            return;
        };
        handle_shard_response(st, shutting, idx, fwd, line);
    }
    rbuf.drain(..consumed);
    st.links[idx].rbuf = rbuf;
    pump_link_queue(st, idx);
}

fn handle_shard_response(st: &mut Loop, shutting: bool, idx: usize, fwd: Forward, line: &str) {
    match fwd {
        Forward::Internal => {}
        Forward::Single {
            slot,
            token,
            ticket,
            rid,
            verb,
            key,
            ..
        } => {
            let rewritten = rewrite_req_token(line, rid);
            if verb.cacheable() && line.contains("\"ok\":true") {
                note_hot_hit(st, shutting, idx, key, line);
            }
            complete_client(st, slot, token, ticket, rewritten);
        }
        Forward::BatchPart { assembly, part } => {
            let Some(asm) = st.assemblies.get_mut(&assembly) else {
                // Assembly already answered (a sibling part hit a
                // shard-level error); drop the straggler.
                return;
            };
            if !line.contains("\"ok\":true") {
                // Shard-level failure (queue_full/shutting_down/internal):
                // the whole batch answers with it, preserving the
                // client's whole-batch retry contract.
                let asm = st.assemblies.remove(&assembly).expect("checked above");
                let err = extract_error(line);
                st.errors += 1;
                complete_client(
                    st,
                    asm.slot,
                    asm.token,
                    asm.ticket,
                    render_err(asm.id, Some(asm.rid), Some(Verb::Batch), &err),
                );
                return;
            }
            let part_items = crate::client::split_results(line);
            let part_unique = field_u64_after(line, "\"unique\":").unwrap_or(0) as usize;
            if part_items.len() != asm.parts[part].slot_idxs.len() {
                let asm = st.assemblies.remove(&assembly).expect("checked above");
                st.errors += 1;
                let err = SvcError::new("internal", "shard answered a mis-sized batch part");
                complete_client(
                    st,
                    asm.slot,
                    asm.token,
                    asm.ticket,
                    render_err(asm.id, Some(asm.rid), Some(Verb::Batch), &err),
                );
                return;
            }
            for (k, item) in part_items.into_iter().enumerate() {
                let slot_idx = asm.parts[part].slot_idxs[k];
                asm.items[slot_idx] = Some(item);
            }
            asm.unique_sum += part_unique;
            asm.parts[part].done = true;
            asm.parts_outstanding -= 1;
            if asm.parts_outstanding == 0 {
                let asm = st.assemblies.remove(&assembly).expect("checked above");
                let rendered: Vec<String> = asm
                    .items
                    .into_iter()
                    .map(|i| i.expect("every slot answered"))
                    .collect();
                let result = render_batch_result(rendered.len(), asm.unique_sum, &rendered);
                complete_client(
                    st,
                    asm.slot,
                    asm.token,
                    asm.ticket,
                    render_ok(asm.id, Some(asm.rid), Verb::Batch, false, &result),
                );
            }
        }
    }
}

/// Routes a finished response line to its client connection. Parked in
/// a side buffer because the target connection may be checked out of
/// the slab (a synchronous failover replay triggered from its own read
/// path); [`drain_completions`] delivers generation-checked.
fn complete_client(st: &mut Loop, slot: usize, token: u64, ticket: u64, line: String) {
    st.completions.push((slot, token, ticket, line));
}

fn drain_completions(st: &mut Loop) {
    for (slot, token, ticket, line) in std::mem::take(&mut st.completions) {
        if let Some(c) = st.conns.get_mut(slot).and_then(Option::as_mut) {
            if c.token == token {
                c.complete(ticket, line);
            }
        }
    }
}

/// Counts a warm-able hit and replicates the rendered result to the
/// key's successor shard once the threshold is crossed.
fn note_hot_hit(st: &mut Loop, shutting: bool, owner_idx: usize, key: CacheKey, line: &str) {
    if st.replicate_hot == 0 || shutting {
        return;
    }
    if st.hot.len() >= HOT_TABLE_CAP {
        st.hot.clear();
    }
    let now = Instant::now();
    let entry = st.hot.entry(key).or_insert(HotEntry {
        hits: 0,
        window_start: now,
        replicated_to: None,
    });
    if now.duration_since(entry.window_start) > HOT_WINDOW {
        entry.hits = 0;
        entry.window_start = now;
    }
    entry.hits += 1;
    if entry.hits < st.replicate_hot || entry.replicated_to.is_some() {
        return;
    }
    let Some(result) = extract_result_object(line) else {
        return;
    };
    // Successor: the best-ranked live shard other than the one that just
    // answered.
    let owner_id = st.shard_ids[owner_idx];
    let rank = rendezvous_rank(key.0, key.1, &st.shard_ids);
    let succ = rank.into_iter().find(|&i| {
        st.shard_ids[i] != owner_id && (st.links[i].up || try_connect(&mut st.links[i]))
    });
    let Some(succ) = succ else {
        return;
    };
    let put = Obj::new()
        .u64("id", 0)
        .str("verb", "cache_put")
        .str("key", &key.hex())
        .str("value", &result)
        .finish();
    st.hot
        .get_mut(&key)
        .expect("entry just inserted")
        .replicated_to = Some(st.shard_ids[succ]);
    st.replicated_total += 1;
    forward_to(st, succ, &put, Forward::Internal);
}

/// Handles a shard death: marks the link down, replays its in-flight
/// client work onto survivors, and drops its internal traffic.
fn shard_died(st: &mut Loop, shutting: bool, idx: usize) {
    let link = &mut st.links[idx];
    if let Some(s) = link.stream.take() {
        let _ = s.shutdown(Shutdown::Both);
    }
    let was_up = link.up;
    link.up = false;
    link.rbuf.clear();
    link.wbuf.clear();
    link.wpos = 0;
    link.last_probe = Some(Instant::now());
    let mut orphans: Vec<Forward> = link.inflight.drain(..).collect();
    orphans.extend(link.queued.drain(..).map(|(_, f)| f));
    let dead_id = link.id;
    if !was_up {
        return;
    }
    // Replicas held by the dead shard are gone; allow re-replication.
    for entry in st.hot.values_mut() {
        if entry.replicated_to == Some(dead_id) {
            entry.replicated_to = None;
        }
    }
    if shutting {
        // Shards closing their sockets during a cluster drain is the
        // expected end of life, not a failover.
        return;
    }
    if !orphans.is_empty() {
        st.failover_total += 1;
    }
    for fwd in orphans {
        match fwd {
            Forward::Internal => {}
            Forward::Single {
                slot,
                token,
                ticket,
                rid,
                id,
                verb,
                key,
                line,
            } => {
                // Replay on the surviving owner: requests are idempotent
                // and content-addressed, so a duplicate execution is
                // merely a cache-warming no-op.
                match pick_shard(st, key) {
                    Some(new_idx) => forward_to(
                        st,
                        new_idx,
                        &line.clone(),
                        Forward::Single {
                            slot,
                            token,
                            ticket,
                            rid,
                            id,
                            verb,
                            key,
                            line,
                        },
                    ),
                    None => {
                        st.errors += 1;
                        let err = SvcError::new(
                            "no_shards",
                            "no backend shard is reachable; check ICED_SVC_SHARDS and shard health",
                        );
                        complete_client(
                            st,
                            slot,
                            token,
                            ticket,
                            render_err(id, Some(rid), Some(verb), &err),
                        );
                    }
                }
            }
            Forward::BatchPart { assembly, part } => {
                let Some(asm) = st.assemblies.get(&assembly) else {
                    continue;
                };
                let replay_key = asm.parts[part].first_key;
                let line = asm.parts[part].line.clone();
                match pick_shard(st, replay_key) {
                    Some(new_idx) => {
                        forward_to(st, new_idx, &line, Forward::BatchPart { assembly, part })
                    }
                    None => {
                        let asm = st.assemblies.remove(&assembly).expect("checked above");
                        st.errors += 1;
                        let err = SvcError::new(
                            "no_shards",
                            "no backend shard is reachable; check ICED_SVC_SHARDS and shard health",
                        );
                        complete_client(
                            st,
                            asm.slot,
                            asm.token,
                            asm.ticket,
                            render_err(asm.id, Some(asm.rid), Some(Verb::Batch), &err),
                        );
                    }
                }
            }
        }
    }
}

/// Replaces the shard's `"req":"cX-Y"` token with the router's own.
/// Everything else — including the `cached` flag and result bytes — is
/// passed through verbatim, which is what makes router responses
/// byte-identical to single-daemon responses after `req` normalization.
fn rewrite_req_token(line: &str, rid: RequestId) -> String {
    let Some(start) = line.find("\"req\":\"") else {
        return line.to_string();
    };
    let vstart = start + "\"req\":\"".len();
    let Some(vlen) = line[vstart..].find('"') else {
        return line.to_string();
    };
    let mut out = String::with_capacity(line.len() + 8);
    out.push_str(&line[..vstart]);
    out.push_str(&rid.token());
    out.push_str(&line[vstart + vlen..]);
    out
}

/// Extracts the rendered result object from a success envelope: the
/// bytes between `"result":` and the envelope's closing brace (`result`
/// is always the last envelope field).
fn extract_result_object(line: &str) -> Option<String> {
    let start = line.find(",\"result\":")? + ",\"result\":".len();
    if line.ends_with('}') && start < line.len() {
        Some(line[start..line.len() - 1].to_string())
    } else {
        None
    }
}

/// Recovers a structured error from a shard's error envelope (best
/// effort: unknown shapes degrade to `internal`).
fn extract_error(line: &str) -> SvcError {
    let code: &'static str = if line.contains("\"code\":\"queue_full\"") {
        "queue_full"
    } else if line.contains("\"code\":\"shutting_down\"") {
        "shutting_down"
    } else {
        "internal"
    };
    let message = line
        .find("\"message\":\"")
        .and_then(|i| {
            let s = i + "\"message\":\"".len();
            line[s..].find('"').map(|e| line[s..s + e].to_string())
        })
        .unwrap_or_else(|| "shard error".to_string());
    SvcError::new(code, message)
}

/// Reads the integer after `marker` (e.g. `"unique":`), stopping at the
/// first non-digit.
fn field_u64_after(line: &str, marker: &str) -> Option<u64> {
    let start = line.find(marker)? + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Splits the raw text of a batch request's top-level `items` array into
/// one string per element (objects, arrays, and scalars alike), so valid
/// slots forward byte-identically and the element count always matches
/// what `parse_request` saw. String-aware: an `"items":[` appearing
/// inside a string (say, an inline DFG) is never mistaken for the array.
fn split_items_raw(line: &str) -> Vec<String> {
    let Some(body_start) = find_items_array(line) else {
        return Vec::new();
    };
    let body = &line[body_start..];
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let mut elem_start: Option<usize> = None;
    for (i, ch) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        if in_str {
            match ch {
                '\\' => escaped = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match ch {
            '"' => {
                in_str = true;
                if elem_start.is_none() {
                    elem_start = Some(i);
                }
            }
            '{' | '[' => {
                if elem_start.is_none() {
                    elem_start = Some(i);
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            ']' => {
                if depth == 0 {
                    if let Some(s) = elem_start.take() {
                        items.push(body[s..i].trim_end().to_string());
                    }
                    break;
                }
                depth -= 1;
            }
            ',' if depth == 0 => {
                if let Some(s) = elem_start.take() {
                    items.push(body[s..i].trim_end().to_string());
                }
            }
            c if !c.is_whitespace() && elem_start.is_none() => {
                elem_start = Some(i);
            }
            _ => {}
        }
    }
    items
}

/// Finds the byte offset just past `[` of the request's top-level
/// `"items"` key, tracking strings and nesting so payload content cannot
/// spoof it.
fn find_items_array(line: &str) -> Option<usize> {
    let b = line.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    let mut str_start = 0usize;
    let mut last_string: Option<(usize, usize)> = None;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        if in_str {
            if escaped {
                escaped = false;
            } else if c == b'\\' {
                escaped = true;
            } else if c == b'"' {
                in_str = false;
                last_string = Some((str_start, i));
            }
        } else {
            match c {
                b'"' => {
                    in_str = true;
                    str_start = i + 1;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                b':' if depth == 1 => {
                    if let Some((s, e)) = last_string {
                        if &line[s..e] == "items" {
                            let mut j = i + 1;
                            while j < b.len() && b[j].is_ascii_whitespace() {
                                j += 1;
                            }
                            if j < b.len() && b[j] == b'[' {
                                return Some(j + 1);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    None
}

fn render_router_healthz(st: &Loop, shutting: bool) -> String {
    let shards_up = st.links.iter().filter(|l| l.up).count();
    Obj::new()
        .str("status", "ok")
        .str("role", "router")
        .str("state", if shutting { "draining" } else { "running" })
        .str("version", env!("CARGO_PKG_VERSION"))
        .u64("uptime_s", st.started.elapsed().as_secs())
        .u64("uptime_ms", st.started.elapsed().as_millis() as u64)
        .u64("shards", st.links.len() as u64)
        .u64("shards_up", shards_up as u64)
        .u64("conns_open", st.conns_open)
        .u64("max_conns", st.max_conns as u64)
        .u64("pipeline_cap", st.pipeline_cap as u64)
        .finish()
}

fn render_router_stats(st: &Loop) -> String {
    let mut shards = String::from("[");
    for (i, l) in st.links.iter().enumerate() {
        if i > 0 {
            shards.push(',');
        }
        shards.push_str(
            &Obj::new()
                .str("addr", &l.addr)
                .bool("up", l.up)
                .u64("forwarded", l.forwarded)
                .u64("in_flight", (l.inflight.len() + l.queued.len()) as u64)
                .finish(),
        );
    }
    shards.push(']');
    Obj::new()
        .str("role", "router")
        .u64("uptime_s", st.started.elapsed().as_secs())
        .u64("forwarded", st.forwarded_total)
        .u64("replicated", st.replicated_total)
        .u64("failovers", st.failover_total)
        .u64("errors", st.errors)
        .u64("hot_tracked", st.hot.len() as u64)
        .raw(
            "connections",
            &Obj::new()
                .u64("open", st.conns_open)
                .u64("total", st.conns_total)
                .u64("rejected", st.conns_rejected)
                .u64("max_conns", st.max_conns as u64)
                .u64("pipeline_cap", st.pipeline_cap as u64)
                .finish(),
        )
        .raw("shards", &shards)
        .finish()
}

fn render_router_prometheus(st: &Loop) -> String {
    let mut out = String::with_capacity(1024);
    let gauge = |name: &str, help: &str, value: u64, out: &mut String| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    out.push_str("# HELP iced_router_shard_up Per-shard liveness (1 = up).\n");
    out.push_str("# TYPE iced_router_shard_up gauge\n");
    for l in &st.links {
        out.push_str(&format!(
            "iced_router_shard_up{{shard=\"{}\"}} {}\n",
            l.addr,
            u64::from(l.up)
        ));
    }
    out.push_str("# HELP iced_router_forwarded_total Requests forwarded per shard.\n");
    out.push_str("# TYPE iced_router_forwarded_total counter\n");
    for l in &st.links {
        out.push_str(&format!(
            "iced_router_forwarded_total{{shard=\"{}\"}} {}\n",
            l.addr, l.forwarded
        ));
    }
    gauge(
        "iced_router_replicated_total",
        "Hot entries replicated to successor shards.",
        st.replicated_total,
        &mut out,
    );
    gauge(
        "iced_router_failover_total",
        "Shard deaths that triggered in-flight replay.",
        st.failover_total,
        &mut out,
    );
    gauge(
        "iced_router_errors_total",
        "Router-answered structured errors.",
        st.errors,
        &mut out,
    );
    gauge(
        "iced_router_conns_open",
        "Open client connections.",
        st.conns_open,
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_token_rewriting_touches_only_the_envelope_token() {
        let rid = RequestId { conn: 9, seq: 4 };
        let line = r#"{"id":5,"req":"c3-7","ok":true,"verb":"compile","cached":true,"result":{"note":"req stays \"c3-7\" in payload"}}"#;
        let out = rewrite_req_token(line, rid);
        assert_eq!(
            out,
            r#"{"id":5,"req":"c9-4","ok":true,"verb":"compile","cached":true,"result":{"note":"req stays \"c3-7\" in payload"}}"#
        );
        // No req field: passthrough.
        let plain = r#"{"id":5,"ok":true}"#;
        assert_eq!(rewrite_req_token(plain, rid), plain);
    }

    #[test]
    fn raw_item_splitting_matches_parsed_slot_counts() {
        let line = r#"{"id":9,"verb":"batch","items":[{"verb":"compile","kernel":"fir"},7,"x",{"verb":"simulate","kernel":"fir","iterations":10},[1,2],{"verb":"compile","dfg":"dfg t\nnode n0 add a\nhas ] and , and \" inside"}]}"#;
        let items = split_items_raw(line);
        assert_eq!(items.len(), 6, "{items:?}");
        assert_eq!(items[0], r#"{"verb":"compile","kernel":"fir"}"#);
        assert_eq!(items[1], "7");
        assert_eq!(items[2], "\"x\"");
        assert_eq!(items[4], "[1,2]");
        assert!(items[5].contains("has ] and , and"));
    }

    #[test]
    fn items_key_inside_a_string_is_not_the_array() {
        let line = r#"{"id":1,"verb":"batch","note":"\"items\":[fake]","items":[{"a":1}]}"#;
        let items = split_items_raw(line);
        assert_eq!(items, vec![r#"{"a":1}"#.to_string()]);
        assert!(split_items_raw(r#"{"verb":"healthz"}"#).is_empty());
        assert!(split_items_raw(r#"{"verb":"batch","items":[]}"#).is_empty());
    }

    #[test]
    fn result_object_extraction_takes_the_tail_field() {
        let line = r#"{"id":5,"req":"c1-1","ok":true,"verb":"compile","cached":false,"result":{"ii":2,"nested":{"a":[1,2]}}}"#;
        assert_eq!(
            extract_result_object(line).as_deref(),
            Some(r#"{"ii":2,"nested":{"a":[1,2]}}"#)
        );
        assert_eq!(extract_result_object(r#"{"ok":false}"#), None);
    }

    #[test]
    fn shard_error_recovery_preserves_the_retry_contract() {
        let e = extract_error(
            r#"{"id":1,"ok":false,"verb":"batch","error":{"code":"queue_full","message":"request queue at capacity (64); retry later","entity":"batch"}}"#,
        );
        assert_eq!(e.code, "queue_full");
        assert!(e.message.contains("capacity"));
        let e =
            extract_error(r#"{"id":1,"ok":false,"error":{"code":"shutting_down","message":"x"}}"#);
        assert_eq!(e.code, "shutting_down");
        let e = extract_error("garbage");
        assert_eq!(e.code, "internal");
    }

    #[test]
    fn unique_field_parsing_reads_the_envelope_header() {
        let line = r#"{"id":9,"ok":true,"verb":"batch","cached":false,"result":{"count":6,"unique":2,"deduped":4,"results":[]}}"#;
        assert_eq!(field_u64_after(line, "\"unique\":"), Some(2));
        assert_eq!(field_u64_after(line, "\"count\":"), Some(6));
        assert_eq!(field_u64_after(line, "\"missing\":"), None);
    }

    #[test]
    fn router_refuses_an_empty_shard_list() {
        match Router::start(RouterConfig {
            shards: Vec::new(),
            ..RouterConfig::default()
        }) {
            Ok(_) => panic!("router started with no shards"),
            Err(err) => assert_eq!(err.kind(), ErrorKind::InvalidInput),
        }
    }
}
