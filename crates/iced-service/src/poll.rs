//! A `libc`-free readiness primitive: `poll(2)` as a direct syscall, plus
//! a loopback wake token for cross-thread reactor wake-ups.
//!
//! The workspace is std-only and the container has no registry access, so
//! the reactor cannot lean on `libc`/`mio`. On Linux the `poll`/`ppoll`
//! syscalls are invoked directly via inline assembly behind exactly the
//! same safe signature std's own I/O plumbing uses internally; on other
//! targets a portable degradation reports every requested interest as
//! ready and paces with a short sleep — the sockets are nonblocking, so
//! spurious readiness costs a `WouldBlock`, never a hang.
//!
//! The wake token ([`wake_pair`]) is a connected loopback TCP pair: one
//! byte written to the send half makes the receive half readable, which
//! pops the reactor out of its `poll` wait. This is the classic
//! self-pipe trick, expressed with `std::net` so no raw `pipe(2)` fds
//! need managing.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;

/// Readable interest / readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable interest / readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (output only).
pub const POLLNVAL: i16 = 0x020;

/// One `struct pollfd`, ABI-compatible with the kernel's.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A descriptor with the given interest and no readiness yet.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the kernel report this fd readable (or errored/hung up, which
    /// a read will surface)?
    pub fn readable(self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Did the kernel report this fd writable (or errored, which a write
    /// will surface)?
    pub fn writable(self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn ret_to_result(ret: isize) -> std::io::Result<usize> {
    if ret >= 0 {
        return Ok(ret as usize);
    }
    let errno = -(ret as i32);
    // EINTR(4)/EAGAIN(11) are a zero-ready wait, not a failure: the
    // reactor re-polls on its next iteration anyway.
    if errno == 4 || errno == 11 {
        Ok(0)
    } else {
        Err(std::io::Error::from_raw_os_error(errno))
    }
}

/// Waits for readiness on `fds` for up to `timeout_ms` milliseconds
/// (negative = forever). Returns how many descriptors have non-zero
/// `revents`.
///
/// # Errors
///
/// Propagates the OS error for anything other than `EINTR`/`EAGAIN`,
/// which are reported as a zero-ready wait.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    const SYS_POLL: isize = 7;
    let ret: isize;
    // SAFETY: `poll(2)` reads `fds.len()` pollfd structs from
    // `fds.as_mut_ptr()` and writes only their `revents` fields; the
    // slice is live and exclusively borrowed for the duration. The
    // syscall clobbers rcx/r11 per the x86_64 ABI, declared below.
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") SYS_POLL => ret,
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") timeout_ms as isize,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret_to_result(ret)
}

/// Waits for readiness on `fds` for up to `timeout_ms` milliseconds
/// (negative = forever). aarch64 has no `poll` syscall, so this wraps
/// `ppoll` with an equivalent timespec.
///
/// # Errors
///
/// Propagates the OS error for anything other than `EINTR`/`EAGAIN`,
/// which are reported as a zero-ready wait.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    const SYS_PPOLL: isize = 73;
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    let ts = Timespec {
        sec: i64::from(timeout_ms.max(0)) / 1000,
        nsec: i64::from(timeout_ms.max(0)) % 1000 * 1_000_000,
    };
    let ts_ptr: *const Timespec = if timeout_ms < 0 {
        std::ptr::null()
    } else {
        &ts
    };
    let ret: isize;
    // SAFETY: as the x86_64 variant; `ppoll` additionally reads the
    // timespec (or ignores a null pointer) and takes a null signal mask
    // with its size, changing no signal state.
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") SYS_PPOLL,
            inlateout("x0") fds.as_mut_ptr() => ret,
            in("x1") fds.len(),
            in("x2") ts_ptr,
            in("x3") 0usize,
            in("x4") 8usize,
            options(nostack),
        );
    }
    ret_to_result(ret)
}

/// Portable degradation for targets without the direct syscall: report
/// every requested interest as ready and pace with a short sleep. The
/// callers' sockets are nonblocking, so a spurious "ready" costs one
/// `WouldBlock` — level-triggered semantics make this correct, just
/// slower than a real kernel wait.
///
/// # Errors
///
/// Never fails.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> std::io::Result<usize> {
    for fd in fds.iter_mut() {
        fd.revents = fd.events;
    }
    if timeout_ms != 0 {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    Ok(fds.len())
}

/// The send half of a wake pair; any thread may wake the reactor.
#[derive(Debug)]
pub struct Waker {
    tx: Mutex<TcpStream>,
}

impl Waker {
    /// Makes the paired receive stream readable. Best-effort: a full
    /// socket buffer means wakes are already pending, which is exactly
    /// as good as another byte.
    pub fn wake(&self) {
        let mut tx = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let _ = tx.write(&[1]);
    }
}

/// Drains all pending wake bytes so the receive half goes quiet until
/// the next [`Waker::wake`].
pub fn drain_wakes(rx: &mut TcpStream) {
    let mut buf = [0u8; 256];
    loop {
        match rx.read(&mut buf) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Builds a connected loopback pair: a shareable [`Waker`] and the
/// nonblocking receive stream the reactor polls with `POLLIN`.
///
/// # Errors
///
/// Propagates socket failures, including a stranger racing onto the
/// ephemeral listener (the accepted peer must be our own connect).
pub fn wake_pair() -> std::io::Result<(Waker, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let tx = TcpStream::connect(addr)?;
    let local = tx.local_addr()?;
    // Accept until we see our own connect; anything else on this
    // ephemeral port is a stray dialer and is dropped.
    for _ in 0..16 {
        let (rx, peer) = listener.accept()?;
        if peer == local {
            tx.set_nonblocking(true)?;
            tx.set_nodelay(true)?;
            rx.set_nonblocking(true)?;
            return Ok((Waker { tx: Mutex::new(tx) }, rx));
        }
    }
    Err(std::io::Error::other(
        "wake pair listener kept accepting strangers",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_pair_round_trips_readiness() {
        let (waker, mut rx) = wake_pair().expect("wake pair");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        // Nothing pending: a short wait reports nothing readable (the
        // portable fallback reports everything, which is also legal).
        let _ = poll(&mut fds, 10).expect("poll");

        waker.wake();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll after wake");
        assert!(n >= 1, "wake byte must make the rx readable");
        assert!(fds[0].readable(), "{fds:?}");

        drain_wakes(&mut rx);
        // Drained: reading again would block rather than yield bytes.
        let mut buf = [0u8; 8];
        match rx.read(&mut buf) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::WouldBlock),
            Ok(n) => panic!("expected drained socket, read {n} bytes"),
        }
    }

    #[test]
    fn repeated_wakes_coalesce_without_blocking() {
        let (waker, mut rx) = wake_pair().expect("wake pair");
        // Far more wakes than the socket buffer holds; none may block.
        for _ in 0..100_000 {
            waker.wake();
        }
        drain_wakes(&mut rx);
        waker.wake();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert!(n >= 1, "wakes still work after coalescing");
    }

    #[test]
    fn poll_times_out_on_a_quiet_socket() {
        let (_waker, rx) = wake_pair().expect("wake pair");
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let t0 = std::time::Instant::now();
        let n = poll(&mut fds, 50).expect("poll");
        // Linux: a real timed wait with zero ready fds. Fallback: instant
        // spurious readiness. Either way it must return promptly.
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(n, 0, "no readiness without a wake");
            assert!(t0.elapsed() >= std::time::Duration::from_millis(45));
        }
    }
}
