//! # iced-service — compile-and-simulate daemon
//!
//! A std-only TCP service wrapping the ICED toolchain: clients send
//! newline-delimited JSON requests (`compile`, `simulate`, `stream`, plus
//! the `healthz` / `metrics` / `shutdown` control verbs) and receive
//! newline-delimited JSON responses.
//!
//! The interesting machinery, each in its own module:
//!
//! * [`cache`] — content-addressed result cache keyed by canonical hashes
//!   of the request's semantic inputs, with an LRU byte budget
//!   (`ICED_SVC_CACHE_MB`) and optional disk spill (`ICED_SVC_CACHE_DIR`).
//!   Warm hits replay the cold request's rendered bytes verbatim.
//! * [`queue`] — bounded request queue; saturation produces a typed
//!   `queue_full` response instead of unbounded buffering.
//! * [`server`] — worker pool (`ICED_SVC_THREADS`), per-request mapper
//!   deadlines, batch dedup execution, and graceful shutdown that drains
//!   in-flight work before closing sockets.
//! * `reactor` (internal) — the single-threaded readiness loop that owns
//!   every connection: nonblocking accept, incremental newline framing,
//!   strict per-connection response ordering via tickets, interest-driven
//!   buffered writes, per-connection pipeline caps (`ICED_SVC_PIPELINE`),
//!   and a connection ceiling (`ICED_SVC_MAX_CONNS`).
//! * [`poll`] — `libc`-free `poll(2)` (direct syscall on Linux, portable
//!   degradation elsewhere) plus the loopback wake token the reactor
//!   sleeps on.
//! * [`chaos`] — deterministic fault injection (`ICED_SVC_CHAOS`): worker
//!   panics, torn response writes, spill-file corruption; the daemon must
//!   convert all of it into structured errors and keep serving.
//! * [`client`] — reconnecting protocol client with per-request timeouts
//!   and jittered-backoff retries on transient failures, shared by the
//!   load generator and the chaos suite.
//! * [`proto`] — verbs, typed request parsing, structured errors, and
//!   deterministic per-request ids (`c<conn>-<seq>`) echoed as `req`.
//! * [`json`] — defensive std-only JSON parsing and deterministic
//!   insertion-ordered serialization.
//! * [`router`] — the cluster layer: `iced-routerd` speaks the same wire
//!   protocol, rendezvous-hashes each request's cache key to one of N
//!   backend shards (`ICED_SVC_SHARDS`), forwards over pooled pipelined
//!   connections, splits batches per shard and reassembles them
//!   byte-identically, replicates hot entries to a successor shard
//!   (`ICED_SVC_REPLICATE_HOT`), and fails over when a shard dies.
//! * [`metrics`] — hit/miss/eviction counters, per-verb log2 latency
//!   histograms with p50/p95/p99 estimation, a sliding-window view
//!   (`stats` verb), in-flight gauges, and Prometheus text exposition.
//! * [`log`] — leveled JSONL event log (`ICED_SVC_LOG`,
//!   `ICED_SVC_LOG_LEVEL`) written off the request path by a dedicated
//!   thread; request lifecycle, chaos injections, and worker panics all
//!   land here keyed by request id.

// `deny`, not `forbid`: the poll module carries the only two `unsafe`
// blocks in the workspace (the raw `poll(2)`/`ppoll(2)` syscalls) behind
// an explicit allow; everything else stays unsafe-free at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod client;
pub mod json;
pub mod log;
pub mod metrics;
#[allow(unsafe_code)]
pub mod poll;
pub mod proto;
pub mod queue;
mod reactor;
pub mod router;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use chaos::ChaosInjector;
pub use client::{BatchItem, Client, ClientError};
pub use log::{EventLog, Level};
pub use proto::{Request, RequestId, SvcError, Verb};
pub use queue::{BoundedQueue, PushError};
pub use router::{Router, RouterConfig};
pub use server::{request_key, Server, ServiceConfig};
