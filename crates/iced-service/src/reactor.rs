//! The event loop: one thread, every socket.
//!
//! A single readiness loop over [`crate::poll`] owns the listener, the
//! wake token, and all client connections. Each connection is a slab slot
//! carrying read/write buffers and a response reorder window:
//!
//! * **Framing** is incremental — bytes accumulate in `read_buf` until a
//!   newline; a line past [`MAX_LINE_BYTES`] flips the connection into
//!   discard mode until the stream resyncs at the next newline, costing
//!   one `too_large` error instead of unbounded memory.
//! * **Ordering** is strict per connection: every parsed line (and every
//!   line-level rejection) takes a monotonic *ticket*; finished responses
//!   park in a `BTreeMap` keyed by ticket and are released only in ticket
//!   order, so pipelined clients read answers in exactly the order they
//!   asked, even though the worker pool finishes out of order.
//! * **Writes** never block the loop: rendered bytes append to
//!   `write_buf`, the socket is polled with `POLLOUT` only while bytes
//!   remain, and partial writes simply stay queued.
//! * **Batches** are planned here, before enqueueing: every slot's cache
//!   key is derived and deduped, so a batch of N identical specs reaches
//!   the worker pool as one unit of computation.
//!
//! Slots are generation-checked: a completion carries the connection
//! *token* (a globally unique accept ordinal) and is dropped if the slot
//! was reused by a newer connection in the meantime.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use crate::cache::CacheKey;
use crate::log::Level;
use crate::poll::{drain_wakes, poll, PollFd, POLLIN, POLLOUT};
use crate::proto::{
    parse_request, render_batch_result, render_err, render_ok, BatchElem, BatchSlot, Payload,
    Request, RequestId, SvcError, Verb, MAX_LINE_BYTES,
};
use crate::queue::PushError;
use crate::server::{
    begin_shutdown, elem_key, lock, log_control_finish, log_request_error, Job, JobKind, Shared,
    SlotPlan,
};

/// Poll timeout: a liveness backstop only — completions and shutdown
/// arrive via the wake token, socket traffic via readiness.
const POLL_TIMEOUT_MS: i32 = 500;

/// Read granularity, and (×[`READ_ROUNDS`]) the per-connection fairness
/// bound for one loop iteration.
const READ_CHUNK: usize = 64 * 1024;

/// Max chunks read from one connection per iteration; level-triggered
/// polling re-reports leftover readability next time around.
const READ_ROUNDS: usize = 4;

/// Compact the write buffer once this many bytes are consumed.
const WRITE_COMPACT_BYTES: usize = 64 * 1024;

/// How long shutdown waits for unflushable sockets before closing them.
const FLUSH_BUDGET_MS: u64 = 5000;

/// A finished response awaiting release in ticket order.
struct PendingLine {
    rid: RequestId,
    line: String,
}

/// One client connection in the slab.
struct Conn {
    stream: TcpStream,
    /// Globally unique accept ordinal; the `conn` half of request ids and
    /// the generation tag completions are checked against.
    token: u64,
    /// This connection's slab index (routing key carried by jobs).
    slot: usize,
    /// Requests read so far (the `seq` half of request ids).
    seq: u64,
    read_buf: Vec<u8>,
    /// An oversized line is being skipped until the next newline.
    discarding: bool,
    write_buf: Vec<u8>,
    /// Consumed prefix of `write_buf`.
    wpos: usize,
    /// Next ticket to assign to an incoming line.
    next_ticket: u64,
    /// Next ticket to release into the write buffer.
    next_release: u64,
    /// Finished-but-unreleased responses, keyed by ticket.
    pending: BTreeMap<u64, PendingLine>,
    /// Tickets assigned but not yet released — the pipeline depth.
    outstanding: usize,
    read_closed: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, token: u64, slot: usize) -> Conn {
        Conn {
            stream,
            token,
            slot,
            seq: 0,
            read_buf: Vec::new(),
            discarding: false,
            write_buf: Vec::new(),
            wpos: 0,
            next_ticket: 0,
            next_release: 0,
            pending: BTreeMap::new(),
            outstanding: 0,
            read_closed: false,
            dead: false,
        }
    }

    fn write_pending(&self) -> bool {
        self.wpos < self.write_buf.len()
    }

    /// Takes the next ticket and mints the request id for a new line.
    fn admit(&mut self) -> (RequestId, u64) {
        self.seq += 1;
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.outstanding += 1;
        (
            RequestId {
                conn: self.token,
                seq: self.seq,
            },
            ticket,
        )
    }

    /// Parks a locally produced response under its ticket.
    fn complete(&mut self, ticket: u64, rid: RequestId, line: String) {
        self.pending.insert(ticket, PendingLine { rid, line });
    }
}

/// Runs until shutdown has drained: accepts, frames, answers control
/// verbs, enqueues work, routes completions, flushes.
pub(crate) fn reactor_loop(shared: &Arc<Shared>, listener: TcpListener, mut wake_rx: TcpStream) {
    let mut listener = Some(listener);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_token = 0u64;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_slots: Vec<usize> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        let shutting = shared.shutting.load(Ordering::SeqCst);
        if shutting {
            // Dropping the listener refuses new connections immediately.
            listener = None;
        }

        fds.clear();
        fd_slots.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        if let Some(l) = &listener {
            fds.push(PollFd::new(l.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for (i, conn) in conns.iter().enumerate() {
            let Some(c) = conn else { continue };
            let mut interest = 0i16;
            if !c.read_closed && !c.dead {
                interest |= POLLIN;
            }
            if c.write_pending() && !c.dead {
                interest |= POLLOUT;
            }
            if interest != 0 {
                fds.push(PollFd::new(c.stream.as_raw_fd(), interest));
                fd_slots.push(i);
            }
        }
        let _ = poll(&mut fds, POLL_TIMEOUT_MS);
        if fds[0].readable() {
            drain_wakes(&mut wake_rx);
        }

        // Route finished work to its connection, generation-checked so a
        // completion for a closed connection's reused slot is dropped.
        let completed = std::mem::take(&mut *lock(&shared.completions));
        for done in completed {
            shared.jobs_outstanding.fetch_sub(1, Ordering::SeqCst);
            if let Some(c) = conns.get_mut(done.slot).and_then(Option::as_mut) {
                if c.token == done.token {
                    c.complete(done.ticket, done.rid, done.line);
                }
            }
        }

        if let Some(l) = listener.as_ref() {
            if fds[1].readable() {
                accept_all(shared, l, &mut conns, &mut free, &mut next_token);
            }
        }

        for (k, pfd) in fds.iter().enumerate().skip(base) {
            if !pfd.readable() {
                continue;
            }
            let slot = fd_slots[k - base];
            if let Some(c) = conns[slot].as_mut() {
                read_conn(shared, c, &mut scratch);
            }
        }

        // Release in-order responses and push bytes; cheap when idle.
        for c in conns.iter_mut().flatten() {
            if !c.dead {
                release_ready(shared, c);
                flush_conn(c);
            }
        }

        // Sweep: torn/errored sockets, and naturally finished ones (peer
        // closed its send half and every admitted request is answered).
        for (i, entry) in conns.iter_mut().enumerate() {
            let finished = match entry {
                Some(c) => c.dead || (c.read_closed && c.outstanding == 0 && !c.write_pending()),
                None => false,
            };
            if finished {
                if let Some(c) = entry.take() {
                    let _ = c.stream.shutdown(Shutdown::Both);
                    shared.metrics.conn_closed();
                }
                free.push(i);
            }
        }

        if shutting {
            let deadline = *drain_deadline.get_or_insert_with(|| {
                Instant::now() + std::time::Duration::from_millis(FLUSH_BUDGET_MS)
            });
            let work_done = shared.jobs_outstanding.load(Ordering::SeqCst) == 0
                && lock(&shared.completions).is_empty();
            let flushed = conns
                .iter()
                .flatten()
                .all(|c| c.pending.is_empty() && !c.write_pending());
            if work_done && (flushed || Instant::now() >= deadline) {
                break;
            }
        }
    }

    for c in conns.iter().flatten() {
        let _ = c.stream.shutdown(Shutdown::Both);
        shared.metrics.conn_closed();
    }
}

fn accept_all(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_token: &mut u64,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(true);
                // Responses are single short lines; Nagle would add a
                // delayed-ACK round trip to every warm hit.
                let _ = stream.set_nodelay(true);
                let open = shared.metrics.conns_open.load(Ordering::Relaxed) as usize;
                if open >= shared.max_conns {
                    refuse_connection(shared, stream);
                    continue;
                }
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                shared.metrics.conn_opened();
                // 1-based, in accept order — the `conn` half of every
                // request id on this connection.
                *next_token += 1;
                let slot = free.pop().unwrap_or(conns.len());
                let conn = Conn::new(stream, *next_token, slot);
                if slot == conns.len() {
                    conns.push(Some(conn));
                } else {
                    conns[slot] = Some(conn);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Answers an over-limit connect with one structured error line and
/// closes it. No ordinal is spent; the refusal is visible in metrics and
/// the event log.
fn refuse_connection(shared: &Shared, mut stream: TcpStream) {
    shared.metrics.conn_rejected();
    let err = SvcError::new(
        "too_many_connections",
        format!(
            "connection limit ({}) reached; retry later",
            shared.max_conns
        ),
    );
    shared.log.emit(Level::Warn, "conn_rejected", |o| {
        o.u64("max_conns", shared.max_conns as u64)
    });
    let mut line = render_err(0, None, None, &err);
    line.push('\n');
    // Best effort: the line is far smaller than a fresh socket's send
    // buffer, so a nonblocking write takes it whole.
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

fn read_conn(shared: &Arc<Shared>, c: &mut Conn, scratch: &mut [u8]) {
    for _ in 0..READ_ROUNDS {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.read_closed = true;
                break;
            }
            Ok(n) => {
                consume_bytes(shared, c, &scratch[..n]);
                if c.dead {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    if c.read_closed {
        // The peer half-closed; a final unterminated line still counts.
        if c.discarding {
            c.discarding = false;
            c.read_buf.clear();
            reject_unframed(shared, c, too_large());
        } else if !c.read_buf.is_empty() {
            let bytes = std::mem::take(&mut c.read_buf);
            let text = String::from_utf8_lossy(&bytes).into_owned();
            handle_line(shared, c, text.trim());
        }
    }
}

fn too_large() -> SvcError {
    SvcError::new("too_large", "request line exceeds 1 MiB")
}

/// Splits freshly read bytes into lines, honoring discard mode and the
/// line-length bound.
fn consume_bytes(shared: &Arc<Shared>, c: &mut Conn, mut bytes: &[u8]) {
    while !bytes.is_empty() {
        match bytes.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let (head, rest) = bytes.split_at(pos);
                bytes = &rest[1..];
                if c.discarding {
                    // Resynced: report the oversized line we skipped.
                    c.discarding = false;
                    c.read_buf.clear();
                    reject_unframed(shared, c, too_large());
                    continue;
                }
                if c.read_buf.len() + head.len() > MAX_LINE_BYTES {
                    c.read_buf.clear();
                    reject_unframed(shared, c, too_large());
                    continue;
                }
                let text = if c.read_buf.is_empty() {
                    String::from_utf8_lossy(head).into_owned()
                } else {
                    c.read_buf.extend_from_slice(head);
                    let buf = std::mem::take(&mut c.read_buf);
                    String::from_utf8_lossy(&buf).into_owned()
                };
                handle_line(shared, c, text.trim());
                if c.dead {
                    return;
                }
            }
            None => {
                if c.discarding {
                    return;
                }
                if c.read_buf.len() + bytes.len() > MAX_LINE_BYTES {
                    // Too big already; skip until the next newline and
                    // answer `too_large` then, keeping the stream framed.
                    c.read_buf.clear();
                    c.discarding = true;
                    return;
                }
                c.read_buf.extend_from_slice(bytes);
                return;
            }
        }
    }
}

/// Rejects a line that never parsed far enough to carry an id (oversized
/// or line-level garbage): consumes a ticket so ordering holds.
fn reject_unframed(shared: &Arc<Shared>, c: &mut Conn, err: SvcError) {
    let (rid, ticket) = c.admit();
    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
    log_request_error(shared, rid, None, &err);
    c.complete(ticket, rid, render_err(0, Some(rid), None, &err));
}

fn handle_line(shared: &Arc<Shared>, c: &mut Conn, text: &str) {
    if text.is_empty() {
        return;
    }
    let (rid, ticket) = c.admit();
    let t0 = Instant::now();
    if c.outstanding > shared.pipeline_cap {
        shared.metrics.pipeline_rejected_request();
        shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let err = SvcError::new(
            "too_many_requests",
            format!(
                "connection has {} unanswered requests (pipeline cap {}); read responses before sending more",
                c.outstanding - 1,
                shared.pipeline_cap
            ),
        );
        log_request_error(shared, rid, None, &err);
        c.complete(ticket, rid, render_err(0, Some(rid), None, &err));
        return;
    }
    let req = match parse_request(text) {
        Ok(r) => r,
        Err(e) => {
            shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
            log_request_error(shared, rid, e.verb, &e.error);
            c.complete(ticket, rid, render_err(e.id, Some(rid), e.verb, &e.error));
            return;
        }
    };
    shared.log.emit(Level::Debug, "request_start", |o| {
        o.str("req", &rid.token())
            .str("verb", req.verb.name())
            .u64("id", req.id)
    });
    match req.verb {
        Verb::Healthz => {
            let _flight = shared.metrics.flight(Verb::Healthz);
            let state = if shared.shutting.load(Ordering::SeqCst) {
                "draining"
            } else {
                "running"
            };
            let result = crate::json::Obj::new()
                .str("status", "ok")
                .str("role", "shard")
                .str("state", state)
                .str("version", env!("CARGO_PKG_VERSION"))
                .u64("uptime_s", shared.started.elapsed().as_secs())
                .u64("uptime_ms", shared.started.elapsed().as_millis() as u64)
                .u64("threads", shared.threads as u64)
                .u64("queue_cap", shared.queue_cap as u64)
                .u64("queue_depth", shared.queue.len() as u64)
                .u64("in_flight", shared.in_flight.load(Ordering::Relaxed) as u64)
                .bool("chaos_armed", shared.chaos.is_some())
                .u64(
                    "conns_open",
                    shared.metrics.conns_open.load(Ordering::Relaxed),
                )
                .u64("max_conns", shared.max_conns as u64)
                .u64("pipeline_cap", shared.pipeline_cap as u64)
                .finish();
            shared.metrics.observe(Verb::Healthz, t0.elapsed());
            log_control_finish(shared, rid, Verb::Healthz, t0);
            c.complete(
                ticket,
                rid,
                render_ok(req.id, Some(rid), Verb::Healthz, false, &result),
            );
        }
        Verb::Metrics => {
            let _flight = shared.metrics.flight(Verb::Metrics);
            let result = shared.metrics.render(
                shared.queue.len(),
                shared.cache.bytes(),
                shared.cache.entries(),
                shared.log.dropped(),
            );
            shared.metrics.observe(Verb::Metrics, t0.elapsed());
            log_control_finish(shared, rid, Verb::Metrics, t0);
            c.complete(
                ticket,
                rid,
                render_ok(req.id, Some(rid), Verb::Metrics, false, &result),
            );
        }
        Verb::Stats => {
            let _flight = shared.metrics.flight(Verb::Stats);
            let result = match req.payload {
                Payload::Stats { prometheus: true } => {
                    let body = shared.metrics.render_prometheus(
                        shared.queue.len(),
                        shared.cache.bytes(),
                        shared.cache.entries(),
                        shared.log.dropped(),
                    );
                    crate::json::Obj::new()
                        .str("format", "prometheus")
                        .str("body", &body)
                        .finish()
                }
                _ => shared.metrics.render_stats(),
            };
            shared.metrics.observe(Verb::Stats, t0.elapsed());
            log_control_finish(shared, rid, Verb::Stats, t0);
            c.complete(
                ticket,
                rid,
                render_ok(req.id, Some(rid), Verb::Stats, false, &result),
            );
        }
        Verb::Shutdown => {
            let _flight = shared.metrics.flight(Verb::Shutdown);
            begin_shutdown(shared);
            let result = crate::json::Obj::new()
                .str("state", "draining")
                .u64("queued", shared.queue.len() as u64)
                .u64("in_flight", shared.in_flight.load(Ordering::Relaxed) as u64)
                .finish();
            shared.metrics.observe(Verb::Shutdown, t0.elapsed());
            log_control_finish(shared, rid, Verb::Shutdown, t0);
            c.complete(
                ticket,
                rid,
                render_ok(req.id, Some(rid), Verb::Shutdown, false, &result),
            );
            // Keep reading: the client may pipeline further requests,
            // which now receive `shutting_down` errors.
        }
        Verb::CachePut => {
            let _flight = shared.metrics.flight(Verb::CachePut);
            let Payload::CachePut { key, value } = req.payload else {
                // parse_request only builds CachePut payloads for this verb.
                unreachable!("cache_put request with non-cache_put payload");
            };
            let result = match CacheKey::from_hex(&key) {
                Some(k) => {
                    shared.cache.put(k, value);
                    crate::json::Obj::new().bool("stored", true).finish()
                }
                None => crate::json::Obj::new().bool("stored", false).finish(),
            };
            shared.metrics.observe(Verb::CachePut, t0.elapsed());
            log_control_finish(shared, rid, Verb::CachePut, t0);
            c.complete(
                ticket,
                rid,
                render_ok(req.id, Some(rid), Verb::CachePut, false, &result),
            );
        }
        Verb::Compile | Verb::Simulate | Verb::Stream | Verb::Batch => {
            enqueue_work(shared, c, req, rid, ticket, t0);
        }
    }
}

fn enqueue_work(
    shared: &Arc<Shared>,
    c: &mut Conn,
    req: Request,
    rid: RequestId,
    ticket: u64,
    t0: Instant,
) {
    let id = req.id;
    let verb = req.verb;
    let kind = match req.payload {
        Payload::Batch(spec) => {
            if spec.items.is_empty() {
                // Nothing to compute; answer inline.
                shared.metrics.batch_observed(0, 0);
                shared.metrics.observe(Verb::Batch, t0.elapsed());
                log_control_finish(shared, rid, Verb::Batch, t0);
                let result = render_batch_result(0, 0, &[]);
                c.complete(
                    ticket,
                    rid,
                    render_ok(id, Some(rid), Verb::Batch, false, &result),
                );
                return;
            }
            let kind = plan_batch(shared, id, spec.items);
            if let JobKind::Batch { slots, unique, .. } = &kind {
                shared.log.emit(Level::Debug, "batch_plan", |o| {
                    o.str("req", &rid.token())
                        .u64("slots", slots.len() as u64)
                        .u64("unique", unique.len() as u64)
                });
            }
            kind
        }
        payload => JobKind::Single(Request { id, verb, payload }),
    };
    // Count before pushing: the worker may finish (and the reactor
    // observe the completion) before `try_push` even returns.
    shared.jobs_outstanding.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        kind,
        rid,
        slot: c.slot,
        token: c.token,
        ticket,
        accepted_at: t0,
    };
    match shared.queue.try_push(job) {
        Ok(depth) => shared.metrics.queue_depth(depth),
        Err(PushError::Full) => {
            shared.jobs_outstanding.fetch_sub(1, Ordering::SeqCst);
            shared.metrics.rejected_request();
            let err = SvcError::with_entity(
                "queue_full",
                format!(
                    "request queue at capacity ({}); retry later",
                    shared.queue.capacity()
                ),
                verb.name(),
            );
            log_request_error(shared, rid, Some(verb), &err);
            c.complete(ticket, rid, render_err(id, Some(rid), Some(verb), &err));
        }
        Err(PushError::Closed) => {
            shared.jobs_outstanding.fetch_sub(1, Ordering::SeqCst);
            let err = SvcError::new(
                "shutting_down",
                "server is draining and accepts no new work",
            );
            log_request_error(shared, rid, Some(verb), &err);
            c.complete(ticket, rid, render_err(id, Some(rid), Some(verb), &err));
        }
    }
}

/// Dedupes a batch's slots by cache key: identical specs collapse to one
/// unique element computed once, every slot keeping a pointer to it.
fn plan_batch(shared: &Shared, id: u64, items: Vec<BatchSlot>) -> JobKind {
    let cfg = shared.config.canonical_hash();
    let mut index: HashMap<CacheKey, usize> = HashMap::new();
    let mut unique: Vec<(CacheKey, BatchElem)> = Vec::new();
    let mut slots: Vec<SlotPlan> = Vec::with_capacity(items.len());
    for item in items {
        match item {
            BatchSlot::Elem(elem) => {
                let key = elem_key(cfg, &elem);
                let idx = *index.entry(key).or_insert_with(|| {
                    unique.push((key, elem));
                    unique.len() - 1
                });
                slots.push(SlotPlan::Unique(idx));
            }
            BatchSlot::Invalid { verb, error } => slots.push(SlotPlan::Invalid(verb, error)),
        }
    }
    JobKind::Batch { id, slots, unique }
}

/// Releases parked responses in strict ticket order into the write
/// buffer, rolling the chaos write-drop site once per released line.
fn release_ready(shared: &Shared, c: &mut Conn) {
    while let Some(entry) = c.pending.remove(&c.next_release) {
        c.next_release += 1;
        c.outstanding -= 1;
        if let Some(chaos) = &shared.chaos {
            if chaos.drop_write() {
                // Tear the response — half the bytes, no newline — then
                // drop the socket hard, as a dying peer or failing NIC
                // would. The connection is lost; the daemon must not be.
                shared.metrics.chaos_fault();
                iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_drops", 1);
                shared.log.emit(Level::Warn, "chaos_drop", |o| {
                    o.str("req", &entry.rid.token())
                        .u64("bytes_torn", (entry.line.len() / 2) as u64)
                });
                c.write_buf
                    .extend_from_slice(&entry.line.as_bytes()[..entry.line.len() / 2]);
                flush_conn(c);
                let _ = c.stream.shutdown(Shutdown::Both);
                c.dead = true;
                return;
            }
        }
        c.write_buf.extend_from_slice(entry.line.as_bytes());
        c.write_buf.push(b'\n');
    }
}

/// Pushes buffered bytes without blocking; whatever the socket refuses
/// stays queued under `POLLOUT` interest.
fn flush_conn(c: &mut Conn) {
    while c.wpos < c.write_buf.len() {
        match c.stream.write(&c.write_buf[c.wpos..]) {
            Ok(0) => {
                c.dead = true;
                return;
            }
            Ok(n) => c.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
    if c.wpos == c.write_buf.len() {
        c.write_buf.clear();
        c.wpos = 0;
    } else if c.wpos > WRITE_COMPACT_BYTES {
        c.write_buf.drain(..c.wpos);
        c.wpos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Framing logic exercised directly on a `Conn` backed by a loopback
    /// socket nobody reads from the kernel side.
    fn test_conn() -> (Conn, TcpListener) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking");
        (Conn::new(stream, 1, 0), listener)
    }

    fn test_shared() -> Arc<Shared> {
        crate::server::test_shared()
    }

    #[test]
    fn incremental_framing_reassembles_split_lines() {
        let shared = test_shared();
        let (mut c, _l) = test_conn();
        consume_bytes(&shared, &mut c, b"{\"verb\":\"heal");
        assert_eq!(c.pending.len(), 0, "half a line is not a request");
        consume_bytes(&shared, &mut c, b"thz\"}\n{\"verb\":\"healthz\"}\n");
        assert_eq!(c.pending.len(), 2, "both lines parsed once completed");
        assert_eq!(c.seq, 2);
        // Released strictly in ticket order.
        release_ready(&shared, &mut c);
        let text = String::from_utf8_lossy(&c.write_buf).into_owned();
        assert_eq!(text.matches("\"req\":\"c1-1\"").count(), 1);
        assert_eq!(text.matches("\"req\":\"c1-2\"").count(), 1);
        assert!(
            text.find("c1-1").expect("first") < text.find("c1-2").expect("second"),
            "responses leave in request order"
        );
    }

    #[test]
    fn oversized_lines_discard_and_resync() {
        let shared = test_shared();
        let (mut c, _l) = test_conn();
        // Feed > MAX_LINE_BYTES without a newline: discard mode.
        let big = vec![b'x'; MAX_LINE_BYTES + 10];
        consume_bytes(&shared, &mut c, &big);
        assert!(c.discarding);
        assert!(c.read_buf.is_empty(), "discarded bytes are not buffered");
        // Resync at the newline → one too_large error, then a clean parse.
        consume_bytes(&shared, &mut c, b"tail\n{\"verb\":\"healthz\"}\n");
        assert!(!c.discarding);
        assert_eq!(c.pending.len(), 2);
        release_ready(&shared, &mut c);
        let text = String::from_utf8_lossy(&c.write_buf).into_owned();
        assert!(text.contains("too_large"), "{text}");
        assert!(text.contains("\"result\""), "healthz after resync: {text}");
    }

    #[test]
    fn eof_flushes_an_unterminated_final_line() {
        let shared = test_shared();
        let (mut c, _l) = test_conn();
        consume_bytes(&shared, &mut c, b"{\"verb\":\"healthz\"}");
        assert_eq!(c.pending.len(), 0);
        c.read_closed = true;
        // What read_conn does at EOF:
        let bytes = std::mem::take(&mut c.read_buf);
        let text = String::from_utf8_lossy(&bytes).into_owned();
        handle_line(&shared, &mut c, text.trim());
        assert_eq!(c.pending.len(), 1, "final line processed at EOF");
    }

    #[test]
    fn pipeline_cap_rejects_excess_unanswered_requests() {
        let shared = test_shared();
        let (mut c, _l) = test_conn();
        let cap = shared.pipeline_cap;
        for _ in 0..cap + 3 {
            consume_bytes(&shared, &mut c, b"{\"verb\":\"healthz\"}\n");
        }
        // Control verbs complete inline but stay parked until released,
        // so `outstanding` models exactly what a non-reading client owes.
        assert_eq!(c.pending.len(), cap + 3);
        let rejected = c
            .pending
            .values()
            .filter(|p| p.line.contains("too_many_requests"))
            .count();
        assert_eq!(rejected, 3, "requests past the cap answer with the limit");
        release_ready(&shared, &mut c);
        assert_eq!(c.outstanding, 0);
    }
}
