//! Service-side observability: lock-free counters and per-verb latency
//! histograms, mirrored into `iced-trace` so the `metrics` verb and a
//! Chrome-trace export tell the same story.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use iced::trace::Phase;

use crate::json::Obj;
use crate::proto::Verb;

/// Number of log2 latency buckets. Bucket `i` counts requests whose
/// latency was in `[2^i, 2^(i+1))` microseconds; the last bucket absorbs
/// everything slower (~ 9 minutes and up).
pub const LATENCY_BUCKETS: usize = 30;

/// One verb's latency histogram.
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self) -> String {
        let count = self.count.load(Ordering::Relaxed);
        let total = self.total_us.load(Ordering::Relaxed);
        let mean = if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        };
        let mut buckets = String::from("[");
        // Trailing all-zero buckets are trimmed so the payload stays small.
        let last = (0..LATENCY_BUCKETS)
            .rev()
            .find(|&i| self.buckets[i].load(Ordering::Relaxed) != 0);
        if let Some(last) = last {
            for i in 0..=last {
                if i > 0 {
                    buckets.push(',');
                }
                buckets.push_str(&self.buckets[i].load(Ordering::Relaxed).to_string());
            }
        }
        buckets.push(']');
        Obj::new()
            .u64("count", count)
            .u64("total_us", total)
            .f64("mean_us", mean)
            .u64("max_us", self.max_us.load(Ordering::Relaxed))
            .raw("log2_us_buckets", &buckets)
            .finish()
    }
}

/// All service metrics. One instance per server, shared by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Cache hits across all cacheable verbs.
    pub cache_hits: AtomicU64,
    /// Cache misses (the request was computed).
    pub cache_misses: AtomicU64,
    /// Entries evicted to respect the byte budget.
    pub cache_evictions: AtomicU64,
    /// Requests rejected with `queue_full`.
    pub rejected: AtomicU64,
    /// Requests that returned a structured error.
    pub errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Faults injected by the chaos layer (0 unless `ICED_SVC_CHAOS`).
    pub chaos_faults: AtomicU64,
    /// High-water mark of the request queue depth.
    pub queue_peak: AtomicU64,
    latency: [Histogram; Verb::ALL.len()],
}

impl Metrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records a completed request for `verb`, mirroring into iced-trace.
    pub fn observe(&self, verb: Verb, latency: Duration) {
        self.latency[verb as usize].record(latency);
        iced::trace::counter(Phase::Service, &format!("svc_{}_requests", verb.name()), 1);
    }

    /// Records a cache hit or miss, mirroring into iced-trace.
    pub fn cache_event(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_hits", 1);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_misses", 1);
        }
    }

    /// Records `n` evictions.
    pub fn evicted(&self, n: u64) {
        if n > 0 {
            self.cache_evictions.fetch_add(n, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_evictions", n);
        }
    }

    /// Records a backpressure rejection.
    pub fn rejected_request(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        iced::trace::counter(Phase::Service, "svc_queue_full", 1);
    }

    /// Records one injected chaos fault (any site).
    pub fn chaos_fault(&self) {
        self.chaos_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Tracks the queue high-water mark.
    pub fn queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Per-verb request count (for tests and health summaries).
    pub fn requests(&self, verb: Verb) -> u64 {
        self.latency[verb as usize].count()
    }

    /// Renders the `metrics` result object. Not cached, so field content
    /// may differ between calls; field *order* is still deterministic.
    pub fn render(&self, queue_depth: usize, cache_bytes: u64, cache_entries: usize) -> String {
        let mut verbs = Obj::new();
        for v in Verb::ALL {
            verbs = verbs.raw(v.name(), &self.latency[v as usize].render());
        }
        Obj::new()
            .u64("cache_hits", self.cache_hits.load(Ordering::Relaxed))
            .u64("cache_misses", self.cache_misses.load(Ordering::Relaxed))
            .u64(
                "cache_evictions",
                self.cache_evictions.load(Ordering::Relaxed),
            )
            .u64("cache_bytes", cache_bytes)
            .u64("cache_entries", cache_entries as u64)
            .u64("queue_depth", queue_depth as u64)
            .u64("queue_peak", self.queue_peak.load(Ordering::Relaxed))
            .u64("rejected", self.rejected.load(Ordering::Relaxed))
            .u64("errors", self.errors.load(Ordering::Relaxed))
            .u64("connections", self.connections.load(Ordering::Relaxed))
            .u64("chaos_faults", self.chaos_faults.load(Ordering::Relaxed))
            .raw("latency", &verbs.finish())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = Histogram::default();
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(3)); // bucket 1
        h.record(Duration::from_micros(1024)); // bucket 10
        assert_eq!(h.count(), 3);
        let s = h.render();
        assert!(s.contains("\"count\":3"), "{s}");
        assert!(
            s.contains("\"log2_us_buckets\":[1,1,0,0,0,0,0,0,0,0,1]"),
            "{s}"
        );
    }

    #[test]
    fn zero_duration_lands_in_first_bucket() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert!(h.render().contains("[1]"));
    }

    #[test]
    fn metrics_render_is_complete_and_ordered() {
        let m = Metrics::new();
        m.observe(Verb::Compile, Duration::from_micros(10));
        m.cache_event(false);
        m.cache_event(true);
        m.evicted(2);
        let s = m.render(3, 4096, 5);
        let hits = s.find("\"cache_hits\":1").expect("hits");
        let misses = s.find("\"cache_misses\":1").expect("misses");
        assert!(hits < misses, "field order must be deterministic: {s}");
        assert!(s.contains("\"cache_evictions\":2"), "{s}");
        assert!(s.contains("\"queue_depth\":3"), "{s}");
        assert!(s.contains("\"compile\":{\"count\":1"), "{s}");
    }
}
