//! Service-side observability: lock-free counters, per-verb latency
//! histograms with quantile estimation, a sliding-window view, and
//! Prometheus-style text exposition — mirrored into `iced-trace` so the
//! `metrics`/`stats` verbs and a Chrome-trace export tell the same story.
//!
//! Two time horizons are reported:
//!
//! * **Lifetime** — the atomic [`Histogram`]s, never reset.
//! * **Window** — a ring of [`WINDOW_SLOTS`] epoch sub-histograms, each
//!   covering [`EPOCH_SECONDS`]; a slot is zeroed when its epoch comes
//!   round again, so the ring always holds the last ~60 s of samples.
//!
//! Quantiles (p50/p95/p99) are estimated from the log2 buckets by linear
//! interpolation inside the covering bucket, capped at the observed
//! maximum — cheap, deterministic, and monotone in `q`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use iced::trace::Phase;

use crate::json::Obj;
use crate::proto::Verb;

/// Number of log2 latency buckets. Bucket `i` counts requests whose
/// latency was in `[2^i, 2^(i+1))` microseconds; the last bucket absorbs
/// everything slower (~ 9 minutes and up).
pub const LATENCY_BUCKETS: usize = 30;

/// Seconds covered by one window slot.
pub const EPOCH_SECONDS: u64 = 10;

/// Number of slots in the sliding-window ring (6 × 10 s ≈ last minute).
pub const WINDOW_SLOTS: usize = 6;

/// Verbs whose work flows through the queue/worker pool and therefore
/// has a queue-wait/service-time split worth reporting.
const WORK_VERBS: [Verb; 4] = [Verb::Compile, Verb::Simulate, Verb::Stream, Verb::Batch];

/// The log2 bucket an observation of `us` microseconds falls in.
#[inline]
fn bucket_of(us: u64) -> usize {
    (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1)
}

/// One verb's latency histogram (lifetime, lock-free).
#[derive(Debug, Default)]
pub struct Histogram {
    count: AtomicU64,
    total_us: AtomicU64,
    max_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough copy of the current state (individual loads are
    /// relaxed; the histogram is only ever added to).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; LATENCY_BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_us: self.total_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn render(&self) -> String {
        let snap = self.snapshot();
        let mut buckets = String::from("[");
        // Trailing all-zero buckets are trimmed so the payload stays small.
        let last = (0..LATENCY_BUCKETS).rev().find(|&i| snap.buckets[i] != 0);
        if let Some(last) = last {
            for (i, b) in snap.buckets[..=last].iter().enumerate() {
                if i > 0 {
                    buckets.push(',');
                }
                buckets.push_str(&b.to_string());
            }
        }
        buckets.push(']');
        Obj::new()
            .u64("count", snap.count)
            .u64("total_us", snap.total_us)
            .f64("mean_us", snap.mean_us())
            .u64("max_us", snap.max_us)
            .u64("p50_us", snap.quantile(0.50))
            .u64("p95_us", snap.quantile(0.95))
            .u64("p99_us", snap.quantile(0.99))
            .raw("log2_us_buckets", &buckets)
            .finish()
    }
}

/// A point-in-time copy of one histogram, from which quantiles are
/// estimated. Also used for merged window views.
#[derive(Debug, Clone, Copy)]
pub struct HistSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations in microseconds.
    pub total_us: u64,
    /// Largest observation in microseconds.
    pub max_us: u64,
    /// Log2 bucket counts (see [`LATENCY_BUCKETS`]).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            count: 0,
            total_us: 0,
            max_us: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }

    /// Adds another snapshot into this one (used to merge window slots).
    pub fn merge(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.total_us += other.total_us;
        self.max_us = self.max_us.max(other.max_us);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Records one observation (non-atomic variant for window slots).
    fn add(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_of(us)] += 1;
    }

    /// Estimates the `q`-quantile (0 < q ≤ 1) in microseconds by linear
    /// interpolation inside the covering log2 bucket. The estimate is
    /// capped at the observed maximum, which makes it exact for the top
    /// of the distribution and keeps `quantile` monotone in `q`; an empty
    /// snapshot reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i == LATENCY_BUCKETS - 1 {
                    self.max_us.max(lo)
                } else {
                    1u64 << (i + 1)
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).min(self.max_us);
            }
            seen += c;
        }
        self.max_us
    }

    fn render_summary(&self) -> String {
        Obj::new()
            .u64("count", self.count)
            .f64("mean_us", self.mean_us())
            .u64("max_us", self.max_us)
            .u64("p50_us", self.quantile(0.50))
            .u64("p95_us", self.quantile(0.95))
            .u64("p99_us", self.quantile(0.99))
            .finish()
    }
}

/// One ring slot: per-verb sub-histograms valid for a single epoch.
#[derive(Debug, Default, Clone)]
struct Slot {
    /// The epoch these counts belong to; a slot whose epoch is stale is
    /// zeroed before reuse (and skipped when merging the window view).
    epoch: u64,
    hists: [HistSnapshot; Verb::ALL.len()],
}

/// Sliding-window latency view: a ring of per-epoch sub-histograms.
/// Epochs are supplied by the caller so tests can drive time explicitly.
#[derive(Debug, Default)]
struct Window {
    slots: Mutex<[Slot; WINDOW_SLOTS]>,
}

impl Window {
    /// Records one observation into the slot for `epoch`.
    fn record(&self, verb: Verb, us: u64, epoch: u64) {
        let mut slots = self.slots.lock().expect("window lock");
        let slot = &mut slots[(epoch as usize) % WINDOW_SLOTS];
        if slot.epoch != epoch {
            *slot = Slot {
                epoch,
                ..Slot::default()
            };
        }
        slot.hists[verb as usize].add(us);
    }

    /// Merged per-verb view of the slots still inside the window ending
    /// at `now_epoch` (inclusive).
    fn view(&self, now_epoch: u64) -> [HistSnapshot; Verb::ALL.len()] {
        let oldest = now_epoch.saturating_sub(WINDOW_SLOTS as u64 - 1);
        let slots = self.slots.lock().expect("window lock");
        let mut out: [HistSnapshot; Verb::ALL.len()] = Default::default();
        for slot in slots.iter() {
            if slot.epoch < oldest || slot.epoch > now_epoch {
                continue; // stale slot not yet reused
            }
            for (acc, h) in out.iter_mut().zip(slot.hists.iter()) {
                acc.merge(h);
            }
        }
        out
    }
}

/// Decrements the per-verb in-flight gauge on drop.
#[derive(Debug)]
pub struct InFlightGuard<'a> {
    metrics: &'a Metrics,
    verb: Verb,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.metrics.in_flight[self.verb as usize].fetch_sub(1, Ordering::Relaxed);
    }
}

/// All service metrics. One instance per server, shared by every worker.
#[derive(Debug)]
pub struct Metrics {
    /// Cache hits across all cacheable verbs.
    pub cache_hits: AtomicU64,
    /// Cache misses (the request was computed).
    pub cache_misses: AtomicU64,
    /// Entries evicted to respect the byte budget.
    pub cache_evictions: AtomicU64,
    /// Requests rejected with `queue_full`.
    pub rejected: AtomicU64,
    /// Requests that returned a structured error.
    pub errors: AtomicU64,
    /// Connections accepted over the server's lifetime.
    pub connections: AtomicU64,
    /// Faults injected by the chaos layer (0 unless `ICED_SVC_CHAOS`).
    pub chaos_faults: AtomicU64,
    /// High-water mark of the request queue depth.
    pub queue_peak: AtomicU64,
    /// Connections currently open (reactor-maintained gauge).
    pub conns_open: AtomicU64,
    /// High-water mark of concurrently open connections.
    pub conns_peak: AtomicU64,
    /// Connections refused at the `ICED_SVC_MAX_CONNS` cap.
    pub conns_rejected: AtomicU64,
    /// Requests rejected at the per-connection pipeline cap
    /// (`too_many_requests`).
    pub pipeline_rejected: AtomicU64,
    /// Total slots received across `batch` requests.
    pub batch_slots: AtomicU64,
    /// Unique cache keys actually executed across `batch` requests; the
    /// gap to [`Metrics::batch_slots`] is work the intra-batch dedup saved.
    pub batch_unique: AtomicU64,
    /// Configured connection cap, mirrored for exposition.
    max_conns: AtomicU64,
    /// Configured per-connection pipeline cap, mirrored for exposition.
    pipeline_cap: AtomicU64,
    started: Instant,
    latency: [Histogram; Verb::ALL.len()],
    /// Time between queueing and a worker picking the job up (work verbs).
    queue_wait: [Histogram; Verb::ALL.len()],
    /// Time the worker actually spent on the job (work verbs).
    service: [Histogram; Verb::ALL.len()],
    in_flight: [AtomicU64; Verb::ALL.len()],
    window: Window,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Creates a zeroed metrics block; the uptime clock starts now.
    pub fn new() -> Self {
        Metrics {
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            chaos_faults: AtomicU64::new(0),
            queue_peak: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            conns_peak: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            pipeline_rejected: AtomicU64::new(0),
            batch_slots: AtomicU64::new(0),
            batch_unique: AtomicU64::new(0),
            max_conns: AtomicU64::new(0),
            pipeline_cap: AtomicU64::new(0),
            started: Instant::now(),
            latency: Default::default(),
            queue_wait: Default::default(),
            service: Default::default(),
            in_flight: Default::default(),
            window: Window::default(),
        }
    }

    /// Seconds since the metrics block (the server) was created.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The current window epoch.
    fn epoch_now(&self) -> u64 {
        self.started.elapsed().as_secs() / EPOCH_SECONDS
    }

    /// Records a completed request for `verb` — lifetime histogram, the
    /// sliding window, and an iced-trace mirror counter.
    pub fn observe(&self, verb: Verb, latency: Duration) {
        self.latency[verb as usize].record(latency);
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.window.record(verb, us, self.epoch_now());
        iced::trace::counter(Phase::Service, &format!("svc_{}_requests", verb.name()), 1);
    }

    /// Records the queue-wait vs. service-time split for a worker-served
    /// request (total latency is observed separately via [`Metrics::observe`]).
    pub fn observe_split(&self, verb: Verb, queue_wait: Duration, service: Duration) {
        self.queue_wait[verb as usize].record(queue_wait);
        self.service[verb as usize].record(service);
    }

    /// Marks a request for `verb` in flight until the guard drops.
    pub fn flight(&self, verb: Verb) -> InFlightGuard<'_> {
        self.in_flight[verb as usize].fetch_add(1, Ordering::Relaxed);
        InFlightGuard {
            metrics: self,
            verb,
        }
    }

    /// Current in-flight count for `verb`.
    pub fn in_flight_count(&self, verb: Verb) -> u64 {
        self.in_flight[verb as usize].load(Ordering::Relaxed)
    }

    /// Records a cache hit or miss, mirroring into iced-trace.
    pub fn cache_event(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_hits", 1);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_misses", 1);
        }
    }

    /// Records `n` evictions.
    pub fn evicted(&self, n: u64) {
        if n > 0 {
            self.cache_evictions.fetch_add(n, Ordering::Relaxed);
            iced::trace::counter(Phase::Service, "svc_cache_evictions", n);
        }
    }

    /// Records a backpressure rejection.
    pub fn rejected_request(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        iced::trace::counter(Phase::Service, "svc_queue_full", 1);
    }

    /// Records one injected chaos fault (any site).
    pub fn chaos_fault(&self) {
        self.chaos_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Tracks the queue high-water mark.
    pub fn queue_depth(&self, depth: usize) {
        self.queue_peak.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records the configured connection/pipeline caps for exposition.
    pub fn set_limits(&self, pipeline_cap: usize, max_conns: usize) {
        self.pipeline_cap
            .store(pipeline_cap as u64, Ordering::Relaxed);
        self.max_conns.store(max_conns as u64, Ordering::Relaxed);
    }

    /// A connection was accepted: bumps the open gauge and its peak.
    pub fn conn_opened(&self) {
        let now = self.conns_open.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// A connection was closed or swept.
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// A connection was refused at the `ICED_SVC_MAX_CONNS` cap.
    pub fn conn_rejected(&self) {
        self.conns_rejected.fetch_add(1, Ordering::Relaxed);
        iced::trace::counter(Phase::Service, "svc_conns_rejected", 1);
    }

    /// A request was refused at the per-connection pipeline cap.
    pub fn pipeline_rejected_request(&self) {
        self.pipeline_rejected.fetch_add(1, Ordering::Relaxed);
        iced::trace::counter(Phase::Service, "svc_pipeline_rejected", 1);
    }

    /// Records one executed batch: total slots vs. unique keys computed.
    pub fn batch_observed(&self, slots: usize, unique: usize) {
        self.batch_slots.fetch_add(slots as u64, Ordering::Relaxed);
        self.batch_unique
            .fetch_add(unique as u64, Ordering::Relaxed);
        iced::trace::counter(Phase::Service, "svc_batch_slots", slots as u64);
        iced::trace::counter(
            Phase::Service,
            "svc_batch_deduped",
            slots.saturating_sub(unique) as u64,
        );
    }

    /// Per-verb request count (for tests and health summaries).
    pub fn requests(&self, verb: Verb) -> u64 {
        self.latency[verb as usize].count()
    }

    /// Lifetime latency snapshot for `verb` (for tests and exposition).
    pub fn lifetime(&self, verb: Verb) -> HistSnapshot {
        self.latency[verb as usize].snapshot()
    }

    /// Renders the `metrics` result object. Not cached, so field content
    /// may differ between calls; field *order* is still deterministic.
    pub fn render(
        &self,
        queue_depth: usize,
        cache_bytes: u64,
        cache_entries: usize,
        log_dropped: u64,
    ) -> String {
        let mut verbs = Obj::new();
        let mut flight = Obj::new();
        for v in Verb::ALL {
            verbs = verbs.raw(v.name(), &self.latency[v as usize].render());
            flight = flight.u64(v.name(), self.in_flight_count(v));
        }
        let mut wait = Obj::new();
        let mut svc = Obj::new();
        for v in WORK_VERBS {
            wait = wait.raw(v.name(), &self.queue_wait[v as usize].render());
            svc = svc.raw(v.name(), &self.service[v as usize].render());
        }
        Obj::new()
            .u64("uptime_s", self.uptime().as_secs())
            .u64("cache_hits", self.cache_hits.load(Ordering::Relaxed))
            .u64("cache_misses", self.cache_misses.load(Ordering::Relaxed))
            .u64(
                "cache_evictions",
                self.cache_evictions.load(Ordering::Relaxed),
            )
            .u64("cache_bytes", cache_bytes)
            .u64("cache_entries", cache_entries as u64)
            .u64("queue_depth", queue_depth as u64)
            .u64("queue_peak", self.queue_peak.load(Ordering::Relaxed))
            .u64("rejected", self.rejected.load(Ordering::Relaxed))
            .u64("errors", self.errors.load(Ordering::Relaxed))
            .u64("connections", self.connections.load(Ordering::Relaxed))
            .u64("conns_open", self.conns_open.load(Ordering::Relaxed))
            .u64("conns_peak", self.conns_peak.load(Ordering::Relaxed))
            .u64(
                "conns_rejected",
                self.conns_rejected.load(Ordering::Relaxed),
            )
            .u64("max_conns", self.max_conns.load(Ordering::Relaxed))
            .u64("pipeline_cap", self.pipeline_cap.load(Ordering::Relaxed))
            .u64(
                "pipeline_rejected",
                self.pipeline_rejected.load(Ordering::Relaxed),
            )
            .u64("batch_slots", self.batch_slots.load(Ordering::Relaxed))
            .u64("batch_unique", self.batch_unique.load(Ordering::Relaxed))
            .u64("chaos_faults", self.chaos_faults.load(Ordering::Relaxed))
            .u64("log_dropped", log_dropped)
            .raw("in_flight", &flight.finish())
            .raw("latency", &verbs.finish())
            .raw("queue_wait", &wait.finish())
            .raw("service_time", &svc.finish())
            .finish()
    }

    /// Renders the `stats` result object: lifetime and last-window
    /// quantile summaries per verb, plus the window geometry.
    pub fn render_stats(&self) -> String {
        let now = self.epoch_now();
        let window = self.window.view(now);
        let mut life = Obj::new();
        let mut win = Obj::new();
        for v in Verb::ALL {
            life = life.raw(
                v.name(),
                &self.latency[v as usize].snapshot().render_summary(),
            );
            win = win.raw(v.name(), &window[v as usize].render_summary());
        }
        let conns = Obj::new()
            .u64("open", self.conns_open.load(Ordering::Relaxed))
            .u64("peak", self.conns_peak.load(Ordering::Relaxed))
            .u64("rejected", self.conns_rejected.load(Ordering::Relaxed))
            .u64("max_conns", self.max_conns.load(Ordering::Relaxed))
            .u64("pipeline_cap", self.pipeline_cap.load(Ordering::Relaxed))
            .u64(
                "pipeline_rejected",
                self.pipeline_rejected.load(Ordering::Relaxed),
            )
            .finish();
        let batch = Obj::new()
            .u64("slots", self.batch_slots.load(Ordering::Relaxed))
            .u64("unique", self.batch_unique.load(Ordering::Relaxed))
            .u64(
                "deduped",
                self.batch_slots
                    .load(Ordering::Relaxed)
                    .saturating_sub(self.batch_unique.load(Ordering::Relaxed)),
            )
            .finish();
        Obj::new()
            .str("role", "shard")
            .u64("uptime_s", self.uptime().as_secs())
            .u64("window_seconds", EPOCH_SECONDS * WINDOW_SLOTS as u64)
            .u64("epoch_seconds", EPOCH_SECONDS)
            .raw("lifetime", &life.finish())
            .raw("window", &win.finish())
            .raw("connections", &conns)
            .raw("batch", &batch)
            .finish()
    }

    /// Renders every metric family as Prometheus text exposition.
    pub fn render_prometheus(
        &self,
        queue_depth: usize,
        cache_bytes: u64,
        cache_entries: usize,
        log_dropped: u64,
    ) -> String {
        let mut out = String::with_capacity(4096);
        let gauge = |name: &str, help: &str, value: u64, out: &mut String| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        out.push_str("# HELP iced_svc_requests_total Completed requests per verb.\n");
        out.push_str("# TYPE iced_svc_requests_total counter\n");
        for v in Verb::ALL {
            out.push_str(&format!(
                "iced_svc_requests_total{{verb=\"{}\"}} {}\n",
                v.name(),
                self.requests(v)
            ));
        }
        out.push_str("# HELP iced_svc_request_latency_us Request latency quantiles per verb.\n");
        out.push_str("# TYPE iced_svc_request_latency_us summary\n");
        for v in Verb::ALL {
            let snap = self.latency[v as usize].snapshot();
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "iced_svc_request_latency_us{{verb=\"{}\",quantile=\"{label}\"}} {}\n",
                    v.name(),
                    snap.quantile(q)
                ));
            }
            out.push_str(&format!(
                "iced_svc_request_latency_us_sum{{verb=\"{}\"}} {}\n",
                v.name(),
                snap.total_us
            ));
            out.push_str(&format!(
                "iced_svc_request_latency_us_count{{verb=\"{}\"}} {}\n",
                v.name(),
                snap.count
            ));
        }
        out.push_str(
            "# HELP iced_svc_queue_wait_us Queue wait before a worker picked the job up.\n",
        );
        out.push_str("# TYPE iced_svc_queue_wait_us summary\n");
        out.push_str("# HELP iced_svc_service_time_us Worker service time.\n");
        out.push_str("# TYPE iced_svc_service_time_us summary\n");
        for v in WORK_VERBS {
            for (family, hist) in [
                ("iced_svc_queue_wait_us", &self.queue_wait[v as usize]),
                ("iced_svc_service_time_us", &self.service[v as usize]),
            ] {
                let snap = hist.snapshot();
                for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "{family}{{verb=\"{}\",quantile=\"{label}\"}} {}\n",
                        v.name(),
                        snap.quantile(q)
                    ));
                }
                out.push_str(&format!(
                    "{family}_count{{verb=\"{}\"}} {}\n",
                    v.name(),
                    snap.count
                ));
            }
        }
        out.push_str("# HELP iced_svc_in_flight Requests currently being served per verb.\n");
        out.push_str("# TYPE iced_svc_in_flight gauge\n");
        for v in Verb::ALL {
            out.push_str(&format!(
                "iced_svc_in_flight{{verb=\"{}\"}} {}\n",
                v.name(),
                self.in_flight_count(v)
            ));
        }
        let counters: [(&str, &str, u64); 11] = [
            (
                "iced_svc_cache_hits_total",
                "Cache hits.",
                self.cache_hits.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_cache_misses_total",
                "Cache misses.",
                self.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_cache_evictions_total",
                "Cache evictions.",
                self.cache_evictions.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_rejected_total",
                "Requests rejected with queue_full.",
                self.rejected.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_errors_total",
                "Requests answered with a structured error.",
                self.errors.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_connections_total",
                "Connections accepted.",
                self.connections.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_chaos_faults_total",
                "Faults injected by the chaos layer.",
                self.chaos_faults.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_conns_rejected_total",
                "Connections refused at the ICED_SVC_MAX_CONNS cap.",
                self.conns_rejected.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_pipeline_rejected_total",
                "Requests refused at the per-connection pipeline cap.",
                self.pipeline_rejected.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_batch_slots_total",
                "Slots received across batch requests.",
                self.batch_slots.load(Ordering::Relaxed),
            ),
            (
                "iced_svc_batch_unique_total",
                "Unique cache keys executed across batch requests.",
                self.batch_unique.load(Ordering::Relaxed),
            ),
        ];
        for (name, help, value) in counters {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        gauge(
            "iced_svc_queue_depth",
            "Current request queue depth.",
            queue_depth as u64,
            &mut out,
        );
        gauge(
            "iced_svc_queue_peak",
            "Queue depth high-water mark.",
            self.queue_peak.load(Ordering::Relaxed),
            &mut out,
        );
        gauge(
            "iced_svc_cache_bytes",
            "Resident cache payload bytes.",
            cache_bytes,
            &mut out,
        );
        gauge(
            "iced_svc_cache_entries",
            "Resident cache entries.",
            cache_entries as u64,
            &mut out,
        );
        gauge(
            "iced_svc_log_dropped_total",
            "Event-log lines dropped under backpressure.",
            log_dropped,
            &mut out,
        );
        gauge(
            "iced_svc_conns_open",
            "Connections currently open.",
            self.conns_open.load(Ordering::Relaxed),
            &mut out,
        );
        gauge(
            "iced_svc_conns_peak",
            "High-water mark of concurrently open connections.",
            self.conns_peak.load(Ordering::Relaxed),
            &mut out,
        );
        gauge(
            "iced_svc_max_conns",
            "Configured connection cap.",
            self.max_conns.load(Ordering::Relaxed),
            &mut out,
        );
        gauge(
            "iced_svc_pipeline_cap",
            "Configured per-connection pipeline cap.",
            self.pipeline_cap.load(Ordering::Relaxed),
            &mut out,
        );
        gauge(
            "iced_svc_uptime_seconds",
            "Seconds since server start.",
            self.uptime().as_secs(),
            &mut out,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_microseconds() {
        let h = Histogram::default();
        h.record(Duration::from_micros(1)); // bucket 0
        h.record(Duration::from_micros(3)); // bucket 1
        h.record(Duration::from_micros(1024)); // bucket 10
        assert_eq!(h.count(), 3);
        let s = h.render();
        assert!(s.contains("\"count\":3"), "{s}");
        assert!(
            s.contains("\"log2_us_buckets\":[1,1,0,0,0,0,0,0,0,0,1]"),
            "{s}"
        );
    }

    #[test]
    fn exact_powers_of_two_land_in_their_own_bucket() {
        // 2^k is the *lower* edge of bucket k: [2^k, 2^(k+1)).
        for k in 0..LATENCY_BUCKETS - 1 {
            assert_eq!(bucket_of(1u64 << k), k, "2^{k}");
            assert_eq!(bucket_of((1u64 << (k + 1)) - 1), k, "2^{} - 1", k + 1);
        }
        // Beyond the table everything saturates into the last bucket.
        assert_eq!(bucket_of(1u64 << 29), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 35), LATENCY_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), LATENCY_BUCKETS - 1);
        // And the degenerate low end.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
    }

    #[test]
    fn zero_duration_lands_in_first_bucket() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert!(h.render().contains("[1]"));
    }

    #[test]
    fn quantiles_match_a_known_uniform_distribution() {
        let h = Histogram::default();
        // 100 samples at exactly 100 µs: every quantile is inside bucket 6
        // ([64, 128)) and capped at the true max.
        for _ in 0..100 {
            h.record(Duration::from_micros(100));
        }
        let snap = h.snapshot();
        for q in [0.1, 0.5, 0.95, 0.99, 1.0] {
            let est = snap.quantile(q);
            assert!((64..=100).contains(&est), "q={q} -> {est}");
        }
        assert_eq!(snap.quantile(1.0), 100, "p100 is the exact max");
    }

    #[test]
    fn quantiles_are_monotone_and_ordered_across_a_spread() {
        let h = Histogram::default();
        // 90 fast (≈10 µs), 9 medium (≈1 ms), 1 slow (≈100 ms).
        for _ in 0..90 {
            h.record(Duration::from_micros(10));
        }
        for _ in 0..9 {
            h.record(Duration::from_micros(1000));
        }
        h.record(Duration::from_micros(100_000));
        let snap = h.snapshot();
        let (p50, p95, p99) = (
            snap.quantile(0.50),
            snap.quantile(0.95),
            snap.quantile(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 < 100, "p50 should sit near the fast mode: {p50}");
        assert!(
            (512..=2048).contains(&p95),
            "p95 near the medium mode: {p95}"
        );
        assert!(p99 >= 1000, "{p99}");
        // Dense sweep: the estimator must never decrease as q grows.
        let mut last = 0;
        for i in 1..=100 {
            let est = snap.quantile(i as f64 / 100.0);
            assert!(est >= last, "q={i}% went backwards: {est} < {last}");
            last = est;
        }
    }

    #[test]
    fn saturating_last_bucket_reports_the_true_max() {
        let h = Histogram::default();
        // Both far beyond the bucket table; they share the last bucket.
        h.record(Duration::from_secs(700)); // 7e8 µs
        h.record(Duration::from_secs(1000)); // 1e9 µs
        let snap = h.snapshot();
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 2);
        assert_eq!(snap.quantile(1.0), 1_000_000_000);
        assert!(snap.quantile(0.99) <= 1_000_000_000);
        assert!(snap.quantile(0.5) >= 1 << 29, "inside the last bucket");
    }

    #[test]
    fn empty_snapshot_reports_zero_quantiles() {
        let snap = HistSnapshot::default();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean_us(), 0.0);
    }

    #[test]
    fn window_expires_old_epochs_and_merges_live_ones() {
        let w = Window::default();
        w.record(Verb::Compile, 100, 0);
        w.record(Verb::Compile, 200, 1);
        let view = w.view(1);
        assert_eq!(view[Verb::Compile as usize].count, 2, "both epochs live");
        // Move far ahead: epoch 0/1 slots are outside the window.
        let view = w.view(10);
        assert_eq!(view[Verb::Compile as usize].count, 0, "window expired");
        // A slot is zeroed when its epoch comes round again: epoch 12
        // reuses slot 0 (12 % 6), and the old epoch-0/1 samples are
        // outside the [7..=12] window.
        w.record(Verb::Compile, 300, 2 * WINDOW_SLOTS as u64);
        let view = w.view(2 * WINDOW_SLOTS as u64);
        assert_eq!(view[Verb::Compile as usize].count, 1);
        assert_eq!(view[Verb::Compile as usize].max_us, 300);
    }

    #[test]
    fn in_flight_gauge_tracks_guard_lifetime() {
        let m = Metrics::new();
        assert_eq!(m.in_flight_count(Verb::Compile), 0);
        {
            let _a = m.flight(Verb::Compile);
            let _b = m.flight(Verb::Compile);
            let _c = m.flight(Verb::Stream);
            assert_eq!(m.in_flight_count(Verb::Compile), 2);
            assert_eq!(m.in_flight_count(Verb::Stream), 1);
        }
        assert_eq!(m.in_flight_count(Verb::Compile), 0);
        assert_eq!(m.in_flight_count(Verb::Stream), 0);
    }

    #[test]
    fn metrics_render_is_complete_and_ordered() {
        let m = Metrics::new();
        m.observe(Verb::Compile, Duration::from_micros(10));
        m.observe_split(
            Verb::Compile,
            Duration::from_micros(2),
            Duration::from_micros(8),
        );
        m.cache_event(false);
        m.cache_event(true);
        m.evicted(2);
        let s = m.render(3, 4096, 5, 1);
        let hits = s.find("\"cache_hits\":1").expect("hits");
        let misses = s.find("\"cache_misses\":1").expect("misses");
        assert!(hits < misses, "field order must be deterministic: {s}");
        assert!(s.contains("\"cache_evictions\":2"), "{s}");
        assert!(s.contains("\"queue_depth\":3"), "{s}");
        assert!(s.contains("\"compile\":{\"count\":1"), "{s}");
        assert!(s.contains("\"log_dropped\":1"), "{s}");
        assert!(s.contains("\"in_flight\":"), "{s}");
        assert!(s.contains("\"queue_wait\":"), "{s}");
        assert!(s.contains("\"service_time\":"), "{s}");
        assert!(s.contains("\"p99_us\":"), "{s}");
    }

    #[test]
    fn connection_and_batch_gauges_are_exposed_everywhere() {
        let m = Metrics::new();
        m.set_limits(32, 4096);
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.conn_rejected();
        m.pipeline_rejected_request();
        m.batch_observed(10, 3);
        assert_eq!(m.conns_open.load(Ordering::Relaxed), 1);
        assert_eq!(m.conns_peak.load(Ordering::Relaxed), 2);

        let s = m.render(0, 0, 0, 0);
        for field in [
            "\"conns_open\":1",
            "\"conns_peak\":2",
            "\"conns_rejected\":1",
            "\"max_conns\":4096",
            "\"pipeline_cap\":32",
            "\"pipeline_rejected\":1",
            "\"batch_slots\":10",
            "\"batch_unique\":3",
        ] {
            assert!(s.contains(field), "missing {field} in {s}");
        }
        assert!(
            s.contains("\"batch\":{\"count\":0"),
            "batch in latency: {s}"
        );

        let s = m.render_stats();
        assert!(
            s.contains("\"connections\":{\"open\":1,\"peak\":2,\"rejected\":1"),
            "{s}"
        );
        assert!(
            s.contains("\"batch\":{\"slots\":10,\"unique\":3,\"deduped\":7}"),
            "{s}"
        );

        let text = m.render_prometheus(0, 0, 0, 0);
        for family in [
            "iced_svc_conns_open 1",
            "iced_svc_conns_peak 2",
            "iced_svc_conns_rejected_total 1",
            "iced_svc_pipeline_rejected_total 1",
            "iced_svc_batch_slots_total 10",
            "iced_svc_batch_unique_total 3",
            "iced_svc_max_conns 4096",
            "iced_svc_pipeline_cap 32",
            "iced_svc_queue_wait_us{verb=\"batch\",quantile=\"0.5\"}",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    #[test]
    fn stats_render_reports_lifetime_and_window() {
        let m = Metrics::new();
        for i in 0..20 {
            m.observe(Verb::Simulate, Duration::from_micros(50 + i));
        }
        let s = m.render_stats();
        assert!(s.contains("\"window_seconds\":60"), "{s}");
        assert!(s.contains("\"lifetime\":"), "{s}");
        assert!(s.contains("\"window\":"), "{s}");
        // Fresh server: the window still holds everything just observed.
        let life = m.lifetime(Verb::Simulate);
        assert_eq!(life.count, 20);
        assert!(life.quantile(0.5) <= life.quantile(0.99));
    }

    #[test]
    fn prometheus_exposition_contains_every_family() {
        let m = Metrics::new();
        m.observe(Verb::Compile, Duration::from_micros(123));
        m.cache_event(true);
        let text = m.render_prometheus(2, 100, 1, 0);
        for family in [
            "iced_svc_requests_total{verb=\"compile\"} 1",
            "iced_svc_request_latency_us{verb=\"compile\",quantile=\"0.99\"}",
            "iced_svc_queue_wait_us{verb=\"compile\",quantile=\"0.5\"}",
            "iced_svc_service_time_us{verb=\"simulate\",quantile=\"0.95\"}",
            "iced_svc_in_flight{verb=\"stream\"} 0",
            "iced_svc_cache_hits_total 1",
            "iced_svc_queue_depth 2",
            "iced_svc_uptime_seconds",
            "# TYPE iced_svc_requests_total counter",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
