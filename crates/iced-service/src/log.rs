//! Leveled JSONL event log for the daemon.
//!
//! Every line is one JSON object with a deterministic field prefix —
//! `t_us` (microseconds since log creation), `level`, `event` — followed
//! by event-specific fields supplied by the caller. Events of note:
//! request lifecycle (`request_start`/`request_finish`/`request_error`),
//! cache activity (`cache_evict`, `cache_spill`), chaos injections
//! (`chaos_panic`, `chaos_drop`, `chaos_corrupt`), `worker_panic` with
//! the captured payload and request id, and server lifecycle
//! (`server_start`/`server_stop`).
//!
//! Writing happens on a dedicated thread fed by a bounded channel so the
//! request path never blocks on disk: when the channel is full the line
//! is dropped and a counter incremented (reported by the `metrics` verb
//! as `log_dropped`). The log is configured by `ICED_SVC_LOG` (file
//! path) and `ICED_SVC_LOG_LEVEL` (`error`|`warn`|`info`|`debug`,
//! default `info`); without `ICED_SVC_LOG` the log is disarmed and every
//! emit site reduces to one atomic load.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::json::Obj;

/// Env var naming the event-log file; unset means logging is off.
pub const ENV_LOG: &str = "ICED_SVC_LOG";
/// Env var selecting the minimum level written (default `info`).
pub const ENV_LOG_LEVEL: &str = "ICED_SVC_LOG_LEVEL";

/// Lines buffered between emitters and the writer thread before drops.
const CHANNEL_CAP: usize = 4096;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable per-request failures (worker panics).
    Error = 0,
    /// Degraded-but-handled conditions (structured errors, chaos faults).
    Warn = 1,
    /// Normal request lifecycle.
    Info = 2,
    /// High-volume detail (request starts, per-request trace summaries).
    Debug = 3,
}

impl Level {
    /// Stable lowercase name used on the wire and in env config.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses an env-style level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// The daemon's event log. Cheap to share (`Arc`), cheap when disarmed.
#[derive(Debug)]
pub struct EventLog {
    armed: AtomicBool,
    level: AtomicU8,
    start: Instant,
    dropped: AtomicU64,
    tx: Mutex<Option<SyncSender<String>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl EventLog {
    /// A disarmed log: every emit is a single atomic load and a return.
    pub fn disabled() -> EventLog {
        EventLog {
            armed: AtomicBool::new(false),
            level: AtomicU8::new(Level::Info as u8),
            start: Instant::now(),
            dropped: AtomicU64::new(0),
            tx: Mutex::new(None),
            writer: Mutex::new(None),
        }
    }

    /// Opens (truncating) `path` and starts the writer thread. Events at
    /// or above `level` severity (numerically ≤) are written.
    pub fn to_path(path: &Path, level: Level) -> std::io::Result<EventLog> {
        let file = File::create(path)?;
        let (tx, rx) = sync_channel::<String>(CHANNEL_CAP);
        let writer = std::thread::Builder::new()
            .name("iced-svc-log".into())
            .spawn(move || {
                let mut out = BufWriter::new(file);
                while let Ok(line) = rx.recv() {
                    let _ = out.write_all(line.as_bytes());
                    let _ = out.write_all(b"\n");
                    // One flush per line keeps the tail visible to
                    // followers and crash-safe; event volume is bounded
                    // by request volume, not by hot-path work.
                    let _ = out.flush();
                }
                let _ = out.flush();
            })?;
        Ok(EventLog {
            armed: AtomicBool::new(true),
            level: AtomicU8::new(level as u8),
            start: Instant::now(),
            dropped: AtomicU64::new(0),
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// Builds a log from `ICED_SVC_LOG`/`ICED_SVC_LOG_LEVEL`; disarmed
    /// when the path var is unset or the file cannot be created.
    pub fn from_env() -> EventLog {
        let Ok(path) = std::env::var(ENV_LOG) else {
            return EventLog::disabled();
        };
        if path.is_empty() {
            return EventLog::disabled();
        }
        let level = std::env::var(ENV_LOG_LEVEL)
            .ok()
            .and_then(|s| Level::parse(&s))
            .unwrap_or(Level::Info);
        EventLog::to_path(Path::new(&path), level).unwrap_or_else(|_| EventLog::disabled())
    }

    /// Whether events at `level` would currently be written. Emit sites
    /// use this to skip building fields for filtered events.
    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        self.armed.load(Ordering::Relaxed) && level as u8 <= self.level.load(Ordering::Relaxed)
    }

    /// The configured minimum severity.
    pub fn level(&self) -> Level {
        Level::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Lines dropped because the writer channel was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Emits one event. `fields` receives an [`Obj`] already carrying the
    /// `t_us`/`level`/`event` prefix and appends event-specific fields.
    /// Never blocks: a full channel drops the line and counts it.
    pub fn emit(&self, level: Level, event: &str, fields: impl FnOnce(Obj) -> Obj) {
        if !self.enabled(level) {
            return;
        }
        let line = fields(
            Obj::new()
                .u64("t_us", self.start.elapsed().as_micros() as u64)
                .str("level", level.name())
                .str("event", event),
        )
        .finish();
        let tx = self.tx.lock().expect("log tx lock");
        match tx.as_ref().map(|tx| tx.try_send(line)) {
            Some(Ok(())) => {}
            Some(Err(TrySendError::Full(_))) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            // Writer gone (shutdown race): count it like a drop.
            Some(Err(TrySendError::Disconnected(_))) | None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drains and stops the writer thread; the log is disarmed afterwards.
    /// Safe to call more than once.
    pub fn shutdown(&self) {
        self.armed.store(false, Ordering::SeqCst);
        // Dropping the sender lets the writer's recv() loop end after the
        // queue drains.
        drop(self.tx.lock().expect("log tx lock").take());
        if let Some(h) = self.writer.lock().expect("log writer lock").take() {
            let _ = h.join();
        }
    }
}

impl Drop for EventLog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("iced-log-test-{}-{name}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        dir.join("events.jsonl")
    }

    #[test]
    fn writes_leveled_jsonl_with_deterministic_prefix() {
        let path = tmp("basic");
        let log = EventLog::to_path(&path, Level::Info).expect("create log");
        log.emit(Level::Info, "request_finish", |o| {
            o.str("req", "c1-1")
                .str("verb", "compile")
                .u64("total_us", 42)
        });
        log.emit(Level::Debug, "request_start", |o| o.str("req", "c1-2"));
        log.emit(Level::Error, "worker_panic", |o| o.str("payload", "boom"));
        log.shutdown();
        let body = std::fs::read_to_string(&path).expect("read log");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2, "debug filtered at info level: {body}");
        assert!(lines[0].starts_with("{\"t_us\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"level\":\"info\""), "{}", lines[0]);
        assert!(lines[0].contains("\"event\":\"request_finish\""));
        assert!(lines[0].contains("\"req\":\"c1-1\""));
        assert!(lines[1].contains("\"event\":\"worker_panic\""));
        // Every line parses as JSON.
        for l in lines {
            assert!(crate::json::parse(l).is_ok(), "not JSON: {l}");
        }
        assert_eq!(log.dropped(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_log_ignores_everything() {
        let log = EventLog::disabled();
        assert!(!log.enabled(Level::Error));
        log.emit(Level::Error, "worker_panic", |o| o);
        log.shutdown();
        assert_eq!(log.dropped(), 0, "filtered events are not drops");
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.name()), Some(l));
            assert_eq!(Level::parse(&l.name().to_uppercase()), Some(l));
        }
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("trace"), None);
        assert!(Level::Error < Level::Debug, "severity ordering");
    }

    #[test]
    fn shutdown_is_idempotent_and_later_emits_are_counted_as_drops() {
        let path = tmp("shutdown");
        let log = EventLog::to_path(&path, Level::Debug).expect("create log");
        log.emit(Level::Info, "server_start", |o| o);
        log.shutdown();
        log.shutdown();
        log.emit(Level::Info, "late", |o| o);
        assert_eq!(log.dropped(), 0, "disarmed emits return early");
        let body = std::fs::read_to_string(&path).expect("read log");
        assert_eq!(body.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
