//! The daemon: TCP acceptor, bounded request queue, worker pool,
//! content-addressed cache, and graceful shutdown.
//!
//! ## Threading model
//!
//! * One **acceptor** thread polls a nonblocking listener so it can
//!   observe the shutdown flag without a wake-up hack.
//! * One **reader** thread per connection parses newline-delimited JSON.
//!   Control verbs (`healthz`, `metrics`, `shutdown`) are answered inline
//!   — they stay responsive even when the work queue is saturated. Work
//!   verbs are pushed onto the bounded queue; a full queue yields an
//!   immediate typed `queue_full` response, never an unbounded buffer.
//! * `ICED_SVC_THREADS` **workers** drain the queue, consult the cache,
//!   compute on miss, and write responses through a per-connection mutex.
//!
//! ## Shutdown
//!
//! `shutdown` (or [`Server::shutdown`]) flips a flag and closes the
//! queue. The acceptor stops accepting; workers drain everything already
//! accepted and write those responses; the cache is flushed to the spill
//! directory; only then are client sockets closed. A request the server
//! accepted is therefore always answered.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iced::arch::CgraConfig;
use iced::kernels::pipelines::Pipeline;
use iced::kernels::workloads;
use iced::mapper::{map_with, power_gate_idle, relax_islands, relax_per_tile, Bitstream, MapError};
use iced::power::PowerModel;
use iced::sim::{run_engine, EnergyBreakdown, FabricStats};
use iced::streaming::{simulate, Partition};
use iced::Strategy;

use iced_hash::StableHasher;

use crate::cache::{CacheKey, ResultCache};
use crate::chaos::ChaosInjector;
use crate::log::{EventLog, Level};
use crate::metrics::Metrics;
use crate::proto::{
    parse_request, policy_name, render_err, render_ok, CompileSpec, Payload, Request, RequestId,
    StreamSpec, SvcError, Verb, MAX_LINE_BYTES,
};
use crate::queue::{BoundedQueue, PushError};

/// Server configuration, normally taken from the environment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`ICED_SVC_ADDR`, default `127.0.0.1:9090`; use port
    /// 0 for an ephemeral port).
    pub addr: String,
    /// Worker pool size (`ICED_SVC_THREADS`).
    pub threads: usize,
    /// Request queue capacity (`ICED_SVC_QUEUE`).
    pub queue_cap: usize,
    /// In-memory cache budget in MiB (`ICED_SVC_CACHE_MB`).
    pub cache_mb: u64,
    /// Optional disk-spill directory (`ICED_SVC_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Chaos-injection seed (`ICED_SVC_CHAOS`); `None` disables chaos.
    /// See [`crate::chaos`] for the fault sites and rates.
    pub chaos: Option<u64>,
    /// JSONL event-log path (`ICED_SVC_LOG`); `None` disables logging.
    pub log_path: Option<PathBuf>,
    /// Minimum event severity written (`ICED_SVC_LOG_LEVEL`).
    pub log_level: Level,
    /// Target CGRA configuration.
    pub cgra: CgraConfig,
}

fn env_usize(key: &str, default: usize, lo: usize, hi: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(default, |v| v.clamp(lo, hi))
}

impl ServiceConfig {
    /// Reads `ICED_SVC_*` from the environment, with sane defaults.
    pub fn from_env() -> Self {
        let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
        ServiceConfig {
            addr: std::env::var("ICED_SVC_ADDR").unwrap_or_else(|_| "127.0.0.1:9090".into()),
            threads: env_usize("ICED_SVC_THREADS", threads, 1, 64),
            queue_cap: env_usize("ICED_SVC_QUEUE", 64, 1, 65_536),
            cache_mb: env_usize("ICED_SVC_CACHE_MB", 64, 1, 16_384) as u64,
            cache_dir: std::env::var("ICED_SVC_CACHE_DIR").ok().map(PathBuf::from),
            chaos: ChaosInjector::seed_from_env(),
            log_path: std::env::var(crate::log::ENV_LOG)
                .ok()
                .filter(|p| !p.is_empty())
                .map(PathBuf::from),
            log_level: std::env::var(crate::log::ENV_LOG_LEVEL)
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info),
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            queue_cap: 64,
            cache_mb: 64,
            cache_dir: None,
            chaos: None,
            log_path: None,
            log_level: Level::Info,
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

/// One queued unit of work: a parsed request plus the connection to
/// answer on.
struct Job {
    req: Request,
    rid: RequestId,
    writer: Arc<Mutex<TcpStream>>,
    accepted_at: Instant,
}

/// State shared by the acceptor, readers, and workers.
struct Shared {
    config: CgraConfig,
    model: PowerModel,
    cache: ResultCache,
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    chaos: Option<ChaosInjector>,
    log: EventLog,
    shutting: AtomicBool,
    in_flight: AtomicUsize,
    started: Instant,
    threads: usize,
    queue_cap: usize,
    /// Connection ordinal source for deterministic request ids.
    conn_seq: AtomicU64,
    conns: Mutex<Vec<TcpStream>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: acceptor + worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let log = match &cfg.log_path {
            Some(p) => EventLog::to_path(p, cfg.log_level)?,
            None => EventLog::disabled(),
        };
        log.emit(Level::Info, "server_start", |o| {
            o.str("addr", &addr.to_string())
                .str("version", env!("CARGO_PKG_VERSION"))
                .u64("threads", cfg.threads.max(1) as u64)
                .u64("queue_cap", cfg.queue_cap as u64)
                .u64("cache_mb", cfg.cache_mb)
                .bool("chaos_armed", cfg.chaos.is_some())
        });
        let shared = Arc::new(Shared {
            config: cfg.cgra,
            model: PowerModel::asap7(),
            cache: ResultCache::new(cfg.cache_mb.saturating_mul(1 << 20), cfg.cache_dir),
            queue: BoundedQueue::new(cfg.queue_cap),
            metrics: Metrics::new(),
            chaos: cfg.chaos.map(ChaosInjector::new),
            log,
            shutting: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            started: Instant::now(),
            threads: cfg.threads.max(1),
            queue_cap: cfg.queue_cap,
            conn_seq: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("iced-svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("iced-svc-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn acceptor thread")
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers the same graceful shutdown as the `shutdown` verb.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until shutdown completes: acceptor stopped, queue drained,
    /// every in-flight response written, cache flushed, sockets closed.
    pub fn wait(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All accepted work is answered by now; persist warm state.
        let flushed = self.shared.cache.flush();
        if flushed > 0 {
            iced::trace::counter(
                iced::trace::Phase::Service,
                "svc_cache_spilled_entries",
                flushed as u64,
            );
            self.shared.log.emit(Level::Info, "cache_spill", |o| {
                o.u64("entries", flushed as u64)
            });
        }
        // Unblock and retire the per-connection readers.
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for c in conns {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        let readers = std::mem::take(&mut *lock(&self.shared.readers));
        for r in readers {
            let _ = r.join();
        }
        let shared = &self.shared;
        shared.log.emit(Level::Info, "server_stop", |o| {
            o.u64("uptime_s", shared.started.elapsed().as_secs())
                .u64("connections", shared.conn_seq.load(Ordering::SeqCst))
                .u64("log_dropped", shared.log.dropped())
        });
        shared.log.shutdown();
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn begin_shutdown(shared: &Shared) {
    if !shared.shutting.swap(true, Ordering::SeqCst) {
        shared.queue.close();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutting.load(Ordering::SeqCst) {
            return; // drops the listener: new connections are refused
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                // Responses are single short lines; Nagle would add a
                // delayed-ACK round trip to every warm hit.
                let _ = stream.set_nodelay(true);
                shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
                register_connection(shared, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn register_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(registered) = stream.try_clone() else {
        return;
    };
    lock(&shared.conns).push(registered);
    // 1-based, in accept order — the `conn` half of every request id on
    // this connection.
    let conn = shared.conn_seq.fetch_add(1, Ordering::SeqCst) + 1;
    let reader_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("iced-svc-conn".into())
        .spawn(move || reader_loop(&reader_shared, stream, conn));
    if let Ok(h) = handle {
        lock(&shared.readers).push(h);
    }
}

/// Logs a `request_error` event for an error envelope about to be written.
fn log_request_error(shared: &Shared, rid: RequestId, verb: Option<Verb>, err: &SvcError) {
    shared.log.emit(Level::Warn, "request_error", |mut o| {
        o = o.str("req", &rid.token());
        if let Some(v) = verb {
            o = o.str("verb", v.name());
        }
        o.str("code", err.code).str("message", &err.message)
    });
}

/// Logs a `request_finish` event for a successful control-verb response.
fn log_control_finish(shared: &Shared, rid: RequestId, verb: Verb, t0: Instant) {
    shared.log.emit(Level::Info, "request_finish", |o| {
        o.str("req", &rid.token())
            .str("verb", verb.name())
            .str("outcome", "ok")
            .u64("total_us", t0.elapsed().as_micros() as u64)
    });
}

fn reader_loop(shared: &Arc<Shared>, stream: TcpStream, conn: u64) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut seq = 0u64;
    loop {
        line.clear();
        match read_bounded_line(&mut reader, &mut line) {
            Ok(LineRead::Eof) => return,
            Ok(LineRead::TooLong) => {
                seq += 1;
                let rid = RequestId { conn, seq };
                let err = SvcError::new("too_large", "request line exceeds 1 MiB");
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                log_request_error(shared, rid, None, &err);
                if !write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_err(0, Some(rid), None, &err),
                ) {
                    return;
                }
                continue;
            }
            Ok(LineRead::Line) => {}
            Err(_) => return,
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        seq += 1;
        let rid = RequestId { conn, seq };
        let t0 = Instant::now();
        let req = match parse_request(text) {
            Ok(r) => r,
            Err(e) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                log_request_error(shared, rid, e.verb, &e.error);
                if !write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_err(e.id, Some(rid), e.verb, &e.error),
                ) {
                    return;
                }
                continue;
            }
        };
        shared.log.emit(Level::Debug, "request_start", |o| {
            o.str("req", &rid.token())
                .str("verb", req.verb.name())
                .u64("id", req.id)
        });
        match req.verb {
            Verb::Healthz => {
                let _flight = shared.metrics.flight(Verb::Healthz);
                let state = if shared.shutting.load(Ordering::SeqCst) {
                    "draining"
                } else {
                    "running"
                };
                let result = crate::json::Obj::new()
                    .str("status", "ok")
                    .str("state", state)
                    .str("version", env!("CARGO_PKG_VERSION"))
                    .u64("uptime_s", shared.started.elapsed().as_secs())
                    .u64("uptime_ms", shared.started.elapsed().as_millis() as u64)
                    .u64("threads", shared.threads as u64)
                    .u64("queue_cap", shared.queue_cap as u64)
                    .u64("queue_depth", shared.queue.len() as u64)
                    .u64("in_flight", shared.in_flight.load(Ordering::Relaxed) as u64)
                    .bool("chaos_armed", shared.chaos.is_some())
                    .finish();
                shared.metrics.observe(Verb::Healthz, t0.elapsed());
                log_control_finish(shared, rid, Verb::Healthz, t0);
                if !write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_ok(req.id, Some(rid), Verb::Healthz, false, &result),
                ) {
                    return;
                }
            }
            Verb::Metrics => {
                let _flight = shared.metrics.flight(Verb::Metrics);
                let result = shared.metrics.render(
                    shared.queue.len(),
                    shared.cache.bytes(),
                    shared.cache.entries(),
                    shared.log.dropped(),
                );
                shared.metrics.observe(Verb::Metrics, t0.elapsed());
                log_control_finish(shared, rid, Verb::Metrics, t0);
                if !write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_ok(req.id, Some(rid), Verb::Metrics, false, &result),
                ) {
                    return;
                }
            }
            Verb::Stats => {
                let _flight = shared.metrics.flight(Verb::Stats);
                let result = match req.payload {
                    Payload::Stats { prometheus: true } => {
                        let body = shared.metrics.render_prometheus(
                            shared.queue.len(),
                            shared.cache.bytes(),
                            shared.cache.entries(),
                            shared.log.dropped(),
                        );
                        crate::json::Obj::new()
                            .str("format", "prometheus")
                            .str("body", &body)
                            .finish()
                    }
                    _ => shared.metrics.render_stats(),
                };
                shared.metrics.observe(Verb::Stats, t0.elapsed());
                log_control_finish(shared, rid, Verb::Stats, t0);
                if !write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_ok(req.id, Some(rid), Verb::Stats, false, &result),
                ) {
                    return;
                }
            }
            Verb::Shutdown => {
                let _flight = shared.metrics.flight(Verb::Shutdown);
                begin_shutdown(shared);
                let result = crate::json::Obj::new()
                    .str("state", "draining")
                    .u64("queued", shared.queue.len() as u64)
                    .u64("in_flight", shared.in_flight.load(Ordering::Relaxed) as u64)
                    .finish();
                shared.metrics.observe(Verb::Shutdown, t0.elapsed());
                log_control_finish(shared, rid, Verb::Shutdown, t0);
                let _ = write_line(
                    shared,
                    &writer,
                    Some(rid),
                    &render_ok(req.id, Some(rid), Verb::Shutdown, false, &result),
                );
                // Keep reading: the client may pipeline further requests,
                // which now receive `shutting_down` errors.
            }
            Verb::Compile | Verb::Simulate | Verb::Stream => {
                let id = req.id;
                let verb = req.verb;
                let job = Job {
                    req,
                    rid,
                    writer: Arc::clone(&writer),
                    accepted_at: t0,
                };
                match shared.queue.try_push(job) {
                    Ok(depth) => shared.metrics.queue_depth(depth),
                    Err(PushError::Full) => {
                        shared.metrics.rejected_request();
                        let err = SvcError::with_entity(
                            "queue_full",
                            format!(
                                "request queue at capacity ({}); retry later",
                                shared.queue.capacity()
                            ),
                            verb.name(),
                        );
                        log_request_error(shared, rid, Some(verb), &err);
                        if !write_line(
                            shared,
                            &writer,
                            Some(rid),
                            &render_err(id, Some(rid), Some(verb), &err),
                        ) {
                            return;
                        }
                    }
                    Err(PushError::Closed) => {
                        let err = SvcError::new(
                            "shutting_down",
                            "server is draining and accepts no new work",
                        );
                        log_request_error(shared, rid, Some(verb), &err);
                        if !write_line(
                            shared,
                            &writer,
                            Some(rid),
                            &render_err(id, Some(rid), Some(verb), &err),
                        ) {
                            return;
                        }
                    }
                }
            }
        }
    }
}

/// Renders a panic payload for the error envelope and the event log.
/// `panic!` almost always carries a `String` or `&str`; anything else is
/// reported by type only.
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let verb = job.req.verb;
        let id = job.req.id;
        let rid = job.rid;
        let queue_wait = job.accepted_at.elapsed();
        let _flight = shared.metrics.flight(verb);
        // Everything the worker does for this request — including mapper
        // and simulator spans — is attributed to its request id.
        let _scope = iced::trace::request_scope(rid.as_u64());
        // At debug level, capture this request's own trace via a thread
        // overlay and log a summary; the global collector (if any) still
        // sees everything.
        let trace_rec = if shared.log.enabled(Level::Debug) {
            Some(Arc::new(iced::trace::RecordingCollector::new()))
        } else {
            None
        };
        let overlay = trace_rec
            .as_ref()
            .map(|r| iced::trace::overlay(Arc::clone(r) as Arc<dyn iced::trace::Collector>));
        let service_started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _span = iced::trace::span(
                iced::trace::Phase::Service,
                "svc_request",
                &[("verb", verb.name().into())],
            );
            if let Some(chaos) = &shared.chaos {
                if chaos.worker_panic() {
                    shared.metrics.chaos_fault();
                    iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_panics", 1);
                    shared.log.emit(Level::Warn, "chaos_panic", |o| {
                        o.str("req", &rid.token()).str("verb", verb.name())
                    });
                    panic!("chaos: injected worker panic");
                }
            }
            execute(shared, &job.req, rid)
        }));
        let service_time = service_started.elapsed();
        drop(overlay);
        if let Some(rec) = trace_rec {
            let records = rec.records();
            let spans = records
                .iter()
                .filter(|r| matches!(r, iced::trace::Record::SpanBegin { .. }))
                .count();
            shared.log.emit(Level::Debug, "request_trace", |o| {
                o.str("req", &rid.token())
                    .u64("trace_records", records.len() as u64)
                    .u64("trace_spans", spans as u64)
            });
        }
        let response = match outcome {
            Ok(Ok((result, cached))) => {
                shared.metrics.cache_event(cached);
                shared.log.emit(Level::Info, "request_finish", |o| {
                    o.str("req", &rid.token())
                        .str("verb", verb.name())
                        .str("outcome", if cached { "cached" } else { "ok" })
                        .u64("total_us", job.accepted_at.elapsed().as_micros() as u64)
                        .u64("queue_us", queue_wait.as_micros() as u64)
                        .u64("service_us", service_time.as_micros() as u64)
                });
                render_ok(id, Some(rid), verb, cached, &result)
            }
            Ok(Err(e)) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                log_request_error(shared, rid, Some(verb), &e);
                render_err(id, Some(rid), Some(verb), &e)
            }
            Err(p) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let payload = panic_payload(p.as_ref());
                shared.log.emit(Level::Error, "worker_panic", |o| {
                    o.str("req", &rid.token())
                        .str("verb", verb.name())
                        .str("payload", &payload)
                });
                let e = SvcError::with_entity(
                    "internal",
                    format!("request processing panicked: {payload}"),
                    rid.token(),
                );
                render_err(id, Some(rid), Some(verb), &e)
            }
        };
        // Metrics are recorded before the response is written, so a client
        // that reads its answer and immediately scrapes `metrics`/`stats`
        // always sees its own request counted.
        shared.metrics.observe(verb, job.accepted_at.elapsed());
        shared.metrics.observe_split(verb, queue_wait, service_time);
        let _ = write_line(shared, &job.writer, Some(rid), &response);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one work verb, consulting the cache. Returns the rendered result
/// JSON plus whether it came from the cache.
fn execute(
    shared: &Shared,
    req: &Request,
    rid: RequestId,
) -> Result<(Arc<String>, bool), SvcError> {
    let key = cache_key(shared, req);
    if let Some(hit) = shared.cache.get(key) {
        return Ok((hit, true));
    }
    let rendered = match &req.payload {
        Payload::Compile(spec) => compile_result(shared, spec)?,
        Payload::Simulate(spec) => {
            let (dfg, mapping) = compile_mapping(shared, &spec.compile)?;
            let report = run_engine(&dfg, &mapping, spec.iterations, spec.seed)
                .map_err(|e| SvcError::with_entity("sim_error", e.to_string(), dfg.name()))?;
            crate::json::Obj::new()
                .str("kernel", dfg.name())
                .str("strategy", spec.compile.strategy.name())
                .u64("ii", u64::from(mapping.ii()))
                .u64("iterations", report.iterations)
                .u64("cycles", report.cycles)
                .u64("ops_executed", report.ops_executed)
                .f64("fu_activity", report.fu_activity())
                .u64("fifo_peak", report.fifo_peak as u64)
                .finish()
        }
        Payload::Stream(spec) => stream_result(shared, spec)?,
        Payload::Stats { .. } | Payload::Control => {
            return Err(SvcError::new(
                "internal",
                "control verb reached the worker pool",
            ))
        }
    };
    let rendered = Arc::new(rendered);
    let evicted = shared.cache.put_shared(key, Arc::clone(&rendered));
    shared.metrics.evicted(evicted);
    if evicted > 0 {
        shared.log.emit(Level::Info, "cache_evict", |o| {
            o.str("req", &rid.token()).u64("evicted", evicted)
        });
    }
    if let Some(chaos) = &shared.chaos {
        if chaos.corrupt_spill() && shared.cache.corrupt_for_chaos(key) {
            shared.metrics.chaos_fault();
            iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_corruptions", 1);
            shared
                .log
                .emit(Level::Warn, "chaos_corrupt", |o| o.str("req", &rid.token()));
        }
    }
    Ok((rendered, false))
}

fn hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

/// The content-addressed key: canonical hashes of every semantic input.
/// Serving knobs (deadline, thread count, client id) are deliberately
/// excluded — they cannot change the payload bytes.
fn cache_key(shared: &Shared, req: &Request) -> CacheKey {
    let cfg = shared.config.canonical_hash();
    match &req.payload {
        Payload::Compile(spec) => CacheKey::derive(&[
            hash_str("compile"),
            spec.source.dfg().canonical_hash(),
            cfg,
            spec.mapper_options().canonical_hash(),
            hash_str(spec.strategy.name()),
        ]),
        Payload::Simulate(spec) => CacheKey::derive(&[
            hash_str("simulate"),
            spec.compile.source.dfg().canonical_hash(),
            cfg,
            spec.compile.mapper_options().canonical_hash(),
            hash_str(spec.compile.strategy.name()),
            spec.iterations,
            spec.seed,
        ]),
        Payload::Stream(spec) => CacheKey::derive(&[
            hash_str("stream"),
            cfg,
            hash_str(&spec.pipeline),
            hash_str(policy_name(spec.policy)),
            spec.inputs as u64,
            spec.seed,
        ]),
        Payload::Stats { .. } | Payload::Control => CacheKey::derive(&[hash_str("control")]),
    }
}

fn map_err_to_svc(e: MapError, entity: &str) -> SvcError {
    if matches!(e, MapError::DeadlineExceeded) {
        SvcError::with_entity("deadline_exceeded", e.to_string(), entity)
    } else {
        SvcError::with_entity("map_error", e.to_string(), entity)
    }
}

/// Maps per the requested strategy (the `Toolchain::compile` recipe, but
/// with per-request deadline/II options threaded through).
fn compile_mapping(
    shared: &Shared,
    spec: &CompileSpec,
) -> Result<(iced::dfg::Dfg, iced::mapper::Mapping), SvcError> {
    let dfg = spec.source.dfg();
    let mut opts = spec.mapper_options();
    if let Some(ms) = spec.deadline_ms {
        opts.deadline = Some(Instant::now() + Duration::from_millis(ms));
    }
    let base = map_with(&dfg, &shared.config, &opts).map_err(|e| map_err_to_svc(e, dfg.name()))?;
    let mapping = match spec.strategy {
        Strategy::Baseline => base,
        Strategy::BaselinePowerGated => power_gate_idle(&dfg, &base),
        Strategy::PerTileDvfs => relax_per_tile(&dfg, &base),
        Strategy::IcedIslands => relax_islands(&dfg, &base),
    };
    Ok((dfg, mapping))
}

fn compile_result(shared: &Shared, spec: &CompileSpec) -> Result<String, SvcError> {
    let (dfg, mapping) = compile_mapping(shared, spec)?;
    let stats = FabricStats::analyze(&mapping);
    let energy = EnergyBreakdown::account(
        &dfg,
        &mapping,
        &shared.model,
        spec.strategy.dvfs_support(),
        1000,
    );
    let bits = Bitstream::assemble(&dfg, &mapping);
    Ok(crate::json::Obj::new()
        .str("kernel", dfg.name())
        .str("strategy", spec.strategy.name())
        .u64("nodes", dfg.node_count() as u64)
        .u64("edges", dfg.edge_count() as u64)
        .u64("ii", u64::from(mapping.ii()))
        .u64("makespan", mapping.makespan())
        .f64("avg_dvfs_level", stats.average_dvfs_level())
        .f64("avg_utilization", stats.average_utilization())
        .f64("power_mw", energy.total_power_mw())
        .u64("bitstream_words", bits.words().len() as u64)
        .u64("bitstream_bytes", bits.total_bytes() as u64)
        .str("dfg_hash", &format!("{:016x}", dfg.canonical_hash()))
        .finish())
}

fn stream_result(shared: &Shared, spec: &StreamSpec) -> Result<String, SvcError> {
    let pipeline = match spec.pipeline.as_str() {
        "gcn" => Pipeline::gcn(),
        _ => Pipeline::lu(),
    };
    let partition = Partition::table1(&pipeline, &shared.config)
        .map_err(|e| map_err_to_svc(e, &spec.pipeline))?;
    let inputs: Vec<u64> = if spec.pipeline == "gcn" {
        workloads::enzymes_like(spec.inputs, spec.seed)
            .iter()
            .map(|g| g.nnz())
            .collect()
    } else {
        workloads::suitesparse_like(spec.inputs, spec.seed)
            .iter()
            .map(|m| m.nnz as u64)
            .collect()
    };
    let report = simulate(&pipeline, &partition, &shared.model, &inputs, spec.policy);
    Ok(crate::json::Obj::new()
        .str("pipeline", &spec.pipeline)
        .str("policy", policy_name(spec.policy))
        .u64("inputs", report.inputs as u64)
        .f64("throughput", report.throughput())
        .f64("avg_power_mw", report.avg_power_mw())
        .f64("perf_per_watt", report.perf_per_watt())
        .f64("total_time_us", report.total_time_us)
        .f64("total_energy_nj", report.total_energy_nj)
        .u64("windows", report.samples.len() as u64)
        .finish())
}

fn write_line(
    shared: &Shared,
    writer: &Arc<Mutex<TcpStream>>,
    req: Option<RequestId>,
    line: &str,
) -> bool {
    let mut w = lock(writer);
    if let Some(chaos) = &shared.chaos {
        if chaos.drop_write() {
            // Tear the response — half the bytes, no newline — then drop
            // the socket hard, as a dying peer or failing NIC would. The
            // connection is lost; the daemon must not be.
            shared.metrics.chaos_fault();
            iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_drops", 1);
            shared.log.emit(Level::Warn, "chaos_drop", |mut o| {
                if let Some(r) = req {
                    o = o.str("req", &r.token());
                }
                o.u64("bytes_torn", (line.len() / 2) as u64)
            });
            let _ = w.write_all(&line.as_bytes()[..line.len() / 2]);
            let _ = w.flush();
            let _ = w.shutdown(std::net::Shutdown::Both);
            return false;
        }
    }
    // One locked write per response keeps concurrent workers' lines whole.
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    w.write_all(&buf).and_then(|()| w.flush()).is_ok()
}

/// Outcome of a bounded line read.
enum LineRead {
    /// Connection closed before any bytes.
    Eof,
    /// A complete line is in the output buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; it was discarded up to the
    /// next newline so the stream stays in sync.
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// [`MAX_LINE_BYTES`] — a malicious endless line costs bounded memory.
fn read_bounded_line<R: BufRead>(r: &mut R, out: &mut String) -> std::io::Result<LineRead> {
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            if bytes.is_empty() {
                return Ok(LineRead::Eof);
            }
            break; // final unterminated line
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            if bytes.len() + pos > MAX_LINE_BYTES {
                r.consume(pos + 1);
                return Ok(LineRead::TooLong);
            }
            bytes.extend_from_slice(&buf[..pos]);
            r.consume(pos + 1);
            break;
        }
        let n = buf.len();
        if bytes.len() + n > MAX_LINE_BYTES {
            r.consume(n);
            return discard_rest_of_line(r);
        }
        bytes.extend_from_slice(buf);
        r.consume(n);
    }
    // Invalid UTF-8 flows through as replacement characters and fails
    // JSON parsing with a structured error rather than an I/O abort.
    *out = String::from_utf8_lossy(&bytes).into_owned();
    Ok(LineRead::Line)
}

fn discard_rest_of_line<R: BufRead>(r: &mut R) -> std::io::Result<LineRead> {
    loop {
        let buf = r.fill_buf()?;
        if buf.is_empty() {
            return Ok(LineRead::TooLong); // line ran off the end of input
        }
        if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            r.consume(pos + 1);
            return Ok(LineRead::TooLong);
        }
        let n = buf.len();
        r.consume(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_line_reader_handles_eof_and_oversize() {
        let mut input = std::io::Cursor::new(b"{\"a\":1}\nrest".to_vec());
        let mut line = String::new();
        assert!(matches!(
            read_bounded_line(&mut input, &mut line),
            Ok(LineRead::Line)
        ));
        assert_eq!(line, "{\"a\":1}");
        assert!(matches!(
            read_bounded_line(&mut input, &mut line),
            Ok(LineRead::Line)
        ));
        assert_eq!(line, "rest");
        assert!(matches!(
            read_bounded_line(&mut input, &mut line),
            Ok(LineRead::Eof)
        ));

        let huge = vec![b'x'; MAX_LINE_BYTES + 10];
        let mut with_tail = huge.clone();
        with_tail.extend_from_slice(b"\n{\"ok\":1}\n");
        let mut input = std::io::Cursor::new(with_tail);
        assert!(matches!(
            read_bounded_line(&mut input, &mut line),
            Ok(LineRead::TooLong)
        ));
        // The stream resynchronises on the next line.
        assert!(matches!(
            read_bounded_line(&mut input, &mut line),
            Ok(LineRead::Line)
        ));
        assert_eq!(line, "{\"ok\":1}");
    }

    #[test]
    fn service_config_env_parsing_clamps() {
        assert_eq!(env_usize("ICED_SVC_DOES_NOT_EXIST", 7, 1, 10), 7);
    }
}
