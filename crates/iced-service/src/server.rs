//! The daemon: a single-threaded readiness reactor that owns every
//! connection, a bounded request queue, a fixed worker pool, a
//! content-addressed cache, and graceful shutdown.
//!
//! ## Threading model
//!
//! * One **reactor** thread (see [`crate::reactor`]) multiplexes the
//!   listener and all client sockets over nonblocking `poll(2)`: it
//!   accepts, frames newline-delimited JSON incrementally, answers
//!   control verbs (`healthz`, `metrics`, `stats`, `shutdown`) inline so
//!   they stay responsive even when the work queue is saturated, pushes
//!   work verbs onto the bounded queue (a full queue yields an immediate
//!   typed `queue_full` response, never an unbounded buffer), and writes
//!   responses back in strict per-connection request order with
//!   interest-driven writability — partial writes are buffered, never
//!   blocked on.
//! * `ICED_SVC_THREADS` **workers** drain the queue, consult the cache,
//!   compute on miss, render the full response envelope, and hand it back
//!   to the reactor through a completion list plus a wake token.
//!
//! ## Batching
//!
//! The `batch` verb carries many compile/simulate slots in one envelope.
//! The reactor derives every slot's [`CacheKey`] *before* enqueueing and
//! dedupes inside the batch: identical specs are computed once and the
//! rendered bytes fan out to every slot (and into the cache). A bad slot
//! is answered in place with a structured error; its siblings still run.
//!
//! ## Shutdown
//!
//! `shutdown` (or [`Server::shutdown`]) flips a flag, closes the queue,
//! and wakes the reactor. The listener is dropped immediately; workers
//! drain everything already accepted; the reactor keeps routing and
//! flushing those responses and exits once nothing is outstanding (with
//! a bounded grace period for unflushable sockets); the cache is spilled;
//! only then are client sockets closed. A request the server accepted is
//! therefore always answered.

use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use iced::arch::CgraConfig;
use iced::kernels::pipelines::Pipeline;
use iced::kernels::workloads;
use iced::mapper::{map_with, power_gate_idle, relax_islands, relax_per_tile, Bitstream, MapError};
use iced::power::PowerModel;
use iced::sim::{run_engine, EnergyBreakdown, FabricStats};
use iced::streaming::{simulate, Partition};
use iced::Strategy;

use iced_hash::StableHasher;

use crate::cache::{CacheKey, ResultCache};
use crate::chaos::ChaosInjector;
use crate::log::{EventLog, Level};
use crate::metrics::Metrics;
use crate::poll::Waker;
use crate::proto::{
    policy_name, render_batch_item_err, render_batch_item_ok, render_batch_result, render_err,
    render_ok, Backend, BatchElem, CompileSpec, Payload, Request, RequestId, SimulateSpec,
    StreamSpec, SvcError, Verb,
};
use crate::queue::BoundedQueue;

/// Server configuration, normally taken from the environment.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`ICED_SVC_ADDR`, default `127.0.0.1:9090`; use port
    /// 0 for an ephemeral port).
    pub addr: String,
    /// Worker pool size (`ICED_SVC_THREADS`).
    pub threads: usize,
    /// Request queue capacity (`ICED_SVC_QUEUE`).
    pub queue_cap: usize,
    /// In-memory cache budget in MiB (`ICED_SVC_CACHE_MB`).
    pub cache_mb: u64,
    /// Exact in-memory cache budget in bytes, overriding `cache_mb` when
    /// set (`ICED_SVC_CACHE_BYTES`). Benchmarks and tests use this to
    /// provoke LRU capacity eviction at working-set sizes far below one
    /// MiB — the cluster sweep's aggregate-capacity scaling runs on it.
    pub cache_bytes: Option<u64>,
    /// Optional disk-spill directory (`ICED_SVC_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Chaos-injection seed (`ICED_SVC_CHAOS`); `None` disables chaos.
    /// See [`crate::chaos`] for the fault sites and rates.
    pub chaos: Option<u64>,
    /// JSONL event-log path (`ICED_SVC_LOG`); `None` disables logging.
    pub log_path: Option<PathBuf>,
    /// Minimum event severity written (`ICED_SVC_LOG_LEVEL`).
    pub log_level: Level,
    /// Max unanswered requests buffered per connection before the server
    /// answers `too_many_requests` (`ICED_SVC_PIPELINE`).
    pub pipeline: usize,
    /// Max concurrently open connections; further connects are refused
    /// with a `too_many_connections` line (`ICED_SVC_MAX_CONNS`).
    pub max_conns: usize,
    /// Target CGRA configuration.
    pub cgra: CgraConfig,
}

fn env_usize(key: &str, default: usize, lo: usize, hi: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(default, |v| v.clamp(lo, hi))
}

impl ServiceConfig {
    /// Reads `ICED_SVC_*` from the environment, with sane defaults.
    pub fn from_env() -> Self {
        let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(4));
        ServiceConfig {
            addr: std::env::var("ICED_SVC_ADDR").unwrap_or_else(|_| "127.0.0.1:9090".into()),
            threads: env_usize("ICED_SVC_THREADS", threads, 1, 64),
            queue_cap: env_usize("ICED_SVC_QUEUE", 64, 1, 65_536),
            cache_mb: env_usize("ICED_SVC_CACHE_MB", 64, 1, 16_384) as u64,
            cache_bytes: std::env::var("ICED_SVC_CACHE_BYTES")
                .ok()
                .and_then(|v| v.parse::<u64>().ok()),
            cache_dir: std::env::var("ICED_SVC_CACHE_DIR").ok().map(PathBuf::from),
            chaos: ChaosInjector::seed_from_env(),
            log_path: std::env::var(crate::log::ENV_LOG)
                .ok()
                .filter(|p| !p.is_empty())
                .map(PathBuf::from),
            log_level: std::env::var(crate::log::ENV_LOG_LEVEL)
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info),
            pipeline: env_usize("ICED_SVC_PIPELINE", 32, 1, 4096),
            max_conns: env_usize("ICED_SVC_MAX_CONNS", 4096, 1, 65_536),
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            queue_cap: 64,
            cache_mb: 64,
            cache_bytes: None,
            cache_dir: None,
            chaos: None,
            log_path: None,
            log_level: Level::Info,
            pipeline: 32,
            max_conns: 4096,
            cgra: CgraConfig::iced_prototype(),
        }
    }
}

/// How one batch slot resolves: an index into the batch's unique work
/// list, or a structured per-slot parse error.
pub(crate) enum SlotPlan {
    /// Serve this slot from unique element `i`'s rendered bytes.
    Unique(usize),
    /// Answer this slot with the error, computed nothing.
    Invalid(Option<Verb>, SvcError),
}

/// What a queued job computes.
pub(crate) enum JobKind {
    /// One compile/simulate/stream request.
    Single(Request),
    /// A batch: per-slot plans plus the deduped unique work list the
    /// reactor derived before enqueueing.
    Batch {
        id: u64,
        slots: Vec<SlotPlan>,
        unique: Vec<(CacheKey, BatchElem)>,
    },
}

/// One queued unit of work plus the routing needed to answer it: the
/// connection slot, its generation token, and the response-order ticket.
pub(crate) struct Job {
    pub(crate) kind: JobKind,
    pub(crate) rid: RequestId,
    pub(crate) slot: usize,
    pub(crate) token: u64,
    pub(crate) ticket: u64,
    pub(crate) accepted_at: Instant,
}

impl Job {
    fn verb(&self) -> Verb {
        match &self.kind {
            JobKind::Single(req) => req.verb,
            JobKind::Batch { .. } => Verb::Batch,
        }
    }

    fn id(&self) -> u64 {
        match &self.kind {
            JobKind::Single(req) => req.id,
            JobKind::Batch { id, .. } => *id,
        }
    }
}

/// A finished response line, handed from a worker back to the reactor.
pub(crate) struct Completion {
    pub(crate) slot: usize,
    pub(crate) token: u64,
    pub(crate) ticket: u64,
    pub(crate) rid: RequestId,
    pub(crate) line: String,
}

/// State shared by the reactor and the workers.
pub(crate) struct Shared {
    pub(crate) config: CgraConfig,
    pub(crate) model: PowerModel,
    pub(crate) cache: ResultCache,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) metrics: Metrics,
    pub(crate) chaos: Option<ChaosInjector>,
    pub(crate) log: EventLog,
    pub(crate) shutting: AtomicBool,
    pub(crate) in_flight: AtomicUsize,
    pub(crate) started: Instant,
    pub(crate) threads: usize,
    pub(crate) queue_cap: usize,
    pub(crate) pipeline_cap: usize,
    pub(crate) max_conns: usize,
    /// Jobs accepted onto the queue whose responses the reactor has not
    /// yet routed; the drain condition.
    pub(crate) jobs_outstanding: AtomicUsize,
    /// Finished responses awaiting reactor pickup.
    pub(crate) completions: Mutex<Vec<Completion>>,
    /// Pops the reactor out of its poll wait when completions arrive or
    /// shutdown begins.
    pub(crate) waker: Waker,
}

impl Shared {
    /// Hands a finished response to the reactor and wakes it.
    pub(crate) fn push_completion(&self, done: Completion) {
        lock(&self.completions).push(done);
        self.waker.wake();
    }
}

/// A running service instance.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon: reactor + worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (or a wake-pair setup failure).
    pub fn start(cfg: ServiceConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let (waker, wake_rx) = crate::poll::wake_pair()?;
        let log = match &cfg.log_path {
            Some(p) => EventLog::to_path(p, cfg.log_level)?,
            None => EventLog::disabled(),
        };
        log.emit(Level::Info, "server_start", |o| {
            o.str("addr", &addr.to_string())
                .str("version", env!("CARGO_PKG_VERSION"))
                .u64("threads", cfg.threads.max(1) as u64)
                .u64("queue_cap", cfg.queue_cap as u64)
                .u64("cache_mb", cfg.cache_mb)
                .u64("pipeline_cap", cfg.pipeline.max(1) as u64)
                .u64("max_conns", cfg.max_conns.max(1) as u64)
                .bool("chaos_armed", cfg.chaos.is_some())
        });
        let shared = Arc::new(Shared {
            config: cfg.cgra,
            model: PowerModel::asap7(),
            cache: ResultCache::new(
                cfg.cache_bytes
                    .unwrap_or_else(|| cfg.cache_mb.saturating_mul(1 << 20)),
                cfg.cache_dir,
            ),
            queue: BoundedQueue::new(cfg.queue_cap),
            metrics: Metrics::new(),
            chaos: cfg.chaos.map(ChaosInjector::new),
            log,
            shutting: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            started: Instant::now(),
            threads: cfg.threads.max(1),
            queue_cap: cfg.queue_cap,
            pipeline_cap: cfg.pipeline.max(1),
            max_conns: cfg.max_conns.max(1),
            jobs_outstanding: AtomicUsize::new(0),
            completions: Mutex::new(Vec::new()),
            waker,
        });
        shared
            .metrics
            .set_limits(cfg.pipeline.max(1), cfg.max_conns.max(1));
        let workers = (0..cfg.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("iced-svc-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("iced-svc-reactor".into())
                .spawn(move || crate::reactor::reactor_loop(&shared, listener, wake_rx))
                .expect("spawn reactor thread")
        };
        Ok(Server {
            shared,
            addr,
            reactor: Some(reactor),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers the same graceful shutdown as the `shutdown` verb.
    pub fn shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until shutdown completes: listener dropped, queue drained,
    /// every in-flight response routed and flushed, cache flushed,
    /// sockets closed.
    pub fn wait(mut self) {
        if let Some(r) = self.reactor.take() {
            let _ = r.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All accepted work is answered by now; persist warm state.
        let flushed = self.shared.cache.flush();
        if flushed > 0 {
            iced::trace::counter(
                iced::trace::Phase::Service,
                "svc_cache_spilled_entries",
                flushed as u64,
            );
            self.shared.log.emit(Level::Info, "cache_spill", |o| {
                o.u64("entries", flushed as u64)
            });
        }
        let shared = &self.shared;
        shared.log.emit(Level::Info, "server_stop", |o| {
            o.u64("uptime_s", shared.started.elapsed().as_secs())
                .u64(
                    "connections",
                    shared.metrics.connections.load(Ordering::Relaxed),
                )
                .u64("log_dropped", shared.log.dropped())
        });
        shared.log.shutdown();
    }
}

pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn begin_shutdown(shared: &Shared) {
    if !shared.shutting.swap(true, Ordering::SeqCst) {
        shared.queue.close();
        shared.waker.wake();
    }
}

/// Logs a `request_error` event for an error envelope about to be written.
pub(crate) fn log_request_error(
    shared: &Shared,
    rid: RequestId,
    verb: Option<Verb>,
    err: &SvcError,
) {
    shared.log.emit(Level::Warn, "request_error", |mut o| {
        o = o.str("req", &rid.token());
        if let Some(v) = verb {
            o = o.str("verb", v.name());
        }
        o.str("code", err.code).str("message", &err.message)
    });
}

/// Logs a `request_finish` event for a successful control-verb response.
pub(crate) fn log_control_finish(shared: &Shared, rid: RequestId, verb: Verb, t0: Instant) {
    shared.log.emit(Level::Info, "request_finish", |o| {
        o.str("req", &rid.token())
            .str("verb", verb.name())
            .str("outcome", "ok")
            .u64("total_us", t0.elapsed().as_micros() as u64)
    });
}

/// Renders a panic payload for the error envelope and the event log.
/// `panic!` almost always carries a `String` or `&str`; anything else is
/// reported by type only.
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let verb = job.verb();
        let id = job.id();
        let rid = job.rid;
        let queue_wait = job.accepted_at.elapsed();
        let _flight = shared.metrics.flight(verb);
        // Everything the worker does for this request — including mapper
        // and simulator spans — is attributed to its request id.
        let _scope = iced::trace::request_scope(rid.as_u64());
        // At debug level, capture this request's own trace via a thread
        // overlay and log a summary; the global collector (if any) still
        // sees everything.
        let trace_rec = if shared.log.enabled(Level::Debug) {
            Some(Arc::new(iced::trace::RecordingCollector::new()))
        } else {
            None
        };
        let overlay = trace_rec
            .as_ref()
            .map(|r| iced::trace::overlay(Arc::clone(r) as Arc<dyn iced::trace::Collector>));
        let service_started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let _span = iced::trace::span(
                iced::trace::Phase::Service,
                "svc_request",
                &[("verb", verb.name().into())],
            );
            if let Some(chaos) = &shared.chaos {
                if chaos.worker_panic() {
                    shared.metrics.chaos_fault();
                    iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_panics", 1);
                    shared.log.emit(Level::Warn, "chaos_panic", |o| {
                        o.str("req", &rid.token()).str("verb", verb.name())
                    });
                    panic!("chaos: injected worker panic");
                }
            }
            match &job.kind {
                JobKind::Single(req) => execute(shared, req, rid),
                JobKind::Batch { slots, unique, .. } => execute_batch(shared, slots, unique, rid),
            }
        }));
        let service_time = service_started.elapsed();
        drop(overlay);
        if let Some(rec) = trace_rec {
            let records = rec.records();
            let spans = records
                .iter()
                .filter(|r| matches!(r, iced::trace::Record::SpanBegin { .. }))
                .count();
            shared.log.emit(Level::Debug, "request_trace", |o| {
                o.str("req", &rid.token())
                    .u64("trace_records", records.len() as u64)
                    .u64("trace_spans", spans as u64)
            });
        }
        let response = match outcome {
            Ok(Ok((result, cached))) => {
                // Batch cache traffic is accounted per unique slot inside
                // execute_batch; the envelope itself is never cached.
                if matches!(&job.kind, JobKind::Single(_)) {
                    shared.metrics.cache_event(cached);
                }
                shared.log.emit(Level::Info, "request_finish", |o| {
                    o.str("req", &rid.token())
                        .str("verb", verb.name())
                        .str("outcome", if cached { "cached" } else { "ok" })
                        .u64("total_us", job.accepted_at.elapsed().as_micros() as u64)
                        .u64("queue_us", queue_wait.as_micros() as u64)
                        .u64("service_us", service_time.as_micros() as u64)
                });
                render_ok(id, Some(rid), verb, cached, &result)
            }
            Ok(Err(e)) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                log_request_error(shared, rid, Some(verb), &e);
                render_err(id, Some(rid), Some(verb), &e)
            }
            Err(p) => {
                shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                let payload = panic_payload(p.as_ref());
                shared.log.emit(Level::Error, "worker_panic", |o| {
                    o.str("req", &rid.token())
                        .str("verb", verb.name())
                        .str("payload", &payload)
                });
                let e = SvcError::with_entity(
                    "internal",
                    format!("request processing panicked: {payload}"),
                    rid.token(),
                );
                render_err(id, Some(rid), Some(verb), &e)
            }
        };
        // Metrics are recorded before the response is handed back, so a
        // client that reads its answer and immediately scrapes
        // `metrics`/`stats` always sees its own request counted.
        shared.metrics.observe(verb, job.accepted_at.elapsed());
        shared.metrics.observe_split(verb, queue_wait, service_time);
        shared.push_completion(Completion {
            slot: job.slot,
            token: job.token,
            ticket: job.ticket,
            rid,
            line: response,
        });
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs one work verb, consulting the cache. Returns the rendered result
/// JSON plus whether it came from the cache.
fn execute(
    shared: &Shared,
    req: &Request,
    rid: RequestId,
) -> Result<(Arc<String>, bool), SvcError> {
    let key = cache_key(shared, req);
    if let Some(hit) = shared.cache.get(key) {
        return Ok((hit, true));
    }
    let rendered = match &req.payload {
        Payload::Compile(spec) => compile_result(shared, spec)?,
        Payload::Simulate(spec) => simulate_result(shared, spec)?,
        Payload::Stream(spec) => stream_result(shared, spec)?,
        Payload::Stats { .. } | Payload::Control | Payload::Batch(_) | Payload::CachePut { .. } => {
            return Err(SvcError::new(
                "internal",
                "control verb reached the worker pool",
            ))
        }
    };
    Ok((insert_rendered(shared, key, rendered, rid), false))
}

/// Runs one batch: computes each unique element once (through the cache)
/// and fans the rendered bytes out to every slot that maps to it. Always
/// returns the envelope-level result; per-slot failures are structured
/// errors inside the response array.
fn execute_batch(
    shared: &Shared,
    slots: &[SlotPlan],
    unique: &[(CacheKey, BatchElem)],
    rid: RequestId,
) -> Result<(Arc<String>, bool), SvcError> {
    shared.metrics.batch_observed(slots.len(), unique.len());
    let computed: Vec<(Verb, bool, Result<Arc<String>, SvcError>)> = unique
        .iter()
        .map(|(key, elem)| {
            let verb = elem.verb();
            match execute_elem(shared, *key, elem, rid) {
                Ok((bytes, cached)) => {
                    shared.metrics.cache_event(cached);
                    (verb, cached, Ok(bytes))
                }
                Err(e) => {
                    shared.metrics.errors.fetch_add(1, Ordering::Relaxed);
                    log_request_error(shared, rid, Some(verb), &e);
                    (verb, false, Err(e))
                }
            }
        })
        .collect();
    let items: Vec<String> = slots
        .iter()
        .map(|plan| match plan {
            SlotPlan::Unique(i) => {
                let (verb, cached, result) = &computed[*i];
                match result {
                    Ok(bytes) => render_batch_item_ok(*verb, *cached, bytes),
                    Err(e) => render_batch_item_err(Some(*verb), e),
                }
            }
            SlotPlan::Invalid(verb, e) => render_batch_item_err(*verb, e),
        })
        .collect();
    Ok((
        Arc::new(render_batch_result(slots.len(), unique.len(), &items)),
        false,
    ))
}

/// Serves one batch element through the cache, exactly as a standalone
/// request for the same spec would be.
fn execute_elem(
    shared: &Shared,
    key: CacheKey,
    elem: &BatchElem,
    rid: RequestId,
) -> Result<(Arc<String>, bool), SvcError> {
    if let Some(hit) = shared.cache.get(key) {
        return Ok((hit, true));
    }
    let rendered = match elem {
        BatchElem::Compile(spec) => compile_result(shared, spec)?,
        BatchElem::Simulate(spec) => simulate_result(shared, spec)?,
    };
    Ok((insert_rendered(shared, key, rendered, rid), false))
}

/// Inserts freshly rendered bytes into the cache, accounting evictions
/// and rolling the chaos spill-corruption site.
fn insert_rendered(
    shared: &Shared,
    key: CacheKey,
    rendered: String,
    rid: RequestId,
) -> Arc<String> {
    let rendered = Arc::new(rendered);
    let evicted = shared.cache.put_shared(key, Arc::clone(&rendered));
    shared.metrics.evicted(evicted);
    if evicted > 0 {
        shared.log.emit(Level::Info, "cache_evict", |o| {
            o.str("req", &rid.token()).u64("evicted", evicted)
        });
    }
    if let Some(chaos) = &shared.chaos {
        if chaos.corrupt_spill() && shared.cache.corrupt_for_chaos(key) {
            shared.metrics.chaos_fault();
            iced::trace::counter(iced::trace::Phase::Service, "svc_chaos_corruptions", 1);
            shared
                .log
                .emit(Level::Warn, "chaos_corrupt", |o| o.str("req", &rid.token()));
        }
    }
    rendered
}

fn hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish()
}

/// The backend's contribution to a compile key: its name plus, for the
/// exact backend, the canonical hash of the exact-search options (they
/// determine the certified fields in the rendered bytes — including
/// `nodes_explored`, which `backjump` changes). Heuristic requests hash
/// a constant here, so pre-existing heuristic keys stay strategy-keyed
/// exactly as before plus this one extra lane.
fn backend_lanes(spec: &CompileSpec) -> [u64; 2] {
    [
        hash_str(spec.backend.name()),
        match spec.backend {
            Backend::Exact => spec.exact_options().canonical_hash(),
            Backend::Heuristic => 0,
        },
    ]
}

/// The `compile` content-addressed key for a given CGRA config hash.
/// Uses the memoized `Source::canonical_hash` so key derivation on the
/// router's forwarding path never rebuilds a suite DFG.
pub(crate) fn compile_key(cfg: u64, spec: &CompileSpec) -> CacheKey {
    let [backend, exact_opts] = backend_lanes(spec);
    CacheKey::derive(&[
        hash_str("compile"),
        spec.source.canonical_hash(),
        cfg,
        spec.mapper_options().canonical_hash(),
        hash_str(spec.strategy.name()),
        backend,
        exact_opts,
    ])
}

/// The `simulate` content-addressed key for a given CGRA config hash.
pub(crate) fn simulate_key(cfg: u64, spec: &SimulateSpec) -> CacheKey {
    let [backend, exact_opts] = backend_lanes(&spec.compile);
    CacheKey::derive(&[
        hash_str("simulate"),
        spec.compile.source.canonical_hash(),
        cfg,
        spec.compile.mapper_options().canonical_hash(),
        hash_str(spec.compile.strategy.name()),
        backend,
        exact_opts,
        spec.iterations,
        spec.seed,
    ])
}

/// The key for one batch element — identical to what the standalone verb
/// would derive, so batch slots and single requests share cache entries.
pub(crate) fn elem_key(cfg: u64, elem: &BatchElem) -> CacheKey {
    match elem {
        BatchElem::Compile(spec) => compile_key(cfg, spec),
        BatchElem::Simulate(spec) => simulate_key(cfg, spec),
    }
}

/// The content-addressed key a cacheable request resolves to, given the
/// CGRA configuration's canonical hash — the exact key the shard's cache
/// uses, exposed so the cluster router (and benches/tests computing
/// shard placement) derive byte-identical keys. `None` for verbs whose
/// responses are not content-addressed (control verbs and `batch`
/// envelopes; batch *slots* key through [`BatchElem`] separately).
pub fn request_key(cfg: u64, req: &Request) -> Option<CacheKey> {
    match &req.payload {
        Payload::Compile(spec) => Some(compile_key(cfg, spec)),
        Payload::Simulate(spec) => Some(simulate_key(cfg, spec)),
        Payload::Stream(spec) => Some(CacheKey::derive(&[
            hash_str("stream"),
            cfg,
            hash_str(&spec.pipeline),
            hash_str(policy_name(spec.policy)),
            spec.inputs as u64,
            spec.seed,
        ])),
        Payload::Stats { .. } | Payload::Control | Payload::Batch(_) | Payload::CachePut { .. } => {
            None
        }
    }
}

/// The content-addressed key: canonical hashes of every semantic input.
/// Serving knobs (deadline, thread count, client id) are deliberately
/// excluded — they cannot change the payload bytes.
fn cache_key(shared: &Shared, req: &Request) -> CacheKey {
    let cfg = shared.config.canonical_hash();
    request_key(cfg, req).unwrap_or_else(|| CacheKey::derive(&[hash_str("control")]))
}

fn map_err_to_svc(e: MapError, entity: &str) -> SvcError {
    if matches!(e, MapError::DeadlineExceeded) {
        SvcError::with_entity("deadline_exceeded", e.to_string(), entity)
    } else {
        SvcError::with_entity("map_error", e.to_string(), entity)
    }
}

/// Maps per the requested strategy (the `Toolchain::compile` recipe, but
/// with per-request deadline/II options threaded through). For the exact
/// backend the mapping comes with its minimum-II certificate.
fn compile_mapping(
    shared: &Shared,
    spec: &CompileSpec,
) -> Result<
    (
        iced::dfg::Dfg,
        iced::mapper::Mapping,
        Option<iced::exact::CertifiedII>,
    ),
    SvcError,
> {
    let dfg = spec.source.dfg();
    let mut opts = spec.mapper_options();
    if let Some(ms) = spec.deadline_ms {
        opts.deadline = Some(Instant::now() + Duration::from_millis(ms));
    }
    if spec.backend == Backend::Exact {
        let mut xopts = spec.exact_options();
        xopts.deadline = opts.deadline;
        let c = iced::exact::certify(&dfg, &shared.config, &opts, &xopts)
            .map_err(|e| map_err_to_svc(e, dfg.name()))?;
        return Ok((dfg, c.mapping, Some(c.certificate)));
    }
    let base = map_with(&dfg, &shared.config, &opts).map_err(|e| map_err_to_svc(e, dfg.name()))?;
    let mapping = match spec.strategy {
        Strategy::Baseline => base,
        Strategy::BaselinePowerGated => power_gate_idle(&dfg, &base),
        Strategy::PerTileDvfs => relax_per_tile(&dfg, &base),
        Strategy::IcedIslands => relax_islands(&dfg, &base),
    };
    Ok((dfg, mapping, None))
}

fn compile_result(shared: &Shared, spec: &CompileSpec) -> Result<String, SvcError> {
    let (dfg, mapping, cert) = compile_mapping(shared, spec)?;
    let stats = FabricStats::analyze(&mapping);
    let energy = EnergyBreakdown::account(
        &dfg,
        &mapping,
        &shared.model,
        spec.strategy.dvfs_support(),
        1000,
    );
    let bits = Bitstream::assemble(&dfg, &mapping);
    let mut o = crate::json::Obj::new()
        .str("kernel", dfg.name())
        .str("strategy", spec.strategy_name())
        .u64("nodes", dfg.node_count() as u64)
        .u64("edges", dfg.edge_count() as u64)
        .u64("ii", u64::from(mapping.ii()))
        .u64("makespan", mapping.makespan());
    if let Some(c) = cert {
        // Certified fields, present only on exact-backend responses. The
        // search is single-threaded and deterministic, so every field —
        // including nodes_explored — is byte-stable across runs.
        o = o
            .str("proof", c.proof.name())
            .u64("lower_bound", u64::from(c.lower_bound))
            .u64("nodes_explored", c.nodes_explored);
    }
    Ok(o.f64("avg_dvfs_level", stats.average_dvfs_level())
        .f64("avg_utilization", stats.average_utilization())
        .f64("power_mw", energy.total_power_mw())
        .u64("bitstream_words", bits.words().len() as u64)
        .u64("bitstream_bytes", bits.total_bytes() as u64)
        .str("dfg_hash", &format!("{:016x}", dfg.canonical_hash()))
        .finish())
}

fn simulate_result(shared: &Shared, spec: &SimulateSpec) -> Result<String, SvcError> {
    let (dfg, mapping, _cert) = compile_mapping(shared, &spec.compile)?;
    let report = run_engine(&dfg, &mapping, spec.iterations, spec.seed)
        .map_err(|e| SvcError::with_entity("sim_error", e.to_string(), dfg.name()))?;
    Ok(crate::json::Obj::new()
        .str("kernel", dfg.name())
        .str("strategy", spec.compile.strategy_name())
        .u64("ii", u64::from(mapping.ii()))
        .u64("iterations", report.iterations)
        .u64("cycles", report.cycles)
        .u64("ops_executed", report.ops_executed)
        .f64("fu_activity", report.fu_activity())
        .u64("fifo_peak", report.fifo_peak as u64)
        .finish())
}

fn stream_result(shared: &Shared, spec: &StreamSpec) -> Result<String, SvcError> {
    let pipeline = Pipeline::by_name(spec.pipeline.as_str()).ok_or_else(|| {
        SvcError::with_entity("bad_request", "unknown pipeline", spec.pipeline.clone())
    })?;
    let partition = Partition::table1(&pipeline, &shared.config)
        .map_err(|e| map_err_to_svc(e, &spec.pipeline))?;
    // Graph-shaped workloads drive gcn and the generated sensor app;
    // matrix-shaped ones drive lu and stencil.
    let inputs: Vec<u64> = if matches!(spec.pipeline.as_str(), "gcn" | "sensor") {
        workloads::enzymes_like(spec.inputs, spec.seed)
            .iter()
            .map(|g| g.nnz())
            .collect()
    } else {
        workloads::suitesparse_like(spec.inputs, spec.seed)
            .iter()
            .map(|m| m.nnz as u64)
            .collect()
    };
    let report = simulate(&pipeline, &partition, &shared.model, &inputs, spec.policy);
    Ok(crate::json::Obj::new()
        .str("pipeline", &spec.pipeline)
        .str("policy", policy_name(spec.policy))
        .u64("inputs", report.inputs as u64)
        .f64("throughput", report.throughput())
        .f64("avg_power_mw", report.avg_power_mw())
        .f64("perf_per_watt", report.perf_per_watt())
        .f64("total_time_us", report.total_time_us)
        .f64("total_energy_nj", report.total_energy_nj)
        .u64("windows", report.samples.len() as u64)
        .finish())
}

/// A workerless `Shared` for reactor unit tests: inline verbs work, the
/// queue accepts pushes nobody drains, logging is disabled.
#[cfg(test)]
pub(crate) fn test_shared() -> Arc<Shared> {
    let (waker, _rx) = crate::poll::wake_pair().expect("wake pair");
    let cfg = ServiceConfig::default();
    Arc::new(Shared {
        config: cfg.cgra,
        model: PowerModel::asap7(),
        cache: ResultCache::new(cfg.cache_mb << 20, None),
        queue: BoundedQueue::new(cfg.queue_cap),
        metrics: Metrics::new(),
        chaos: None,
        log: EventLog::disabled(),
        shutting: AtomicBool::new(false),
        in_flight: AtomicUsize::new(0),
        started: Instant::now(),
        threads: cfg.threads,
        queue_cap: cfg.queue_cap,
        pipeline_cap: cfg.pipeline,
        max_conns: cfg.max_conns,
        jobs_outstanding: AtomicUsize::new(0),
        completions: Mutex::new(Vec::new()),
        waker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Source;
    use iced::kernels::{Kernel, UnrollFactor};

    #[test]
    fn service_config_env_parsing_clamps() {
        assert_eq!(env_usize("ICED_SVC_DOES_NOT_EXIST", 7, 1, 10), 7);
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.pipeline, 32);
        assert_eq!(cfg.max_conns, 4096);
    }

    #[test]
    fn batch_element_keys_match_standalone_verb_keys() {
        let cfg = CgraConfig::iced_prototype().canonical_hash();
        let spec = CompileSpec {
            source: Source::Named(Kernel::Fir, UnrollFactor::X1),
            strategy: Strategy::IcedIslands,
            backend: Backend::Heuristic,
            max_ii: None,
            deadline_ms: None,
        };
        let elem = BatchElem::Compile(spec.clone());
        assert_eq!(elem_key(cfg, &elem), compile_key(cfg, &spec));

        let sim = SimulateSpec {
            compile: spec.clone(),
            iterations: 500,
            seed: 3,
        };
        assert_eq!(
            elem_key(cfg, &BatchElem::Simulate(sim.clone())),
            simulate_key(cfg, &sim)
        );
        // The two verbs never collide, and serving knobs stay excluded.
        assert_ne!(compile_key(cfg, &spec), simulate_key(cfg, &sim));
        let with_deadline = CompileSpec {
            deadline_ms: Some(5000),
            ..spec.clone()
        };
        assert_eq!(compile_key(cfg, &spec), compile_key(cfg, &with_deadline));
    }

    #[test]
    fn exact_and_heuristic_requests_never_share_cache_keys() {
        let cfg = CgraConfig::iced_prototype().canonical_hash();
        let exact = CompileSpec {
            source: Source::Named(Kernel::Fir, UnrollFactor::X1),
            strategy: Strategy::Baseline,
            backend: Backend::Exact,
            max_ii: None,
            deadline_ms: None,
        };
        // The exact backend must not warm-hit any heuristic strategy's
        // entry for the same kernel — their response bytes differ.
        for strategy in Strategy::ALL {
            let heur = CompileSpec {
                strategy,
                backend: Backend::Heuristic,
                ..exact.clone()
            };
            assert_ne!(
                compile_key(cfg, &exact),
                compile_key(cfg, &heur),
                "exact collides with {}",
                strategy.name()
            );
        }
        // Different exact options are different certified responses.
        let tighter = CompileSpec {
            max_ii: Some(8),
            ..exact.clone()
        };
        assert_ne!(compile_key(cfg, &exact), compile_key(cfg, &tighter));
    }
}
