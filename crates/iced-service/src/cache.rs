//! Content-addressed result cache with an LRU byte budget and optional
//! disk spill.
//!
//! Keys are 128-bit digests derived from the canonical hashes of the
//! request's semantic inputs (DFG, `CgraConfig`, `MapperOptions`, verb
//! extras) via two independently seeded [`StableHasher`] passes. Values
//! are the *rendered result JSON bytes*: a warm hit replays exactly the
//! bytes the cold request produced, which is what the byte-identical
//! warm/cold guarantee rests on.
//!
//! Eviction is least-recently-used under a byte budget
//! (`ICED_SVC_CACHE_MB`). When a spill directory is configured
//! (`ICED_SVC_CACHE_DIR`), evicted and flushed entries are written to
//! disk — keyed by their digest, so a stale entry can never be returned
//! for a different request — and promoted back into memory on a hit.
//!
//! Spill files carry an integrity header (`iced-cache-v1 <checksum>`) over
//! the payload. A file that fails verification — truncated, bit-flipped,
//! or written by an older format — is deleted and the lookup reported as
//! a miss, so disk corruption degrades to a recompute, never to serving
//! corrupt bytes.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::Mutex;

use iced_hash::StableHasher;

/// Spill-file format tag; bumping it invalidates all on-disk entries.
const SPILL_MAGIC: &str = "iced-cache-v1";

/// Checksum of a spill payload (seed distinct from the key-derivation
/// seeds, so a payload can never collide with its own key material).
fn payload_digest(bytes: &str) -> u64 {
    let mut h = StableHasher::with_seed(0x1ced_0003);
    h.write_bytes(bytes.as_bytes());
    h.finish()
}

/// Parses a spill file and returns the payload iff the header checks out:
/// correct magic, well-formed checksum, and a digest that matches the
/// payload bytes. Anything else — truncation, bit flips, a legacy
/// headerless file — returns `None`.
fn verify_spill(raw: &str) -> Option<&str> {
    let (header, payload) = raw.split_once('\n')?;
    let (magic, digest_hex) = header.split_once(' ')?;
    if magic != SPILL_MAGIC || digest_hex.len() != 16 {
        return None;
    }
    let digest = u64::from_str_radix(digest_hex, 16).ok()?;
    (digest == payload_digest(payload)).then_some(payload)
}

/// A 128-bit content digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u64, pub u64);

impl CacheKey {
    /// Derives a key from pre-hashed parts with two independent seeds.
    pub fn derive(parts: &[u64]) -> CacheKey {
        let mut a = StableHasher::with_seed(0x1ced_0001);
        let mut b = StableHasher::with_seed(0x1ced_0002);
        for &p in parts {
            a.write_u64(p);
            b.write_u64(p);
        }
        CacheKey(a.finish(), b.finish())
    }

    /// Hex form used for spill file names and response metadata.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.0, self.1)
    }

    /// Parses the [`CacheKey::hex`] form back into a key (used by the
    /// cluster `cache_put` verb). Returns `None` for anything that is
    /// not exactly 32 hex characters.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.is_ascii() {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey(hi, lo))
    }
}

#[derive(Debug)]
struct Entry {
    bytes: Arc<String>,
    tick: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Entry>,
    bytes: u64,
    tick: u64,
}

/// The shared result cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: u64,
    spill_dir: Option<PathBuf>,
}

impl ResultCache {
    /// Creates a cache with `budget` bytes of in-memory capacity and an
    /// optional spill directory (created eagerly; spill is disabled if
    /// creation fails — the service keeps running without it).
    pub fn new(budget: u64, spill_dir: Option<PathBuf>) -> Self {
        let spill_dir = spill_dir.filter(|d| std::fs::create_dir_all(d).is_ok());
        ResultCache {
            inner: Mutex::new(Inner::default()),
            budget: budget.max(1),
            spill_dir,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex means a panic while holding the lock; the
        // cache's state is a plain map + counters, still structurally
        // sound, so recover rather than wedging the whole daemon.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spill_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.spill_dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.hex())))
    }

    /// Looks up `key`, refreshing recency. Falls back to the spill
    /// directory and promotes disk hits back into memory.
    pub fn get(&self, key: CacheKey) -> Option<Arc<String>> {
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&key) {
                e.tick = tick;
                return Some(Arc::clone(&e.bytes));
            }
        }
        let path = self.spill_path(key)?;
        let raw = std::fs::read_to_string(&path).ok()?;
        let Some(payload) = verify_spill(&raw) else {
            // Corrupt, truncated, or stale-format entry: delete it and
            // report a miss so the caller recomputes from scratch.
            let _ = std::fs::remove_file(&path);
            return None;
        };
        let bytes = Arc::new(payload.to_owned());
        self.insert(key, Arc::clone(&bytes));
        Some(bytes)
    }

    /// Inserts `bytes` under `key`, evicting least-recently-used entries
    /// until the byte budget holds. Returns how many entries were
    /// evicted. An entry bigger than the whole budget is spilled (when
    /// configured) but not kept in memory.
    pub fn put(&self, key: CacheKey, bytes: String) -> u64 {
        self.insert(key, Arc::new(bytes))
    }

    /// [`put`](Self::put) for payloads the caller also keeps a handle to.
    pub fn put_shared(&self, key: CacheKey, bytes: Arc<String>) -> u64 {
        self.insert(key, bytes)
    }

    fn insert(&self, key: CacheKey, bytes: Arc<String>) -> u64 {
        let len = bytes.len() as u64;
        if len > self.budget {
            self.spill(key, &bytes);
            return 0;
        }
        let mut evicted = 0;
        let mut spill_out: Vec<(CacheKey, Arc<String>)> = Vec::new();
        {
            let mut inner = self.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(old) = inner.map.insert(key, Entry { bytes, tick }) {
                inner.bytes -= old.bytes.len() as u64;
            }
            inner.bytes += len;
            while inner.bytes > self.budget {
                // Linear LRU scan: the cache holds large-ish rendered
                // results, so entry counts stay small compared to the
                // cost of one compile; no ordered index needed.
                let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.tick) else {
                    break;
                };
                if victim == key {
                    // Never evict what we just inserted.
                    break;
                }
                let e = inner.map.remove(&victim).expect("victim present");
                inner.bytes -= e.bytes.len() as u64;
                spill_out.push((victim, e.bytes));
                evicted += 1;
            }
        }
        for (k, b) in spill_out {
            self.spill(k, &b);
        }
        evicted
    }

    fn spill(&self, key: CacheKey, bytes: &str) {
        if let Some(path) = self.spill_path(key) {
            // Write-then-rename so a crashed writer never leaves a torn
            // entry that a later get() could replay; the checksum header
            // catches everything rename atomicity cannot (bit rot, manual
            // edits, partial writes on non-atomic filesystems).
            let tmp = path.with_extension("tmp");
            let framed = format!("{SPILL_MAGIC} {:016x}\n{bytes}", payload_digest(bytes));
            if std::fs::write(&tmp, framed).is_ok() {
                let _ = std::fs::rename(&tmp, &path);
            }
        }
    }

    /// Chaos hook: writes `key`'s spill file with one payload byte
    /// flipped (the header keeps the digest of the *intact* payload, so
    /// verification is guaranteed to fail) and drops the in-memory copy.
    /// The next lookup must take the disk path, detect the corruption,
    /// delete the file, and recompute. Returns `true` when a corrupt file
    /// was written — requires a spill dir and a resident entry.
    pub fn corrupt_for_chaos(&self, key: CacheKey) -> bool {
        let Some(path) = self.spill_path(key) else {
            return false;
        };
        let bytes = {
            let mut inner = self.lock();
            let Some(e) = inner.map.remove(&key) else {
                return false;
            };
            inner.bytes -= e.bytes.len() as u64;
            e.bytes
        };
        let mut corrupt = bytes.as_bytes().to_vec();
        if let Some(b) = corrupt.last_mut() {
            *b ^= 0x01;
        }
        let framed = format!(
            "{SPILL_MAGIC} {:016x}\n{}",
            payload_digest(&bytes),
            String::from_utf8_lossy(&corrupt)
        );
        std::fs::write(&path, framed).is_ok()
    }

    /// Spills every in-memory entry to disk (no-op without a spill dir).
    /// Called on graceful shutdown. Returns the number of files written.
    pub fn flush(&self) -> usize {
        if self.spill_dir.is_none() {
            return 0;
        }
        let entries: Vec<(CacheKey, Arc<String>)> = {
            let inner = self.lock();
            inner
                .map
                .iter()
                .map(|(&k, e)| (k, Arc::clone(&e.bytes)))
                .collect()
        };
        let n = entries.len();
        for (k, b) in entries {
            self.spill(k, &b);
        }
        n
    }

    /// Current in-memory payload bytes.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// Current in-memory entry count.
    pub fn entries(&self) -> usize {
        self.lock().map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: u64) -> CacheKey {
        CacheKey::derive(&[n])
    }

    #[test]
    fn derive_is_stable_and_injective_on_parts() {
        assert_eq!(CacheKey::derive(&[1, 2]), CacheKey::derive(&[1, 2]));
        assert_ne!(CacheKey::derive(&[1, 2]), CacheKey::derive(&[2, 1]));
        assert_ne!(CacheKey::derive(&[1]), CacheKey::derive(&[1, 0]));
        // The two halves come from different seeds.
        let key = CacheKey::derive(&[42]);
        assert_ne!(key.0, key.1);
        assert_eq!(key.hex().len(), 32);
    }

    #[test]
    fn get_returns_exactly_what_put_stored() {
        let c = ResultCache::new(1 << 20, None);
        assert!(c.get(k(1)).is_none());
        c.put(k(1), "{\"ii\":3}".into());
        assert_eq!(c.get(k(1)).unwrap().as_str(), "{\"ii\":3}");
        assert_eq!(c.entries(), 1);
        assert_eq!(c.bytes(), 8);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let c = ResultCache::new(30, None);
        c.put(k(1), "a".repeat(12)); // 12 bytes
        c.put(k(2), "b".repeat(12)); // 24 bytes
        assert!(c.get(k(1)).is_some()); // refresh 1 → 2 is now LRU
        let evicted = c.put(k(3), "c".repeat(12)); // 36 > 30 → evict 2
        assert_eq!(evicted, 1);
        assert!(c.get(k(2)).is_none());
        assert!(c.get(k(1)).is_some());
        assert!(c.get(k(3)).is_some());
        assert!(c.bytes() <= 30);
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let c = ResultCache::new(8, None);
        assert_eq!(c.put(k(1), "x".repeat(64)), 0);
        assert_eq!(c.entries(), 0);
        assert!(c.get(k(1)).is_none());
    }

    #[test]
    fn spill_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("iced-svc-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let c = ResultCache::new(1 << 20, Some(dir.clone()));
            c.put(k(9), "{\"cycles\":99}".into());
            assert_eq!(c.flush(), 1);
        }
        // A fresh cache instance (new process, conceptually) hits disk.
        let c2 = ResultCache::new(1 << 20, Some(dir.clone()));
        assert_eq!(c2.get(k(9)).unwrap().as_str(), "{\"cycles\":99}");
        // And the hit was promoted into memory.
        assert_eq!(c2.entries(), 1);
        assert!(c2.get(k(10)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_spill_file_is_a_miss_and_gets_deleted() {
        let dir =
            std::env::temp_dir().join(format!("iced-svc-corrupt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ResultCache::new(1 << 20, Some(dir.clone()));
        c.put(k(5), "{\"ops\":12345}".into());
        assert_eq!(c.flush(), 1);
        let path = dir.join(format!("{}.json", k(5).hex()));
        // Flip one payload byte on disk, as a failing sector would.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, bytes).unwrap();
        // A fresh cache must refuse the corrupt entry (miss, not bad data)
        // and remove it so it is never re-read.
        let c2 = ResultCache::new(1 << 20, Some(dir.clone()));
        assert!(c2.get(k(5)).is_none());
        assert!(!path.exists(), "corrupt spill file must be deleted");
        // The entry recomputes cold and round-trips cleanly again.
        c2.put(k(5), "{\"ops\":12345}".into());
        assert_eq!(c2.flush(), 1);
        assert_eq!(
            ResultCache::new(1 << 20, Some(dir.clone()))
                .get(k(5))
                .unwrap()
                .as_str(),
            "{\"ops\":12345}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_headerless_spill_files_are_misses() {
        let dir = std::env::temp_dir().join(format!("iced-svc-trunc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let c = ResultCache::new(1 << 20, Some(dir.clone()));
        // Headerless (legacy / hand-written) file.
        let p1 = dir.join(format!("{}.json", k(1).hex()));
        std::fs::write(&p1, "{\"ii\":3}").unwrap();
        assert!(c.get(k(1)).is_none());
        assert!(!p1.exists());
        // Header present but payload cut short mid-write.
        c.put(k(2), "x".repeat(64));
        assert_eq!(c.flush(), 1);
        let p2 = dir.join(format!("{}.json", k(2).hex()));
        let full = std::fs::read_to_string(&p2).unwrap();
        std::fs::write(&p2, &full[..full.len() - 7]).unwrap();
        let c2 = ResultCache::new(1 << 20, Some(dir.clone()));
        assert!(c2.get(k(2)).is_none());
        assert!(!p2.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_corruption_forces_the_recovery_path() {
        let dir = std::env::temp_dir().join(format!("iced-svc-chaos-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ResultCache::new(1 << 20, Some(dir.clone()));
        // No spill dir → no-op.
        assert!(!ResultCache::new(1 << 20, None).corrupt_for_chaos(k(3)));
        // Entry not resident → no-op.
        assert!(!c.corrupt_for_chaos(k(3)));
        c.put(k(3), "{\"ii\":4}".into());
        assert!(c.corrupt_for_chaos(k(3)));
        assert_eq!(c.entries(), 0, "in-memory copy dropped");
        // The poisoned disk copy is detected, deleted, and missed.
        assert!(c.get(k(3)).is_none());
        assert!(!dir.join(format!("{}.json", k(3).hex())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_spills_to_disk_when_configured() {
        let dir = std::env::temp_dir().join(format!("iced-svc-evict-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = ResultCache::new(16, Some(dir.clone()));
        c.put(k(1), "a".repeat(10));
        c.put(k(2), "b".repeat(10)); // evicts 1 → spilled
        assert_eq!(c.entries(), 1);
        // Still reachable, via disk.
        assert_eq!(c.get(k(1)).unwrap().len(), 10);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
