//! The `iced-serviced` daemon binary.
//!
//! Configuration is environment-driven (see `ServiceConfig::from_env`):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `ICED_SVC_ADDR` | `127.0.0.1:9090` | bind address (`:0` = ephemeral) |
//! | `ICED_SVC_THREADS` | min(cores, 4) | worker pool size |
//! | `ICED_SVC_QUEUE` | 64 | request queue capacity |
//! | `ICED_SVC_CACHE_MB` | 64 | in-memory cache budget |
//! | `ICED_SVC_CACHE_BYTES` | unset | exact cache budget in bytes, overrides `CACHE_MB` |
//! | `ICED_SVC_CACHE_DIR` | unset | disk-spill directory (off when unset) |
//! | `ICED_SVC_CHAOS` | unset | chaos-injection seed (number or label; off when unset) |
//! | `ICED_SVC_PIPELINE` | 32 | max unanswered requests per connection |
//! | `ICED_SVC_MAX_CONNS` | 4096 | max open connections (further connects refused) |
//! | `ICED_SVC_LOG` | unset | JSONL event-log path (logging off when unset) |
//! | `ICED_SVC_LOG_LEVEL` | `info` | minimum severity: `error`, `warn`, `info`, `debug` |
//!
//! The process runs until a client sends the `shutdown` verb, then drains
//! in-flight work, flushes the cache, and exits 0.

use iced_service::{Level, Server, ServiceConfig};

fn main() {
    let mut cfg = ServiceConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                if let Some(a) = args.next() {
                    cfg.addr = a;
                }
            }
            "--threads" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.threads = n;
                }
            }
            "--queue" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.queue_cap = n;
                }
            }
            "--cache-mb" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.cache_mb = n;
                }
            }
            "--cache-bytes" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.cache_bytes = Some(n);
                }
            }
            "--cache-dir" => {
                cfg.cache_dir = args.next().map(std::path::PathBuf::from);
            }
            "--chaos" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.chaos = Some(n);
                }
            }
            "--pipeline" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.pipeline = n;
                }
            }
            "--max-conns" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.max_conns = n;
                }
            }
            "--log" => {
                cfg.log_path = args.next().map(std::path::PathBuf::from);
            }
            "--log-level" => {
                if let Some(l) = args.next().and_then(|v| Level::parse(&v)) {
                    cfg.log_level = l;
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: iced-serviced [--addr HOST:PORT] [--threads N] [--queue N] \
                     [--cache-mb N] [--cache-bytes N] [--cache-dir PATH] [--chaos SEED] \
                     [--pipeline N] [--max-conns N] \
                     [--log PATH] [--log-level error|warn|info|debug]\n\
                     env: ICED_SVC_ADDR ICED_SVC_THREADS ICED_SVC_QUEUE \
                     ICED_SVC_CACHE_MB ICED_SVC_CACHE_BYTES ICED_SVC_CACHE_DIR ICED_SVC_CHAOS \
                     ICED_SVC_PIPELINE ICED_SVC_MAX_CONNS \
                     ICED_SVC_LOG ICED_SVC_LOG_LEVEL"
                );
                return;
            }
            other => {
                eprintln!("iced-serviced: unknown argument '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    }
    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("iced-serviced: failed to bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // Stdout line protocol for supervisors: the bound address, flushed
    // before any request is served (svc_load waits for this).
    println!("iced-serviced listening on {}", server.local_addr());
    if let Some(seed) = cfg.chaos {
        println!("iced-serviced: chaos injection ACTIVE (seed {seed:#x})");
    }
    server.wait();
    println!("iced-serviced: drained and stopped");
}
