//! The `iced-routerd` cluster router binary.
//!
//! Speaks the same newline-delimited JSON protocol as `iced-serviced` on
//! its client port, and forwards each request to one of N backend shards
//! by rendezvous-hashing its cache key. Configuration is
//! environment-driven (see `RouterConfig::from_env`):
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `ICED_SVC_ADDR` | `127.0.0.1:9191` | bind address (`:0` = ephemeral) |
//! | `ICED_SVC_SHARDS` | unset (required) | comma-separated backend `host:port` list |
//! | `ICED_SVC_REPLICATE_HOT` | 3 | warm hits before replicating to the successor shard (0 = off) |
//! | `ICED_SVC_PIPELINE` | 32 | max unanswered requests per client connection |
//! | `ICED_SVC_MAX_CONNS` | 4096 | max open client connections (further connects refused) |
//!
//! The process runs until a client sends the `shutdown` verb, then
//! forwards the shutdown to every shard, drains in-flight work, and
//! exits 0 — shutting the whole cluster down as one unit.

use iced_service::{Router, RouterConfig};

fn main() {
    let mut cfg = RouterConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                if let Some(a) = args.next() {
                    cfg.addr = a;
                }
            }
            "--shards" => {
                if let Some(list) = args.next() {
                    cfg.shards = list
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect();
                }
            }
            "--replicate-hot" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.replicate_hot = n;
                }
            }
            "--pipeline" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.pipeline = n;
                }
            }
            "--max-conns" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    cfg.max_conns = n;
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: iced-routerd --shards HOST:PORT[,HOST:PORT...] \
                     [--addr HOST:PORT] [--replicate-hot K] \
                     [--pipeline N] [--max-conns N]\n\
                     env: ICED_SVC_ADDR ICED_SVC_SHARDS ICED_SVC_REPLICATE_HOT \
                     ICED_SVC_PIPELINE ICED_SVC_MAX_CONNS"
                );
                return;
            }
            other => {
                eprintln!("iced-routerd: unknown argument '{other}' (see --help)");
                std::process::exit(2);
            }
        }
    }
    if cfg.shards.is_empty() {
        eprintln!("iced-routerd: no shards configured (set ICED_SVC_SHARDS or pass --shards)");
        std::process::exit(2);
    }
    let router = match Router::start(cfg.clone()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("iced-routerd: failed to bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // Stdout line protocol for supervisors: the bound address, flushed
    // before any request is served (svc_load waits for this).
    println!("iced-routerd listening on {}", router.local_addr());
    println!(
        "iced-routerd: {} shard(s), replicate-hot {}",
        cfg.shards.len(),
        cfg.replicate_hot
    );
    router.wait();
    println!("iced-routerd: drained and stopped");
}
