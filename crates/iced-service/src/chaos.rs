//! Deterministic chaos injection for resilience testing.
//!
//! When `ICED_SVC_CHAOS=<seed>` is set (or [`ServiceConfig::chaos`] is
//! populated), the daemon deliberately sabotages itself at three sites:
//!
//! * **worker panic** (~5% of work requests) — a panic inside the worker's
//!   `catch_unwind` scope, which must surface as a structured `internal`
//!   error, never a dead worker;
//! * **write drop** (~5% of response writes) — half the response bytes are
//!   written and the socket is shut down, as a failing NIC or killed peer
//!   would; the connection dies, the daemon does not;
//! * **spill corruption** (~10% of cache inserts, spill dir only) — the
//!   entry's disk copy is written with a flipped payload byte and the
//!   in-memory copy dropped, forcing the next lookup through the cache's
//!   checksum-verify-and-recompute path.
//!
//! Faults are drawn from a counter-salted [`StableHasher`] stream, so a
//! given seed produces the same fault *decisions* in sequence per site —
//! which requests they land on still depends on thread interleaving, as
//! real faults would.
//!
//! [`ServiceConfig::chaos`]: crate::ServiceConfig#structfield.chaos

use std::sync::atomic::{AtomicU64, Ordering};

use iced_hash::StableHasher;

/// Per-mille fault rates, fixed so a chaos run's failure mix is predictable.
const PANIC_PER_MILLE: u64 = 50;
const DROP_PER_MILLE: u64 = 50;
const CORRUPT_PER_MILLE: u64 = 100;

/// Site salts keep the three decision streams independent: a panic roll
/// never consumes a corruption roll's position.
const SITE_PANIC: u64 = 0x1ced_c401;
const SITE_DROP: u64 = 0x1ced_c402;
const SITE_CORRUPT: u64 = 0x1ced_c403;

/// A seeded source of fault decisions, shared by every worker and reader.
#[derive(Debug)]
pub struct ChaosInjector {
    seed: u64,
    panics: AtomicU64,
    drops: AtomicU64,
    corruptions: AtomicU64,
}

impl ChaosInjector {
    /// Creates an injector for `seed`.
    pub fn new(seed: u64) -> ChaosInjector {
        ChaosInjector {
            seed,
            panics: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
        }
    }

    /// Parses `ICED_SVC_CHAOS`: unset or empty disables chaos; a decimal
    /// or `0x` hex literal is the seed; any other string is hashed so
    /// `ICED_SVC_CHAOS=ci-nightly` works too.
    pub fn seed_from_env() -> Option<u64> {
        let raw = std::env::var("ICED_SVC_CHAOS").ok()?;
        let raw = raw.trim();
        if raw.is_empty() || raw == "0" {
            return None;
        }
        if let Some(hex) = raw.strip_prefix("0x") {
            if let Ok(v) = u64::from_str_radix(hex, 16) {
                return Some(v);
            }
        }
        if let Ok(v) = raw.parse::<u64>() {
            return Some(v);
        }
        let mut h = StableHasher::with_seed(0x1ced_c400);
        h.write_str(raw);
        Some(h.finish())
    }

    /// One fault decision: draw `counter`'s roll from `site`'s stream and
    /// fire when it lands under `per_mille`.
    fn roll(&self, site: u64, counter: &AtomicU64, per_mille: u64) -> bool {
        let n = counter.fetch_add(1, Ordering::Relaxed);
        let mut h = StableHasher::with_seed(self.seed);
        h.write_u64(site);
        h.write_u64(n);
        h.finish() % 1000 < per_mille
    }

    /// Should this work request panic in the worker?
    pub fn worker_panic(&self) -> bool {
        self.roll(SITE_PANIC, &self.panics, PANIC_PER_MILLE)
    }

    /// Should this response write be torn and the socket dropped?
    pub fn drop_write(&self) -> bool {
        self.roll(SITE_DROP, &self.drops, DROP_PER_MILLE)
    }

    /// Should this cache insert's disk spill be corrupted?
    pub fn corrupt_spill(&self) -> bool {
        self.roll(SITE_CORRUPT, &self.corruptions, CORRUPT_PER_MILLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_streams_are_deterministic_per_seed() {
        let a = ChaosInjector::new(42);
        let b = ChaosInjector::new(42);
        let seq_a: Vec<bool> = (0..256).map(|_| a.worker_panic()).collect();
        let seq_b: Vec<bool> = (0..256).map(|_| b.worker_panic()).collect();
        assert_eq!(seq_a, seq_b);
        // A different seed gives a different stream.
        let c = ChaosInjector::new(43);
        let seq_c: Vec<bool> = (0..256).map(|_| c.worker_panic()).collect();
        assert_ne!(seq_a, seq_c);
    }

    #[test]
    fn fault_rates_land_near_their_targets() {
        let inj = ChaosInjector::new(0x5EED);
        let n = 20_000;
        let panics = (0..n).filter(|_| inj.worker_panic()).count();
        let drops = (0..n).filter(|_| inj.drop_write()).count();
        let corruptions = (0..n).filter(|_| inj.corrupt_spill()).count();
        // 5% / 5% / 10% with generous tolerance: determinism makes these
        // exact for a fixed seed, the bound just documents the intent.
        assert!((800..1200).contains(&panics), "{panics}");
        assert!((800..1200).contains(&drops), "{drops}");
        assert!((1700..2300).contains(&corruptions), "{corruptions}");
    }

    #[test]
    fn sites_draw_from_independent_streams() {
        // Consuming one site's stream must not shift another's.
        let a = ChaosInjector::new(7);
        let b = ChaosInjector::new(7);
        for _ in 0..100 {
            let _ = a.worker_panic();
        }
        let drops_a: Vec<bool> = (0..100).map(|_| a.drop_write()).collect();
        let drops_b: Vec<bool> = (0..100).map(|_| b.drop_write()).collect();
        assert_eq!(drops_a, drops_b);
    }

    #[test]
    fn env_seed_parsing_accepts_decimal_hex_and_labels() {
        // seed_from_env reads the real environment; exercise the parsing
        // arms through a scoped set/unset. Tests in this module run on one
        // process-global env, so keep it self-contained.
        std::env::set_var("ICED_SVC_CHAOS", "12345");
        assert_eq!(ChaosInjector::seed_from_env(), Some(12345));
        std::env::set_var("ICED_SVC_CHAOS", "0xdead");
        assert_eq!(ChaosInjector::seed_from_env(), Some(0xdead));
        std::env::set_var("ICED_SVC_CHAOS", "ci-nightly");
        let labeled = ChaosInjector::seed_from_env();
        assert!(labeled.is_some());
        assert_eq!(labeled, ChaosInjector::seed_from_env(), "stable hash");
        std::env::set_var("ICED_SVC_CHAOS", "0");
        assert_eq!(ChaosInjector::seed_from_env(), None);
        std::env::remove_var("ICED_SVC_CHAOS");
        assert_eq!(ChaosInjector::seed_from_env(), None);
    }
}
