//! A minimal, defensive JSON reader/writer for the wire protocol.
//!
//! The workspace is std-only, so this module hand-rolls the subset of JSON
//! the service needs. The parser is written for hostile input: it never
//! panics, bounds its recursion depth, and rejects trailing garbage. The
//! writer always emits object fields in the order they were inserted,
//! which is what lets the cache store *serialized response bytes* and
//! replay them verbatim (warm responses must be byte-identical to cold
//! ones).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`parse`]. Requests are flat objects;
/// anything deeper than this is an attack or a bug, not a workload.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; the protocol's integers fit exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` for deterministic iteration; field order in
    /// *emitted* JSON is controlled by [`Obj`], not by this map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= u64::MAX as f64 && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// A parse failure: position plus a short message. Never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser had reached.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // consume '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept well-formed pairs,
                            // reject lone surrogates rather than panicking.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                self.eat("\\u")
                                    .map_err(|_| self.err("lone high surrogate"))?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos on the digit after the
                            // escape; compensate for the += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy it through.
                    let s = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(s).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unrepresentable number"))
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }
}

/// Escapes `s` into `out` as a JSON string body (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// An insertion-ordered JSON object writer. The service's byte-identical
/// warm/cold guarantee rests on this: every response is rendered through
/// `Obj`, so equal logical content always serializes to equal bytes.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field, rendered with enough digits to round-trip.
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v:.6}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Adds a bool field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finishes the object and returns its JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_objects() {
        let v = parse(r#"{"verb":"compile","id":7,"kernel":"fir","warm":true}"#).unwrap();
        assert_eq!(v.get("verb").and_then(Value::as_str), Some("compile"));
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("warm").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"",
            "{\"a\":}",
            "[1,2",
            "tru",
            "\"unterminated",
            "{\"a\":1}x",
            "nul",
            "{\"a\":+1}",
            "\u{7}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\q\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(80) + &"]".repeat(80);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + "1" + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut esc = String::new();
        escape_into(&mut esc, "a\"b\\c\nd\te\u{1}f µ");
        let back = parse(&format!("\"{esc}\"")).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\nd\te\u{1}f µ".into()));
        // Surrogate-pair escape decodes to the astral character.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("\u{1f600}".into())
        );
    }

    #[test]
    fn obj_writer_preserves_insertion_order() {
        let s = Obj::new()
            .u64("id", 1)
            .bool("ok", true)
            .str("verb", "healthz")
            .raw("result", "{}")
            .finish();
        assert_eq!(s, r#"{"id":1,"ok":true,"verb":"healthz","result":{}}"#);
    }

    #[test]
    fn numbers_parse_with_exponents_and_fractions() {
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("-2").unwrap().as_f64(), Some(-2.0));
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
