//! End-to-end tests against a live daemon on an ephemeral port: concurrent
//! clients, warm-vs-cold byte identity, backpressure, graceful shutdown,
//! and malformed-input robustness.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use iced_service::{Server, ServiceConfig};

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn start(threads: usize, queue_cap: usize) -> (Server, SocketAddr) {
    let cfg = ServiceConfig {
        threads,
        queue_cap,
        ..ServiceConfig::default()
    };
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

/// Removes the per-request `"req":"cN-M"` token so envelopes from
/// different requests can be compared byte-for-byte.
fn strip_req(envelope: &str) -> String {
    match (envelope.find(",\"req\":\""), envelope.find("\",\"ok\"")) {
        (Some(a), Some(b)) if a < b => format!("{}{}", &envelope[..a], &envelope[b + 1..]),
        _ => envelope.to_string(),
    }
}

/// The `result` payload of a success envelope (everything the cache
/// stores). Panics if the response is not a success envelope.
fn result_payload(response: &str) -> &str {
    let idx = response
        .find("\"result\":")
        .unwrap_or_else(|| panic!("no result field in {response}"));
    &response[idx + "\"result\":".len()..response.len() - 1]
}

#[test]
fn eight_concurrent_clients_all_get_correct_answers() {
    let (server, addr) = start(4, 64);
    let kernels = [
        "fir",
        "latnrm",
        "fft",
        "dtw",
        "conv",
        "relu",
        "histogram",
        "mvt",
    ];
    let handles: Vec<_> = kernels
        .iter()
        .enumerate()
        .map(|(i, &kernel)| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                // Interleave a control verb to exercise the inline path.
                let health = c.round_trip(&format!("{{\"id\":{i},\"verb\":\"healthz\"}}"));
                assert!(health.contains("\"ok\":true"), "{health}");
                let id = 100 + i;
                let resp = c.round_trip(&format!(
                    "{{\"id\":{id},\"verb\":\"compile\",\"kernel\":\"{kernel}\"}}"
                ));
                assert!(resp.contains("\"ok\":true"), "{kernel}: {resp}");
                assert!(
                    resp.starts_with(&format!("{{\"id\":{id},")),
                    "id must echo: {resp}"
                );
                assert!(resp.contains("\"ii\":"), "{resp}");
                assert!(resp.contains("\"bitstream_words\":"), "{resp}");
                resp
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown();
    server.wait();
}

#[test]
fn warm_cache_replays_cold_bytes_verbatim() {
    let (server, addr) = start(2, 16);
    let mut c = Client::connect(addr);
    let req = r#"{"id":1,"verb":"compile","kernel":"fft","unroll":2}"#;

    let t_cold = Instant::now();
    let cold = c.round_trip(req);
    let cold_latency = t_cold.elapsed();
    assert!(cold.contains("\"cached\":false"), "{cold}");

    let t_warm = Instant::now();
    let warm = c.round_trip(req);
    let warm_latency = t_warm.elapsed();
    assert!(warm.contains("\"cached\":true"), "{warm}");

    // The payload must be byte-identical; only the cached marker and the
    // per-request id differ.
    assert_eq!(result_payload(&cold), result_payload(&warm));
    assert_eq!(
        strip_req(&cold).replace("\"cached\":false", "\"cached\":true"),
        strip_req(&warm),
        "envelopes differ beyond the cached flag and req token"
    );
    // A warm hit skips the mapper entirely; even allowing wild scheduler
    // noise it must undercut the cold compile.
    assert!(
        warm_latency < cold_latency,
        "warm {warm_latency:?} not faster than cold {cold_latency:?}"
    );

    // Same kernel requested through a second connection also hits.
    let mut c2 = Client::connect(addr);
    let again = c2.round_trip(req);
    assert!(again.contains("\"cached\":true"), "{again}");
    assert_eq!(result_payload(&cold), result_payload(&again));

    // An equivalent request with different serving knobs (deadline) is
    // the same content address — still a hit.
    let knob =
        c.round_trip(r#"{"id":9,"verb":"compile","kernel":"fft","unroll":2,"deadline_ms":60000}"#);
    assert!(knob.contains("\"cached\":true"), "{knob}");

    server.shutdown();
    server.wait();
}

#[test]
fn saturated_queue_answers_queue_full_not_silence() {
    // One worker, queue bound 1: pipelining several slow jobs must
    // overflow deterministically.
    let (server, addr) = start(1, 1);
    let mut c = Client::connect(addr);
    for i in 0..4 {
        // Distinct seeds defeat the cache; 200k iterations keeps the
        // worker busy long after the pipelined lines land.
        c.send(&format!(
            "{{\"id\":{i},\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":200000,\"seed\":{i}}}"
        ));
    }
    let responses: Vec<String> = (0..4).map(|_| c.recv()).collect();
    let full = responses
        .iter()
        .filter(|r| r.contains("\"code\":\"queue_full\""))
        .count();
    let ok = responses
        .iter()
        .filter(|r| r.contains("\"ok\":true"))
        .count();
    assert!(full >= 1, "expected at least one queue_full: {responses:?}");
    assert!(ok >= 1, "expected at least one success: {responses:?}");
    assert_eq!(full + ok, 4, "every request gets exactly one answer");
    // Backpressure responses carry the retry contract fields.
    let reject = responses.iter().find(|r| r.contains("queue_full")).unwrap();
    assert!(reject.contains("\"ok\":false"), "{reject}");
    assert!(reject.contains("\"message\":"), "{reject}");

    // The server is still healthy afterwards.
    let health = c.round_trip(r#"{"id":50,"verb":"healthz"}"#);
    assert!(health.contains("\"ok\":true"), "{health}");
    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_drains_in_flight_work_before_closing() {
    let (server, addr) = start(1, 4);
    let mut a = Client::connect(addr);
    let mut b = Client::connect(addr);

    // A's job occupies the single worker for a while.
    a.send(r#"{"id":1,"verb":"simulate","kernel":"fir","iterations":300000}"#);
    // Give the worker a moment to pick it up.
    std::thread::sleep(Duration::from_millis(100));

    // B asks for shutdown and is answered immediately.
    let bye = b.round_trip(r#"{"id":2,"verb":"shutdown"}"#);
    assert!(bye.contains("\"ok\":true"), "{bye}");
    assert!(bye.contains("\"state\":\"draining\""), "{bye}");

    // New work is refused while draining…
    let refused = b.round_trip(r#"{"id":3,"verb":"compile","kernel":"fir"}"#);
    assert!(refused.contains("\"shutting_down\""), "{refused}");

    // …but A's accepted request still completes before sockets close.
    let slow = a.recv();
    assert!(slow.contains("\"ok\":true"), "in-flight dropped: {slow}");
    assert!(slow.contains("\"cycles\":"), "{slow}");

    server.wait();

    // After the drain the daemon is really gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener should be closed after wait()"
    );
}

#[test]
fn malformed_input_never_kills_the_server() {
    let (server, addr) = start(2, 8);
    let mut c = Client::connect(addr);
    let garbage: &[&str] = &[
        "{",
        "}",
        "garbage",
        "\"just a string\"",
        "[1,2,3]",
        "{\"verb\":42}",
        "{\"verb\":\"compile\"}",
        "{\"verb\":\"compile\",\"kernel\":\"fir\",\"dfg\":\"dfg x\"}",
        "{\"verb\":\"compile\",\"kernel\":\"no-such-kernel\"}",
        "{\"verb\":\"compile\",\"dfg\":\"node without header\"}",
        "{\"id\":-5,\"verb\":\"healthz\"}",
        "{\"id\":1,\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":1e300}",
        "{\"verb\":\"stream\",\"pipeline\":\"warp-drive\"}",
        "{\"id\":1,\"verb\":\"compile\",\"kernel\":\"fir\",\"unroll\":7}",
        "\\u0000\\u0001",
    ];
    for (i, g) in garbage.iter().enumerate() {
        let resp = c.round_trip(g);
        assert!(
            resp.contains("\"ok\":false"),
            "garbage #{i} {g:?} got {resp}"
        );
        assert!(resp.contains("\"code\":"), "garbage #{i}: {resp}");
    }

    // Truncated JSON mid-string, deep nesting, and an over-long line.
    let deep = "[".repeat(200) + &"]".repeat(200);
    let resp = c.round_trip(&deep);
    assert!(resp.contains("\"ok\":false"), "{resp}");
    let huge = format!(
        "{{\"verb\":\"compile\",\"pad\":\"{}\"}}",
        "x".repeat(2 << 20)
    );
    let resp = c.round_trip(&huge);
    assert!(resp.contains("too_large"), "{resp}");

    // A raw binary blast (invalid UTF-8) on a fresh connection.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
    let mut line = String::new();
    BufReader::new(raw.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("\"ok\":false"), "{line}");

    // After all that abuse the daemon still does real work.
    let resp = c.round_trip(r#"{"id":77,"verb":"compile","kernel":"fir"}"#);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let metrics = c.round_trip(r#"{"id":78,"verb":"metrics"}"#);
    assert!(metrics.contains("\"errors\":"), "{metrics}");
    server.shutdown();
    server.wait();
}

#[test]
fn stream_and_simulate_verbs_return_reports() {
    let (server, addr) = start(2, 8);
    let mut c = Client::connect(addr);
    let sim =
        c.round_trip(r#"{"id":1,"verb":"simulate","kernel":"fir","iterations":1000,"seed":3}"#);
    assert!(sim.contains("\"ok\":true"), "{sim}");
    assert!(sim.contains("\"cycles\":"), "{sim}");
    assert!(sim.contains("\"fu_activity\":"), "{sim}");

    let stream = c.round_trip(
        r#"{"id":2,"verb":"stream","pipeline":"gcn","policy":"iced","inputs":20,"seed":5}"#,
    );
    assert!(stream.contains("\"ok\":true"), "{stream}");
    assert!(stream.contains("\"throughput\":"), "{stream}");
    assert!(stream.contains("\"perf_per_watt\":"), "{stream}");

    // Stream results are cached too.
    let warm = c.round_trip(
        r#"{"id":3,"verb":"stream","pipeline":"gcn","policy":"iced","inputs":20,"seed":5}"#,
    );
    assert!(warm.contains("\"cached\":true"), "{warm}");
    assert_eq!(result_payload(&stream), result_payload(&warm));

    // A tiny mapping deadline surfaces as a typed error, not a hang.
    let dead = c.round_trip(
        r#"{"id":4,"verb":"compile","kernel":"fft","unroll":2,"strategy":"baseline","deadline_ms":0}"#,
    );
    assert!(dead.contains("\"deadline_exceeded\""), "{dead}");
    server.shutdown();
    server.wait();
}

#[test]
fn exact_strategy_is_certified_cache_keyed_and_byte_stable() {
    let (server, addr) = start(2, 16);
    let mut c = Client::connect(addr);
    // Warm the heuristic entry first: the exact request for the same
    // kernel must not hit it — the backend is part of the cache key.
    let heur = c.round_trip(r#"{"id":1,"verb":"compile","kernel":"relu"}"#);
    assert!(heur.contains("\"cached\":false"), "{heur}");
    let cold = c.round_trip(r#"{"id":2,"verb":"compile","kernel":"relu","strategy":"exact"}"#);
    assert!(
        cold.contains("\"cached\":false"),
        "exact warm-hit a heuristic entry: {cold}"
    );
    assert!(cold.contains("\"strategy\":\"exact\""), "{cold}");
    assert!(cold.contains("\"proof\":"), "{cold}");
    assert!(cold.contains("\"lower_bound\":"), "{cold}");
    assert!(cold.contains("\"nodes_explored\":"), "{cold}");

    // Warm exact responses replay the cold bytes verbatim.
    let warm = c.round_trip(r#"{"id":3,"verb":"compile","kernel":"relu","strategy":"exact"}"#);
    assert!(warm.contains("\"cached\":true"), "{warm}");
    assert_eq!(result_payload(&cold), result_payload(&warm));

    // "heuristic" aliases the default heuristic: same cache entry and
    // the same rendered bytes as the implicit/explicit "iced" request.
    let alias = c.round_trip(r#"{"id":4,"verb":"compile","kernel":"relu","strategy":"heuristic"}"#);
    assert!(alias.contains("\"cached\":true"), "{alias}");
    assert_eq!(result_payload(&heur), result_payload(&alias));

    // "auto" resolves by node count and shares the resolved backend's
    // cache entry — whichever side of the threshold relu falls on.
    let nodes = iced::kernels::Kernel::Relu
        .dfg(iced::kernels::UnrollFactor::X1)
        .node_count();
    let auto = c.round_trip(r#"{"id":5,"verb":"compile","kernel":"relu","strategy":"auto"}"#);
    assert!(auto.contains("\"cached\":true"), "{auto}");
    let expected = if iced::exact::auto_prefers_exact(nodes) {
        &cold
    } else {
        &heur
    };
    assert_eq!(result_payload(expected), result_payload(&auto));

    // The extended knob keeps its typed rejection for unknown names.
    let bad = c.round_trip(r#"{"id":6,"verb":"compile","kernel":"relu","strategy":"optimal"}"#);
    assert!(bad.contains("\"ok\":false"), "{bad}");
    assert!(
        bad.contains("exact"),
        "error must list the new names: {bad}"
    );

    server.shutdown();
    server.wait();
}
