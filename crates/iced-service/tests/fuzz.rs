//! Parser fuzzing: the protocol layer must never panic, whatever bytes
//! arrive. Valid requests are mutated (bit flips, truncations, splices)
//! and raw byte soup is thrown at both the JSON parser and the request
//! parser; every rejection must itself render as well-formed JSON.

use iced_service::json;
use iced_service::proto::{parse_request, render_err};
use proptest::prelude::*;

/// Valid requests of every verb, used as mutation seeds so the fuzzer
/// spends its budget near the accepted grammar instead of deep in noise.
const TEMPLATES: [&str; 8] = [
    r#"{"id":1,"verb":"healthz"}"#,
    r#"{"id":2,"verb":"metrics"}"#,
    r#"{"id":3,"verb":"shutdown"}"#,
    r#"{"id":4,"verb":"compile","kernel":"fir","strategy":"iced"}"#,
    r#"{"id":5,"verb":"compile","kernel":"fft","unroll":2,"deadline_ms":1000}"#,
    r#"{"id":6,"verb":"simulate","kernel":"spmv","iterations":500,"seed":7}"#,
    r#"{"id":7,"verb":"stream","pipeline":"gcn","policy":"drips","inputs":20,"seed":9}"#,
    r#"{"id":8,"verb":"compile","dfg":"dfg t\nnode a const\nnode b add a a"}"#,
];

/// Splitmix-style step; cheap, deterministic, good enough to spray bytes.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Applies a few seeded mutations: byte flips, truncation, and splicing
/// a chunk of the input onto itself.
fn mutate(bytes: &mut Vec<u8>, seed: u64) {
    let mut s = seed | 1;
    for _ in 0..1 + next(&mut s) % 4 {
        if bytes.is_empty() {
            return;
        }
        match next(&mut s) % 4 {
            0 => {
                let i = (next(&mut s) as usize) % bytes.len();
                bytes[i] ^= (next(&mut s) % 255 + 1) as u8;
            }
            1 => {
                let at = (next(&mut s) as usize) % bytes.len();
                bytes.truncate(at);
            }
            2 => {
                let from = (next(&mut s) as usize) % bytes.len();
                let at = (next(&mut s) as usize) % (bytes.len() + 1);
                let chunk: Vec<u8> = bytes[from..].to_vec();
                bytes.splice(at..at, chunk);
            }
            _ => {
                let i = (next(&mut s) as usize) % (bytes.len() + 1);
                bytes.insert(i, (next(&mut s) % 256) as u8);
            }
        }
    }
}

/// Feeds one line through the full parse path, checking the invariants:
/// no panic (implicit), and every rejection renders as parseable JSON.
fn assert_total(line: &str) {
    let _ = json::parse(line);
    if let Err(e) = parse_request(line) {
        let rendered = render_err(e.id, None, e.verb, &e.error);
        assert!(
            json::parse(&rendered).is_ok(),
            "error envelope must be well-formed JSON: {rendered}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn mutated_requests_never_panic_the_parsers(t in 0usize..8, seed in any::<u64>()) {
        let mut bytes = TEMPLATES[t].as_bytes().to_vec();
        mutate(&mut bytes, seed);
        let line = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&line);
    }

    #[test]
    fn raw_byte_soup_never_panics_the_parsers(seed in any::<u64>(), len in 0usize..512) {
        let mut s = seed | 1;
        let bytes: Vec<u8> = (0..len).map(|_| (next(&mut s) % 256) as u8).collect();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        assert_total(&line);
    }

    #[test]
    fn valid_templates_with_json_noise_fields_stay_total(t in 0usize..8, seed in any::<u64>()) {
        // Inject an unknown field with hostile content into a valid
        // request: the parser must either accept or reject it cleanly.
        let noise = format!("\"x{}\":\"{}\"", seed % 10, "\\u0000\\\"".repeat((seed % 5) as usize));
        let line = TEMPLATES[t].replacen('{', &format!("{{{noise},"), 1);
        assert_total(&line);
    }
}
