//! Observability suite: enriched `healthz`, structured worker-panic
//! errors that carry the request id and panic payload into both the
//! envelope and the JSONL event log, and the `stats`/Prometheus
//! expositions over the wire.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use iced_service::{ChaosInjector, Server, ServiceConfig};

/// A line-oriented test client with no retry discipline — chaos-injected
/// failures must be observed raw, not absorbed.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Raw {
    fn connect(addr: SocketAddr) -> Raw {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Raw {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
        let mut out = String::new();
        let n = self.reader.read_line(&mut out).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        out.trim_end().to_string()
    }
}

fn start(cfg: ServiceConfig) -> (Server, SocketAddr) {
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

#[test]
fn healthz_reports_enriched_fields_in_deterministic_order() {
    let (server, addr) = start(ServiceConfig {
        threads: 3,
        queue_cap: 17,
        ..ServiceConfig::default()
    });
    let mut c = Raw::connect(addr);
    let health = c.round_trip(r#"{"id":1,"verb":"healthz"}"#);
    assert!(health.contains("\"ok\":true"), "{health}");

    // Every enriched field is present with its configured value…
    assert!(health.contains("\"status\":\"ok\""), "{health}");
    assert!(health.contains("\"role\":\"shard\""), "{health}");
    assert!(health.contains("\"state\":\"running\""), "{health}");
    assert!(
        health.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "{health}"
    );
    assert!(health.contains("\"uptime_s\":"), "{health}");
    assert!(health.contains("\"uptime_ms\":"), "{health}");
    assert!(health.contains("\"threads\":3"), "{health}");
    assert!(health.contains("\"queue_cap\":17"), "{health}");
    assert!(health.contains("\"queue_depth\":"), "{health}");
    assert!(health.contains("\"in_flight\":"), "{health}");
    assert!(health.contains("\"chaos_armed\":false"), "{health}");

    // …and the field order is deterministic, so two probes diff cleanly.
    let fields = [
        "\"status\":",
        "\"role\":",
        "\"state\":",
        "\"version\":",
        "\"uptime_s\":",
        "\"uptime_ms\":",
        "\"threads\":",
        "\"queue_cap\":",
        "\"queue_depth\":",
        "\"in_flight\":",
        "\"chaos_armed\":",
    ];
    let positions: Vec<usize> = fields
        .iter()
        .map(|f| health.find(f).unwrap_or_else(|| panic!("missing {f}")))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "healthz field order changed: {health}"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn worker_panic_surfaces_structured_error_and_logs_the_payload() {
    // Pick a chaos seed whose very first panic roll fires while the first
    // few write-drop rolls stay quiet, so the error envelope reaches the
    // client intact. Decision streams are deterministic per seed, so this
    // search is stable across runs.
    let seed = (1u64..10_000)
        .find(|&s| {
            let inj = ChaosInjector::new(s);
            inj.worker_panic() && (0..4).all(|_| !inj.drop_write())
        })
        .expect("a suitable chaos seed below 10000");

    let log = std::env::temp_dir().join(format!("iced-svc-obs-panic-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);
    let (server, addr) = start(ServiceConfig {
        threads: 1,
        queue_cap: 8,
        chaos: Some(seed),
        log_path: Some(log.clone()),
        ..ServiceConfig::default()
    });

    let mut c = Raw::connect(addr);
    let resp = c.round_trip(r#"{"id":7,"verb":"compile","kernel":"fir"}"#);

    // The lossy "see server log" of old is gone: the envelope itself
    // carries the captured panic payload and the request id.
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("\"req\":\"c1-1\""), "{resp}");
    assert!(resp.contains("\"code\":\"internal\""), "{resp}");
    assert!(
        resp.contains("request processing panicked: chaos: injected worker panic"),
        "panic payload must reach the client: {resp}"
    );
    assert!(resp.contains("\"entity\":\"c1-1\""), "{resp}");

    server.shutdown();
    server.wait(); // flushes and closes the event log

    let events = std::fs::read_to_string(&log).expect("event log written");
    let panic_line = events
        .lines()
        .find(|l| l.contains("\"event\":\"worker_panic\""))
        .unwrap_or_else(|| panic!("no worker_panic event in log:\n{events}"));
    assert!(panic_line.contains("\"level\":\"error\""), "{panic_line}");
    assert!(panic_line.contains("\"req\":\"c1-1\""), "{panic_line}");
    assert!(panic_line.contains("\"verb\":\"compile\""), "{panic_line}");
    assert!(
        panic_line.contains("\"payload\":\"chaos: injected worker panic\""),
        "{panic_line}"
    );
    // The injection site itself is also on record, same request id.
    let chaos_line = events
        .lines()
        .find(|l| l.contains("\"event\":\"chaos_panic\""))
        .unwrap_or_else(|| panic!("no chaos_panic event in log:\n{events}"));
    assert!(chaos_line.contains("\"req\":\"c1-1\""), "{chaos_line}");
    let _ = std::fs::remove_file(&log);
}

#[test]
fn stats_and_prometheus_expositions_work_over_the_wire() {
    let (server, addr) = start(ServiceConfig {
        threads: 2,
        queue_cap: 8,
        ..ServiceConfig::default()
    });
    let mut c = Raw::connect(addr);

    // Generate a little latency history first: a cold compile, a warm
    // replay, and a parse error.
    let cold = c.round_trip(r#"{"id":1,"verb":"compile","kernel":"fir"}"#);
    assert!(cold.contains("\"cached\":false"), "{cold}");
    let warm = c.round_trip(r#"{"id":2,"verb":"compile","kernel":"fir"}"#);
    assert!(warm.contains("\"cached\":true"), "{warm}");
    let bad = c.round_trip(r#"{"id":3,"verb":"compile","kernel":"no-such-kernel"}"#);
    assert!(bad.contains("\"unknown_kernel\""), "{bad}");

    // The default stats rendering: lifetime + window summaries per verb.
    let stats = c.round_trip(r#"{"id":4,"verb":"stats"}"#);
    assert!(stats.contains("\"ok\":true"), "{stats}");
    assert!(stats.contains("\"window_seconds\":60"), "{stats}");
    assert!(stats.contains("\"epoch_seconds\":10"), "{stats}");
    assert!(stats.contains("\"lifetime\":"), "{stats}");
    assert!(stats.contains("\"window\":"), "{stats}");
    assert!(stats.contains("\"p99_us\":"), "{stats}");

    // The Prometheus form embeds the text exposition as a JSON string.
    let prom = c.round_trip(r#"{"id":5,"verb":"stats","format":"prometheus"}"#);
    assert!(prom.contains("\"ok\":true"), "{prom}");
    assert!(prom.contains("\"format\":\"prometheus\""), "{prom}");
    for family in [
        "iced_svc_requests_total",
        "iced_svc_request_latency_us",
        "iced_svc_in_flight",
        "iced_svc_cache_hits_total",
        "iced_svc_uptime_seconds",
    ] {
        assert!(prom.contains(family), "missing {family}: {prom}");
    }
    assert!(prom.contains("# TYPE"), "{prom}");

    server.shutdown();
    server.wait();
}
