//! Chaos suite: a daemon running with `ICED_SVC_CHAOS` sabotages itself —
//! worker panics, torn response writes, spill-file corruption — while
//! concurrent clients hammer it with over a thousand requests through the
//! shared retrying [`Client`]. The daemon must answer every request with
//! either a success or a structured error, keep its cache honest, and
//! still drain cleanly on shutdown.

use std::time::Duration;

use iced_service::{Client, Server, ServiceConfig};

const CLIENTS: usize = 4;
const PER_CLIENT: usize = 300; // 1200 requests total

fn chaos_server(seed: u64, dir: &std::path::Path) -> Server {
    let cfg = ServiceConfig {
        threads: 4,
        queue_cap: 32,
        // A tiny memory budget keeps entries churning through the spill
        // path, so the corruption site actually gets exercised.
        cache_mb: 1,
        cache_dir: Some(dir.to_path_buf()),
        chaos: Some(seed),
        ..ServiceConfig::default()
    };
    Server::start(cfg).expect("bind ephemeral port")
}

/// Extracts `"field":<u64>` from a flat JSON rendering.
fn json_u64(s: &str, field: &str) -> u64 {
    let tag = format!("\"{field}\":");
    let at = s.find(&tag).unwrap_or_else(|| panic!("no {field} in {s}"));
    s[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("digits after field")
}

#[test]
fn daemon_survives_a_thousand_chaotic_requests() {
    let dir = std::env::temp_dir().join(format!("iced-svc-chaos-suite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = chaos_server(0xC4A05, &dir);
    let addr = server.local_addr().to_string();

    let kernels = ["fir", "relu", "histogram", "mvt"];
    let handles: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
                    .expect("daemon reachable")
                    .with_salt(ci as u64 + 1)
                    .with_limits(Duration::from_secs(60), 16);
                let (mut ok, mut structured) = (0usize, 0usize);
                for r in 0..PER_CLIENT {
                    // A mix that touches every path: compiles (cacheable),
                    // simulates with a few distinct seeds (hits and
                    // misses), control verbs, and some permanently-bad
                    // requests whose errors must stay structured even
                    // when chaos rages around them.
                    let line = match r % 6 {
                        0 => format!(
                            "{{\"id\":{r},\"verb\":\"compile\",\"kernel\":\"{}\"}}",
                            kernels[r / 6 % kernels.len()]
                        ),
                        1 | 2 => format!(
                            "{{\"id\":{r},\"verb\":\"simulate\",\"kernel\":\"fir\",\
                             \"iterations\":500,\"seed\":{}}}",
                            r % 8
                        ),
                        3 => format!("{{\"id\":{r},\"verb\":\"healthz\"}}"),
                        4 => format!(
                            "{{\"id\":{r},\"verb\":\"compile\",\"kernel\":\"no-such-kernel\"}}"
                        ),
                        _ => format!("{{\"id\":{r},\"verb\":\"metrics\"}}"),
                    };
                    let resp = c
                        .request(&line)
                        .unwrap_or_else(|e| panic!("client {ci} req {r} exhausted: {e}"));
                    if resp.contains("\"ok\":true") {
                        ok += 1;
                    } else {
                        // A permanent failure must be a structured
                        // {code, message} envelope, never silence or noise.
                        assert!(resp.contains("\"ok\":false"), "{resp}");
                        assert!(resp.contains("\"code\":\""), "{resp}");
                        assert!(resp.contains("\"message\":\""), "{resp}");
                        structured += 1;
                    }
                }
                (ok, structured)
            })
        })
        .collect();

    let (mut ok, mut structured) = (0usize, 0usize);
    for h in handles {
        let (o, s) = h.join().expect("chaos client");
        ok += o;
        structured += s;
    }
    assert_eq!(
        ok + structured,
        CLIENTS * PER_CLIENT,
        "every request answered"
    );
    // The deliberately-invalid requests (1 in 6) come back as structured
    // errors; everything else eventually succeeds through the retries.
    assert_eq!(
        structured,
        CLIENTS * PER_CLIENT / 6,
        "only the bad requests fail"
    );

    // The chaos layer really was firing, and the daemon is still healthy.
    let mut probe = Client::connect_retry(&addr, Duration::from_secs(5))
        .expect("daemon still accepting")
        .with_limits(Duration::from_secs(30), 16);
    let metrics = probe
        .request("{\"id\":9000,\"verb\":\"metrics\"}")
        .expect("metrics after the storm");
    let faults = json_u64(&metrics, "chaos_faults");
    assert!(
        faults > 50,
        "expected a storm of injected faults, saw {faults}: {metrics}"
    );

    // Graceful drain still works after all the abuse.
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[test]
fn daemon_survives_a_corpus_driven_storm() {
    // The fuzzer's corpus hits the daemon: seeded generator kernels plus
    // every committed regression repro, shipped as inline-DFG compile
    // requests while the chaos layer injects worker panics and torn
    // writes. The daemon must answer each with a success or a structured
    // typed error — untrusted DFG text must never crash the service.
    let dir = std::env::temp_dir().join(format!("iced-svc-chaos-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = chaos_server(0xF0CC, &dir);
    let addr = server.local_addr().to_string();

    // Corpus: 32 generated kernels (fixed seed base, independent of the
    // env knobs so the test is hermetic) + the committed regressions +
    // a hostile non-parsing payload.
    let gopts = iced_fuzz::gen::GenOptions::default();
    let mut bodies: Vec<String> = (0..32u64)
        .filter_map(|i| iced_fuzz::gen::generate(0x1CED_F0CC + i, &gopts).ok())
        .map(|dfg| iced_dfg::text::to_text(&dfg))
        .collect();
    assert!(bodies.len() >= 16, "generator rejected too many seeds");
    for repro in iced_fuzz::corpus::builtin_corpus() {
        bodies.push(repro.text.to_string());
    }
    bodies.push("dfg broken\nnode without parts\n".to_string());

    let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
        .expect("daemon reachable")
        .with_limits(Duration::from_secs(60), 16);
    let (mut ok, mut structured) = (0usize, 0usize);
    for (r, body) in bodies.iter().enumerate() {
        let line = format!(
            "{{\"id\":{r},\"verb\":\"compile\",\"dfg\":\"{}\"}}",
            json_escape(body)
        );
        let resp = c
            .request(&line)
            .unwrap_or_else(|e| panic!("corpus req {r} exhausted: {e}"));
        if resp.contains("\"ok\":true") {
            ok += 1;
        } else {
            assert!(resp.contains("\"ok\":false"), "{resp}");
            assert!(resp.contains("\"code\":\""), "{resp}");
            assert!(resp.contains("\"message\":\""), "{resp}");
            structured += 1;
        }
    }
    assert_eq!(ok + structured, bodies.len(), "every request answered");
    // The deliberately-broken payload must be a structured parse error,
    // and the well-formed kernels must dominate.
    assert!(structured >= 1, "the broken payload must fail structurally");
    assert!(ok >= bodies.len() / 2, "most corpus kernels compile: {ok}");

    // Chaos really fired, and the daemon drains cleanly afterwards.
    let metrics = c
        .request("{\"id\":9000,\"verb\":\"metrics\"}")
        .expect("metrics after the storm");
    assert!(json_u64(&metrics, "chaos_faults") > 0, "chaos never fired");
    server.shutdown();
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_decisions_are_reproducible_across_daemons() {
    // Two daemons with the same seed take identical fault decisions in
    // sequence: drive each with one single-threaded client and the same
    // request list, and the failure counts must match exactly.
    let run = |port_dir: &str| {
        let dir = std::env::temp_dir().join(format!(
            "iced-svc-chaos-repro-{}-{port_dir}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServiceConfig {
            threads: 1, // one worker: the decision order is the arrival order
            queue_cap: 8,
            cache_mb: 1,
            cache_dir: Some(dir.clone()),
            chaos: Some(0xD1CE),
            ..ServiceConfig::default()
        };
        let server = Server::start(cfg).expect("bind");
        let addr = server.local_addr().to_string();
        let mut c = Client::connect_retry(&addr, Duration::from_secs(10))
            .expect("reach daemon")
            .with_limits(Duration::from_secs(60), 16);
        for r in 0..60 {
            let line = format!(
                "{{\"id\":{r},\"verb\":\"simulate\",\"kernel\":\"fir\",\
                 \"iterations\":200,\"seed\":{}}}",
                r % 5
            );
            c.request(&line).expect("answered eventually");
        }
        let metrics = c
            .request("{\"id\":99,\"verb\":\"metrics\"}")
            .expect("metrics");
        let faults = json_u64(&metrics, "chaos_faults");
        server.shutdown();
        server.wait();
        let _ = std::fs::remove_dir_all(&dir);
        faults
    };
    let a = run("a");
    let b = run("b");
    assert!(a > 0, "chaos must have fired");
    assert_eq!(a, b, "same seed, same request sequence, same fault count");
}
