//! End-to-end tests for the readiness-reactor connection handling:
//! hundreds of concurrent pipelined connections with strict response
//! ordering and routing, the per-connection pipeline cap, and the
//! connection ceiling.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use iced_service::{Server, ServiceConfig};

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        line.trim_end().to_string()
    }
}

/// Pulls `(conn, seq)` out of a response's `"req":"c<conn>-<seq>"`.
fn req_token(resp: &str) -> (u64, u64) {
    let i = resp.find("\"req\":\"c").expect("req token") + 8;
    let rest = &resp[i..];
    let end = rest.find('"').expect("token close quote");
    let (conn, seq) = rest[..end].split_once('-').expect("token dash");
    (conn.parse().expect("conn"), seq.parse().expect("seq"))
}

/// Two hundred concurrent connections, each with four pipelined requests
/// in flight at once. Every response must come back on the socket that
/// asked, in the order it asked, with a per-connection `req` token whose
/// `seq` walks 1..=4 under a connection ordinal no other socket shares.
#[test]
fn pipelined_connections_get_ordered_routed_responses() {
    const CONNS: usize = 200;
    const ROUNDS: usize = 4;
    let cfg = ServiceConfig {
        threads: 2,
        // Up to CONNS×2 work requests are genuinely queued at once.
        queue_cap: 1024,
        ..ServiceConfig::default()
    };
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut clients: Vec<Client> = (0..CONNS).map(|_| Client::connect(addr)).collect();
    // Fire every request on every connection before reading anything:
    // the worker pool finishes them out of order, the reactor must not.
    for (ci, c) in clients.iter_mut().enumerate() {
        for r in 0..ROUNDS {
            let id = (ci as u64 + 1) * 100 + r as u64;
            let line = if r % 2 == 0 {
                format!(
                    "{{\"id\":{id},\"verb\":\"compile\",\"kernel\":\"fir\",\"strategy\":\"iced\"}}"
                )
            } else {
                format!("{{\"id\":{id},\"verb\":\"healthz\"}}")
            };
            c.send(&line);
        }
    }
    let mut seen_ordinals = HashSet::new();
    for (ci, c) in clients.iter_mut().enumerate() {
        let mut ordinal = None;
        for r in 0..ROUNDS {
            let resp = c.recv();
            assert!(resp.contains("\"ok\":true"), "conn {ci} round {r}: {resp}");
            let want_id = (ci as u64 + 1) * 100 + r as u64;
            assert!(
                resp.contains(&format!("\"id\":{want_id},")),
                "conn {ci}: response out of order or misrouted: {resp}"
            );
            let (tok, seq) = req_token(&resp);
            assert_eq!(seq, r as u64 + 1, "conn {ci}: seq must walk 1..=4");
            match ordinal {
                None => ordinal = Some(tok),
                Some(t) => assert_eq!(t, tok, "conn {ci}: ordinal changed mid-connection"),
            }
        }
        assert!(
            seen_ordinals.insert(ordinal.expect("ordinal")),
            "two connections shared ordinal {ordinal:?}"
        );
    }

    server.shutdown();
    server.wait();
}

/// With a worker pinned on a slow job and strict ordering holding every
/// later response back, the pipeline cap is reachable deterministically:
/// requests past it answer `too_many_requests` inline — and still in
/// order.
#[test]
fn pipeline_cap_rejects_excess_in_order() {
    let cfg = ServiceConfig {
        threads: 1,
        queue_cap: 1,
        pipeline: 4,
        ..ServiceConfig::default()
    };
    let server = Server::start(cfg).expect("bind ephemeral port");
    let mut c = Client::connect(server.local_addr());

    // Ticket 0 occupies the single worker; nothing later may release
    // until it finishes, so `outstanding` climbs with each send.
    c.send("{\"id\":1,\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":300000,\"seed\":1}");
    std::thread::sleep(Duration::from_millis(100));
    // Ticket 1 sits in the queue (capacity 1).
    c.send("{\"id\":2,\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":1000,\"seed\":2}");
    // Tickets 2..=3 fill the rest of the cap of 4; 4..=5 exceed it.
    for id in 3..=6 {
        c.send(&format!("{{\"id\":{id},\"verb\":\"healthz\"}}"));
    }

    for seq in 1u64..=6 {
        let resp = c.recv();
        let (_, got_seq) = req_token(&resp);
        assert_eq!(got_seq, seq, "responses leave in request order: {resp}");
        if seq <= 4 {
            // The admitted requests echo their ids and succeed.
            assert!(resp.contains("\"ok\":true"), "seq {seq}: {resp}");
            assert!(
                resp.contains(&format!("\"id\":{seq},")),
                "seq {seq}: {resp}"
            );
        } else {
            // Over-cap lines are rejected before parsing (no work spent
            // on an abusive client), so they carry id 0 and correlate by
            // the `req` token alone.
            assert!(
                resp.contains("too_many_requests"),
                "seq {seq} must hit the pipeline cap: {resp}"
            );
            assert!(resp.contains("pipeline cap 4"), "{resp}");
        }
    }

    server.shutdown();
    server.wait();
}

/// Connects past `max_conns` are answered with one structured
/// `too_many_connections` line and closed — and a freed slot makes room
/// for the next dialer.
#[test]
fn connection_ceiling_refuses_then_recovers() {
    let cfg = ServiceConfig {
        threads: 1,
        max_conns: 8,
        ..ServiceConfig::default()
    };
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut held: Vec<Client> = (0..8).map(|_| Client::connect(addr)).collect();
    // A round trip per connection proves all 8 are registered.
    for (i, c) in held.iter_mut().enumerate() {
        c.send(&format!("{{\"id\":{i},\"verb\":\"healthz\"}}"));
        assert!(c.recv().contains("\"ok\":true"));
    }

    // The 9th dialer is told why, then hung up on.
    let mut extra = TcpStream::connect(addr).expect("connect");
    extra
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut refusal = String::new();
    extra
        .read_to_string(&mut refusal)
        .expect("read refusal to EOF");
    assert!(
        refusal.contains("too_many_connections"),
        "refusal line: {refusal}"
    );
    assert!(refusal.ends_with('\n'), "refusal is a complete line");

    // The refusal is observable.
    let metrics = {
        let c = &mut held[0];
        c.send("{\"id\":100,\"verb\":\"metrics\"}");
        c.recv()
    };
    assert!(metrics.contains("\"conns_rejected\":1"), "{metrics}");
    assert!(metrics.contains("\"max_conns\":8"), "{metrics}");
    assert!(metrics.contains("\"conns_open\":8"), "{metrics}");

    // Freeing one slot lets the next dialer in.
    drop(held.remove(7));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut retry = Client::connect(addr);
        retry.send("{\"id\":200,\"verb\":\"healthz\"}");
        let mut line = String::new();
        match retry.reader.read_line(&mut line) {
            Ok(n) if n > 0 && line.contains("\"ok\":true") => break,
            _ if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            other => panic!("slot never freed: {other:?} / {line}"),
        }
    }

    server.shutdown();
    server.wait();
}
