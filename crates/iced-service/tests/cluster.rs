//! Cluster-layer end-to-end tests: a router fronting in-process shards
//! must be byte-indistinguishable from a single daemon, keep strict
//! per-connection ordering under heavy pipelining, and survive a
//! deterministic shard kill with replicated warm hits intact.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use iced::arch::{CgraConfig, IslandId};
use iced::fault::FaultPlan;
use iced_hash::{rendezvous_rank, shard_id};
use iced_service::proto::parse_request;
use iced_service::{request_key, Router, RouterConfig, Server, ServiceConfig};

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        line.trim_end().to_string()
    }

    fn round_trip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// Boots `n` in-process shards on ephemeral ports.
fn start_shards(n: usize) -> (Vec<Server>, Vec<String>) {
    let mut servers = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let srv = Server::start(ServiceConfig::default()).expect("bind shard");
        addrs.push(srv.local_addr().to_string());
        servers.push(srv);
    }
    (servers, addrs)
}

fn start_router(shards: Vec<String>, replicate_hot: usize) -> Router {
    Router::start(RouterConfig {
        shards,
        replicate_hot,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// The response with its `"req":"cC-S"` token blanked: connection
/// counters differ between a router and a bare daemon, everything else
/// must not.
fn strip_req(line: &str) -> String {
    let start = line.find("\"req\":\"").expect("response carries a req id") + 7;
    let end = start + line[start..].find('"').expect("req id is terminated");
    format!("{}{}", &line[..start], &line[end..])
}

/// Every request verb, cold then warm, answered byte-identically by a
/// 2-shard cluster and a standalone daemon.
#[test]
fn router_matches_single_daemon_byte_for_byte() {
    let single = Server::start(ServiceConfig::default()).expect("bind single");
    let (shards, addrs) = start_shards(2);
    let router = start_router(addrs, 0);

    let requests = [
        r#"{"id":1,"verb":"compile","kernel":"fir"}"#,
        r#"{"id":2,"verb":"compile","kernel":"fft","unroll":2,"strategy":"baseline"}"#,
        r#"{"id":3,"verb":"simulate","kernel":"fir","iterations":1000,"seed":3}"#,
        r#"{"id":4,"verb":"stream","pipeline":"gcn","policy":"iced","inputs":20,"seed":5}"#,
    ];
    let mut a = Client::connect(single.local_addr());
    let mut b = Client::connect(router.local_addr());
    for req in requests {
        // Cold, then warm: the replay must be byte-identical too, with
        // the warm `"cached":true` marker preserved through the router.
        for pass in 0..2 {
            let lone = a.round_trip(req);
            let routed = b.round_trip(req);
            assert_eq!(
                strip_req(&lone),
                strip_req(&routed),
                "pass {pass} diverged for {req}"
            );
            if pass == 1 {
                assert!(routed.contains("\"cached\":true"), "warm replay: {routed}");
            }
        }
    }

    router.shutdown();
    router.wait();
    for s in shards {
        s.wait();
    }
    single.shutdown();
    single.wait();
}

/// Batches split across shards reassemble byte-identically — slot order,
/// per-slot errors, and the count/unique header all match a single
/// daemon's answer.
#[test]
fn split_batches_reassemble_byte_identically() {
    let single = Server::start(ServiceConfig::default()).expect("bind single");
    let (shards, addrs) = start_shards(3);
    let router = start_router(addrs, 0);

    let batch = concat!(
        r#"{"id":7,"verb":"batch","items":["#,
        r#"{"verb":"compile","kernel":"fir"},"#,
        r#"{"verb":"compile","kernel":"dtw","strategy":"iced"},"#,
        r#"{"verb":"compile","kernel":"nosuchkernel"},"#,
        r#"{"verb":"simulate","kernel":"fir","iterations":1000,"seed":3},"#,
        r#"{"verb":"compile","kernel":"fir"},"#,
        r#"{"verb":"stream","pipeline":"gcn","policy":"iced","inputs":20,"seed":5}"#,
        r#"]}"#
    );
    let mut a = Client::connect(single.local_addr());
    let mut b = Client::connect(router.local_addr());
    // Cold pass, then a warm pass where every slot replays from cache.
    for pass in 0..2 {
        let lone = a.round_trip(batch);
        let routed = b.round_trip(batch);
        assert_eq!(
            strip_req(&lone),
            strip_req(&routed),
            "batch pass {pass} diverged"
        );
        assert!(routed.contains("\"count\":6"), "all slots answered");
    }
    // The empty batch short-circuits locally; it must still match.
    let empty = r#"{"id":8,"verb":"batch","items":[]}"#;
    assert_eq!(
        strip_req(&a.round_trip(empty)),
        strip_req(&b.round_trip(empty))
    );

    router.shutdown();
    router.wait();
    for s in shards {
        s.wait();
    }
    single.shutdown();
    single.wait();
}

/// 200 pipelined connections through the router: every connection gets
/// its responses strictly in send order.
#[test]
fn pipelined_connections_keep_strict_order_through_router() {
    const CONNS: usize = 200;
    const PER_CONN: usize = 8;
    let (shards, addrs) = start_shards(2);
    let router = start_router(addrs, 0);
    let addr = router.local_addr();

    let mut clients: Vec<Client> = (0..CONNS).map(|_| Client::connect(addr)).collect();
    // Open-loop: write every request on every connection before reading
    // anything back, interleaving kernels so shards both see traffic.
    for (c, client) in clients.iter_mut().enumerate() {
        for s in 0..PER_CONN {
            let id = (c * PER_CONN + s + 1) as u64;
            let kernel = if (c + s) % 2 == 0 { "fir" } else { "dtw" };
            client.send(&format!(
                r#"{{"id":{id},"verb":"compile","kernel":"{kernel}"}}"#
            ));
        }
    }
    for (c, client) in clients.iter_mut().enumerate() {
        for s in 0..PER_CONN {
            let id = (c * PER_CONN + s + 1) as u64;
            let resp = client.recv();
            assert!(
                resp.starts_with(&format!("{{\"id\":{id},")),
                "conn {c} slot {s}: out-of-order response {resp}"
            );
            assert!(resp.contains("\"ok\":true"), "conn {c} slot {s}: {resp}");
        }
    }

    router.shutdown();
    router.wait();
    for s in shards {
        s.wait();
    }
}

/// A hot entry replicated to its successor shard still answers warm
/// (`"cached":true`, identical bytes) after its home shard is killed
/// mid-run. The kill point comes from an iced-fault schedule, so the
/// whole scenario is deterministic.
#[test]
fn replicated_hot_entry_survives_home_shard_death() {
    const REPLICATE_AFTER: usize = 2;
    let (shards, addrs) = start_shards(3);
    let mut shards: Vec<Option<Server>> = shards.into_iter().map(Some).collect();
    let router = start_router(addrs.clone(), REPLICATE_AFTER);

    // Locate the hot key's home shard with the same rendezvous ranking
    // the router uses.
    let req_line = r#"{"id":1,"verb":"compile","kernel":"fft","unroll":2}"#;
    let req = parse_request(req_line).expect("valid request");
    let cfg = CgraConfig::iced_prototype().canonical_hash();
    let key = request_key(cfg, &req).expect("compile has a cache key");
    let ids: Vec<u64> = addrs.iter().map(|a| shard_id(a)).collect();
    let rank = rendezvous_rank(key.0, key.1, &ids);
    let home = rank[0];

    // An iced-fault kill schedule drives when the home shard dies: after
    // `after_inputs` requests have been answered.
    let plan = FaultPlan::empty().with_island_failure(IslandId(home as u16), REPLICATE_AFTER + 1);
    let kill_after = plan.midrun[0].after_inputs;

    let mut c = Client::connect(router.local_addr());
    let cold = c.round_trip(req_line);
    assert!(cold.contains("\"ok\":true"), "cold: {cold}");
    for _ in 1..kill_after {
        let warm = c.round_trip(req_line);
        assert_eq!(
            strip_req(&cold),
            strip_req(&warm).replace("\"cached\":true", "\"cached\":false")
        );
    }
    // By now the router has counted >= REPLICATE_AFTER hits and queued a
    // cache_put on the successor's link; any later request routed there
    // is FIFO-ordered behind it, so no sleep is needed.
    let stats = c.round_trip(r#"{"id":90,"verb":"metrics"}"#);
    assert!(
        stats.contains("\"replicated\":1"),
        "replication did not trigger: {stats}"
    );

    // Kill the home shard mid-run.
    let victim = shards[home].take().expect("home shard alive");
    victim.shutdown();
    victim.wait();

    // The key's range re-points at the successor, which answers from the
    // replicated entry: still warm, byte-identical result.
    let after = c.round_trip(req_line);
    assert!(
        after.contains("\"cached\":true"),
        "lost the warm hit: {after}"
    );
    assert_eq!(
        strip_req(&cold).replace("\"cached\":false", "\"cached\":true"),
        strip_req(&after)
    );

    // The router's stats now show the dead shard as down.
    let stats = c.round_trip(r#"{"id":91,"verb":"metrics"}"#);
    assert!(
        stats.contains("\"role\":\"router\""),
        "router stats: {stats}"
    );
    assert!(
        stats.contains("\"up\":false"),
        "dead shard not marked: {stats}"
    );

    router.shutdown();
    router.wait();
    for s in shards.into_iter().flatten() {
        s.wait();
    }
}

/// The router's own control plane: healthz and stats report the router
/// role, shard inventory, and Prometheus families.
#[test]
fn router_control_plane_reports_role_and_shards() {
    let (shards, addrs) = start_shards(2);
    let router = start_router(addrs, 3);
    let mut c = Client::connect(router.local_addr());

    let health = c.round_trip(r#"{"id":1,"verb":"healthz"}"#);
    assert!(health.contains("\"role\":\"router\""), "healthz: {health}");
    assert!(health.contains("\"shards\":2"), "healthz: {health}");

    // Shard healthz (direct) reports the shard role.
    let shard_addr: SocketAddr = shards[0].local_addr();
    let mut d = Client::connect(shard_addr);
    let shard_health = d.round_trip(r#"{"id":2,"verb":"healthz"}"#);
    assert!(
        shard_health.contains("\"role\":\"shard\""),
        "shard healthz: {shard_health}"
    );

    // One forwarded request, then the counters must show it.
    let resp = c.round_trip(r#"{"id":3,"verb":"compile","kernel":"fir"}"#);
    assert!(resp.contains("\"ok\":true"), "forward failed: {resp}");
    let stats = c.round_trip(r#"{"id":4,"verb":"metrics"}"#);
    assert!(stats.contains("\"forwarded\":1"), "stats: {stats}");

    let prom = c.round_trip(r#"{"id":5,"verb":"stats","format":"prometheus"}"#);
    assert!(prom.contains("iced_router_shard_up"), "prom: {prom}");
    assert!(prom.contains("iced_router_forwarded_total"), "prom: {prom}");

    router.shutdown();
    router.wait();
    for s in shards {
        s.wait();
    }
}
