//! End-to-end tests for the `batch` verb: intra-batch dedup with byte
//! identity against the standalone verbs, mixed ok/error slots, bounds,
//! the client helpers, and whole-batch backpressure.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use iced_service::{Client, Server, ServiceConfig};

struct RawClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        stream.set_nodelay(true).unwrap();
        RawClient {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn round_trip(&mut self, line: &str) -> String {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        resp.trim_end().to_string()
    }

    fn send(&mut self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf).expect("send");
    }

    fn recv(&mut self) -> String {
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp).expect("read response");
        assert!(n > 0, "server closed the connection mid-conversation");
        resp.trim_end().to_string()
    }
}

fn start(cfg: ServiceConfig) -> (Server, SocketAddr) {
    let server = Server::start(cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (server, addr)
}

/// The `result` payload of a success envelope or slot.
fn result_payload(response: &str) -> &str {
    let idx = response
        .find("\"result\":")
        .unwrap_or_else(|| panic!("no result field in {response}"));
    &response[idx + 9..response.len() - 1]
}

/// A batch of N identical specs performs exactly one compile: the
/// envelope reports one unique element, every slot carries byte-identical
/// result bytes, and a later standalone request for the same spec is a
/// cache hit replaying those exact bytes.
#[test]
fn identical_specs_compile_once_with_byte_identical_slots() {
    let (server, addr) = start(ServiceConfig::default());
    let mut c = RawClient::connect(addr);

    let item = r#"{"verb":"compile","kernel":"dtw","strategy":"iced"}"#;
    let resp = c.round_trip(&format!(
        "{{\"id\":1,\"verb\":\"batch\",\"items\":[{item},{item},{item},{item}]}}"
    ));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"count\":4"), "{resp}");
    assert!(
        resp.contains("\"unique\":1"),
        "dedup to one compile: {resp}"
    );
    assert!(resp.contains("\"deduped\":3"), "{resp}");

    // All four slots render the same bytes.
    let slot_pat = "{\"ok\":true,\"verb\":\"compile\",\"cached\":false,\"result\":";
    assert_eq!(
        resp.matches(slot_pat).count(),
        4,
        "four byte-identical uncached slots: {resp}"
    );

    // The standalone verb replays the batch's cached bytes.
    let single =
        c.round_trip("{\"id\":2,\"verb\":\"compile\",\"kernel\":\"dtw\",\"strategy\":\"iced\"}");
    assert!(
        single.contains("\"cached\":true"),
        "batch populated the cache: {single}"
    );
    let single_result = result_payload(&single).to_string();
    assert!(
        resp.contains(&format!("\"result\":{single_result}}}")),
        "slot result bytes must equal the standalone verb's"
    );

    // A second identical batch is served warm, still deduped.
    let warm = c.round_trip(&format!(
        "{{\"id\":3,\"verb\":\"batch\",\"items\":[{item},{item}]}}"
    ));
    assert!(warm.contains("\"unique\":1"), "{warm}");
    assert_eq!(
        warm.matches("\"cached\":true").count(),
        2,
        "both warm slots marked cached: {warm}"
    );

    server.shutdown();
    server.wait();
}

/// A bad slot answers with a structured error in place; its siblings
/// still compute. Slot errors never fail the envelope.
#[test]
fn mixed_ok_and_error_slots_resolve_independently() {
    let (server, addr) = start(ServiceConfig::default());
    let mut c = RawClient::connect(addr);

    let resp = c.round_trip(concat!(
        "{\"id\":7,\"verb\":\"batch\",\"items\":[",
        "{\"verb\":\"compile\",\"kernel\":\"fir\",\"strategy\":\"iced\"},",
        "{\"verb\":\"stream\",\"pipeline\":\"lu\"},",
        "{\"verb\":\"frobnicate\"},",
        "{\"verb\":\"compile\",\"kernel\":\"nosuch\"},",
        "{\"kernel\":\"fir\"},",
        "{\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":1000}",
        "]}"
    ));
    assert!(resp.contains("\"ok\":true"), "envelope survives: {resp}");
    assert!(resp.contains("\"count\":6"), "{resp}");
    // Only the two good slots reach the workers.
    assert!(resp.contains("\"unique\":2"), "{resp}");
    assert_eq!(resp.matches("{\"ok\":true,").count(), 2, "{resp}");
    assert_eq!(resp.matches("{\"ok\":false,").count(), 4, "{resp}");
    // Each failure mode is named.
    assert!(
        resp.contains("only compile and simulate may appear in a batch"),
        "stream slot: {resp}"
    );
    assert!(resp.contains("unknown_verb"), "frobnicate slot: {resp}");
    assert!(resp.contains("unknown_kernel"), "nosuch slot: {resp}");
    assert!(
        resp.contains("missing string field 'verb'"),
        "verbless slot: {resp}"
    );

    server.shutdown();
    server.wait();
}

/// Envelope bounds: an empty batch succeeds with zero slots; an
/// oversized one is rejected whole with a structured error.
#[test]
fn empty_and_oversized_batches_hit_the_bounds() {
    let (server, addr) = start(ServiceConfig::default());
    let mut c = RawClient::connect(addr);

    let empty = c.round_trip("{\"id\":1,\"verb\":\"batch\",\"items\":[]}");
    assert!(empty.contains("\"ok\":true"), "{empty}");
    assert!(
        empty.contains("\"count\":0") && empty.contains("\"results\":[]"),
        "{empty}"
    );

    let items: Vec<String> = (0..129)
        .map(|_| r#"{"verb":"compile","kernel":"fir"}"#.to_string())
        .collect();
    let oversized = c.round_trip(&format!(
        "{{\"id\":2,\"verb\":\"batch\",\"items\":[{}]}}",
        items.join(",")
    ));
    assert!(oversized.contains("\"ok\":false"), "{oversized}");
    assert!(oversized.contains("\"verb\":\"batch\""), "{oversized}");
    assert!(
        oversized.contains("129 items") && oversized.contains("128"),
        "the limit is named: {oversized}"
    );

    let not_array = c.round_trip("{\"id\":3,\"verb\":\"batch\",\"items\":7}");
    assert!(
        not_array.contains("'items' must be an array"),
        "{not_array}"
    );
    let missing = c.round_trip("{\"id\":4,\"verb\":\"batch\"}");
    assert!(missing.contains("missing 'items' array"), "{missing}");

    server.shutdown();
    server.wait();
}

/// The `Client` batch helpers: envelope assembly, response splitting,
/// per-slot errors surfaced as items rather than failures.
#[test]
fn client_helpers_split_slots_and_surface_item_errors() {
    let (server, addr) = start(ServiceConfig::default());
    let mut c = Client::connect_retry(&addr.to_string(), Duration::from_secs(5)).expect("connect");

    let fir = r#"{"kernel":"fir","strategy":"iced"}"#;
    let bad = r#"{"kernel":"nosuch"}"#;
    let slots = c.compile_batch(1, &[fir, fir, bad]).expect("compile_batch");
    assert_eq!(slots.len(), 3, "one item per slot, in order");
    assert!(slots[0].ok && slots[1].ok);
    assert_eq!(
        result_payload(&slots[0].raw),
        result_payload(&slots[1].raw),
        "identical specs share bytes"
    );
    assert!(!slots[2].ok, "bad slot is an item error: {}", slots[2].raw);
    assert!(slots[2].raw.contains("unknown_kernel"), "{}", slots[2].raw);

    let sim = r#"{"kernel":"fir","iterations":1500,"seed":9}"#;
    let sims = c.simulate_batch(2, &[sim, sim]).expect("simulate_batch");
    assert_eq!(sims.len(), 2);
    assert!(sims.iter().all(|s| s.ok));
    // The second identical spec dedups inside the batch: same bytes, and
    // at least one of the two slots in a fresh-cache run is uncached.
    assert_eq!(result_payload(&sims[0].raw), result_payload(&sims[1].raw));

    // An empty helper batch is a valid no-op.
    let none = c.compile_batch(3, &[]).expect("empty batch");
    assert!(none.is_empty());

    server.shutdown();
    server.wait();
}

/// When the queue cannot take the batch, the whole envelope answers
/// `queue_full` — the retryable whole-batch contract the client helpers
/// rely on.
#[test]
fn saturated_queue_rejects_the_whole_batch() {
    let (server, addr) = start(ServiceConfig {
        threads: 1,
        queue_cap: 1,
        ..ServiceConfig::default()
    });
    // Connection A pins the worker and fills the queue. `healthz` is
    // answered inline by the reactor even while the worker is busy, so a
    // side connection can observe each stage instead of guessing with
    // sleeps (the pin job's runtime varies with the machine).
    let mut probe = RawClient::connect(addr);
    let mut wait_for = |field: &str, value: u64| {
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        loop {
            let health = probe.round_trip("{\"id\":99,\"verb\":\"healthz\"}");
            if health.contains(&format!("\"{field}\":{value}")) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "daemon never reached {field}={value}: {health}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };

    let mut a = RawClient::connect(addr);
    a.send("{\"id\":1,\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":2000000,\"seed\":1}");
    wait_for("in_flight", 1); // the worker has picked up the pin job
    a.send("{\"id\":2,\"verb\":\"simulate\",\"kernel\":\"fir\",\"iterations\":1000,\"seed\":2}");
    wait_for("queue_depth", 1); // the only queue slot is now occupied

    // Connection B's batch cannot be enqueued: whole-batch queue_full.
    let mut b = RawClient::connect(addr);
    let item = r#"{"verb":"compile","kernel":"fir","strategy":"iced"}"#;
    let resp = b.round_trip(&format!(
        "{{\"id\":3,\"verb\":\"batch\",\"items\":[{item},{item}]}}"
    ));
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("queue_full"), "{resp}");
    assert!(resp.contains("\"verb\":\"batch\""), "{resp}");

    // A's pinned work still completes in order.
    assert!(a.recv().contains("\"id\":1,"), "first sim answers first");
    assert!(a.recv().contains("\"id\":2,"));

    server.shutdown();
    server.wait();
}
